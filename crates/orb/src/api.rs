//! The unified invocation API: one [`Orb`] trait over every ORB flavour.
//!
//! E1's microbenchmarks and the unit tests want to exercise "an ORB"
//! without caring whether requests run through the in-process loopback
//! path ([`crate::LocalOrb`]) or over the simulated network
//! ([`crate::SimOrb`] plumbing inside a DES). The trait captures the
//! common surface — synchronous invoke, marshalled invoke, dispatch
//! counters — and [`SimOrbClient`] packages the sim side as a
//! self-contained harness (its own [`Sim`], fabric and server host) so
//! both flavours satisfy it.

use crate::cdr::{Decoder, Encoder};
use crate::object::{ObjectKey, ObjectRef, OrbError};
use crate::servant::{DispatchOpts, DispatchStats, ObjectAdapter, Outcome, Servant};
use crate::sim::{OrbWire, SimOrb};
use crate::value::Value;
use lc_idl::ast::ParamMode;
use lc_idl::types::OpMeta;
use lc_idl::Repository;
use lc_net::{HostCfg, Net, NetMsg, Topology};
use lc_des::{Actor, ActorId, AnyMsg, AnyMsgExt, Ctx, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// What every ORB flavour can do.
pub trait Orb {
    /// Invoke `op` on `target` synchronously with full type checking.
    fn invoke(&self, target: &ObjectRef, op: &str, args: &[Value]) -> Result<Outcome, OrbError>;

    /// Invoke with a CDR encode/decode round-trip of arguments and
    /// results — the CPU cost a remote call pays for marshalling.
    fn invoke_marshalled(
        &self,
        target: &ObjectRef,
        op: &str,
        args: &[Value],
    ) -> Result<Outcome, OrbError>;

    /// Dispatch counters of the underlying object adapter.
    fn dispatch_stats(&self) -> DispatchStats;
}

/// Look up the operation metadata for `op` on `type_id`.
pub(crate) fn op_meta<'r>(
    repo: &'r Repository,
    type_id: &str,
    op: &str,
) -> Result<&'r OpMeta, OrbError> {
    let iface = repo
        .interface(type_id)
        .ok_or_else(|| OrbError::Internal(format!("unknown interface {type_id}")))?;
    iface.op(op).ok_or_else(|| OrbError::BadOperation(op.to_owned()))
}

/// CDR-encode then decode the `in`/`inout` arguments via the op signature.
pub(crate) fn cdr_round_trip_in_args(
    repo: &Arc<Repository>,
    opmeta: &OpMeta,
    args: &[Value],
) -> Result<Vec<Value>, OrbError> {
    let mut enc = Encoder::new();
    for a in args {
        enc.value(a);
    }
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes, repo);
    let mut decoded = Vec::with_capacity(args.len());
    for p in opmeta
        .params
        .iter()
        .filter(|p| matches!(p.mode, ParamMode::In | ParamMode::InOut))
    {
        decoded.push(dec.value(&p.ty).map_err(|e| OrbError::BadParam(e.to_string()))?);
    }
    Ok(decoded)
}

/// CDR-encode then decode the return and `out`/`inout` values.
pub(crate) fn cdr_round_trip_outcome(
    repo: &Arc<Repository>,
    opmeta: &OpMeta,
    outcome: &Outcome,
) -> Result<Outcome, OrbError> {
    let mut enc = Encoder::new();
    enc.value(&outcome.ret);
    for o in &outcome.outs {
        enc.value(o);
    }
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes, repo);
    let ret = dec.value(&opmeta.ret).map_err(|e| OrbError::Internal(e.to_string()))?;
    let mut outs = Vec::with_capacity(outcome.outs.len());
    for p in opmeta
        .params
        .iter()
        .filter(|p| matches!(p.mode, ParamMode::Out | ParamMode::InOut))
    {
        outs.push(dec.value(&p.ty).map_err(|e| OrbError::Internal(e.to_string()))?);
    }
    Ok(Outcome { ret, outs })
}

impl Orb for crate::LocalOrb {
    fn invoke(&self, target: &ObjectRef, op: &str, args: &[Value]) -> Result<Outcome, OrbError> {
        crate::LocalOrb::invoke(self, target, op, args)
    }

    fn invoke_marshalled(
        &self,
        target: &ObjectRef,
        op: &str,
        args: &[Value],
    ) -> Result<Outcome, OrbError> {
        crate::LocalOrb::invoke_marshalled(self, target, op, args)
    }

    fn dispatch_stats(&self) -> DispatchStats {
        crate::LocalOrb::dispatch_stats(self)
    }
}

type ReplySlot = Rc<RefCell<Option<Result<Outcome, OrbError>>>>;

/// Server side of the harness: the object adapter behind the fabric.
struct ServerActor {
    host: lc_net::HostId,
    orb: SimOrb,
    adapter: ObjectAdapter,
}

impl Actor for ServerActor {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMsg) {
        let Ok(m) = msg.downcast_msg::<NetMsg>() else {
            return; // not ours: the fabric only delivers frames
        };
        if let Ok(OrbWire::Request { id, reply_to, target, op, args }) =
            m.payload.downcast_msg::<OrbWire>()
        {
            self.adapter.set_clock(ctx.now());
            let res = self.adapter.invoke(target, &op, &args, DispatchOpts::typed());
            if let Some(back) = reply_to {
                let _ = self.orb.send_reply(ctx, self.host, back, id, res.outcome);
            }
        }
    }
}

/// One synchronous call for the client actor to perform.
struct DoCall {
    target: ObjectKey,
    op: String,
    args: Vec<Value>,
}

/// Client side: sends the request, parks the reply in the shared slot.
struct ClientActor {
    host: lc_net::HostId,
    orb: SimOrb,
    slot: ReplySlot,
}

impl Actor for ClientActor {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMsg) {
        match msg.downcast_msg::<DoCall>() {
            Ok(call) => {
                if let Err(e) =
                    self.orb.send_request(ctx, self.host, call.target, &call.op, call.args, false)
                {
                    *self.slot.borrow_mut() = Some(Err(OrbError::from(e)));
                }
            }
            Err(other) => {
                let Ok(m) = other.downcast_msg::<NetMsg>() else {
                    return;
                };
                if let Ok(OrbWire::Reply { result, .. }) = m.payload.downcast_msg::<OrbWire>() {
                    *self.slot.borrow_mut() = Some(result);
                }
            }
        }
    }
}

/// The [`SimOrb`] side of the [`Orb`] trait: a self-contained two-host
/// simulation (client + server LAN) whose `invoke` sends a real
/// [`OrbWire::Request`] through the fabric, runs the DES until the reply
/// lands, and returns it — the remote analogue of [`crate::LocalOrb`].
pub struct SimOrbClient {
    sim: RefCell<Sim>,
    repo: Arc<Repository>,
    client_host: lc_net::HostId,
    server: ActorId,
    client: ActorId,
    slot: ReplySlot,
}

impl SimOrbClient {
    /// Build the harness: two hosts on one LAN, a server actor owning
    /// the adapter, a client actor issuing requests.
    pub fn new(repo: Arc<Repository>) -> Self {
        let mut topo = Topology::new();
        let s = topo.add_site("lan");
        let client_host = topo.add_host(HostCfg::new(s));
        let server_host = topo.add_host(HostCfg::new(s));
        let net = Net::builder(topo).build();
        let orb = SimOrb::new(net.clone());
        let mut sim = Sim::new(1);
        let server = sim.spawn(ServerActor {
            host: server_host,
            orb: orb.clone(),
            adapter: ObjectAdapter::new(server_host, repo.clone()),
        });
        net.bind(server_host, server);
        let slot: ReplySlot = Rc::default();
        let client =
            sim.spawn(ClientActor { host: client_host, orb, slot: slot.clone() });
        net.bind(client_host, client);
        SimOrbClient { sim: RefCell::new(sim), repo, client_host, server, client, slot }
    }

    /// Activate a servant on the server host.
    pub fn activate(&self, servant: Box<dyn Servant>) -> ObjectRef {
        let mut sim = self.sim.borrow_mut();
        let server = sim.actor_as_mut::<ServerActor>(self.server).expect("server actor");
        server.adapter.activate(servant)
    }

    /// The client-side host (for tests that inspect traffic).
    pub fn client_host(&self) -> lc_net::HostId {
        self.client_host
    }
}

impl Orb for SimOrbClient {
    fn invoke(&self, target: &ObjectRef, op: &str, args: &[Value]) -> Result<Outcome, OrbError> {
        let mut sim = self.sim.borrow_mut();
        self.slot.borrow_mut().take();
        let call = DoCall { target: target.key, op: op.to_owned(), args: args.to_vec() };
        sim.send_in(SimTime::ZERO, self.client, call);
        sim.run();
        self.slot.borrow_mut().take().unwrap_or(Err(OrbError::Timeout))
    }

    fn invoke_marshalled(
        &self,
        target: &ObjectRef,
        op: &str,
        args: &[Value],
    ) -> Result<Outcome, OrbError> {
        let opmeta = op_meta(&self.repo, &target.type_id, op)?.clone();
        let decoded = cdr_round_trip_in_args(&self.repo, &opmeta, args)?;
        let outcome = Orb::invoke(self, target, op, &decoded)?;
        cdr_round_trip_outcome(&self.repo, &opmeta, &outcome)
    }

    fn dispatch_stats(&self) -> DispatchStats {
        self.sim
            .borrow()
            .actor_as::<ServerActor>(self.server)
            .map(|a| a.adapter.dispatch_stats())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servant::Invocation;
    use crate::LocalOrb;
    use lc_idl::compile;

    const IDL: &str = "interface Adder { long add(in long a, in long b); };";

    struct AdderImpl;
    impl Servant for AdderImpl {
        fn interface_id(&self) -> &str {
            "IDL:Adder:1.0"
        }
        fn dispatch(&mut self, inv: &mut Invocation<'_>) -> Result<(), OrbError> {
            match inv.op {
                "add" => {
                    let (a, b) = (inv.args[0].as_long().unwrap(), inv.args[1].as_long().unwrap());
                    inv.set_ret(Value::Long(a + b));
                    Ok(())
                }
                o => Err(OrbError::BadOperation(o.into())),
            }
        }
    }

    /// The generic workload both flavours must agree on.
    fn exercise(orb: &dyn Orb, target: &ObjectRef) -> Vec<Result<Outcome, OrbError>> {
        vec![
            orb.invoke(target, "add", &[Value::Long(2), Value::Long(3)]),
            orb.invoke_marshalled(target, "add", &[Value::Long(40), Value::Long(2)]),
            orb.invoke(target, "add", &[Value::string("x"), Value::Long(1)]),
            orb.invoke(target, "nope", &[]),
        ]
    }

    #[test]
    fn local_and_sim_orbs_agree() {
        let repo = Arc::new(compile(IDL).unwrap());
        let local = LocalOrb::new(repo.clone());
        let l_ref = local.activate(Box::new(AdderImpl));
        let sim = SimOrbClient::new(repo);
        let s_ref = sim.activate(Box::new(AdderImpl));

        let l = exercise(&local, &l_ref);
        let s = exercise(&sim, &s_ref);
        assert_eq!(l, s);
        assert_eq!(l[0].as_ref().unwrap().ret, Value::Long(5));
        assert_eq!(l[1].as_ref().unwrap().ret, Value::Long(42));
        assert!(matches!(l[2], Err(OrbError::BadParam(_))));
        assert!(matches!(l[3], Err(OrbError::BadOperation(_))));

        // both adapters saw the same four typed dispatches minus the
        // client-side arg-marshalling failure? No: bad params still reach
        // the adapter (checked there), so both count 4 typed dispatches.
        assert_eq!(local.dispatch_stats().typed, 4);
        assert_eq!(sim.dispatch_stats().typed, 4);
    }

    #[test]
    fn sim_invoke_to_missing_object_fails() {
        let repo = Arc::new(compile(IDL).unwrap());
        let sim = SimOrbClient::new(repo);
        let r = sim.activate(Box::new(AdderImpl));
        let ghost = ObjectRef {
            key: ObjectKey { host: r.key.host, oid: 999 },
            type_id: r.type_id.clone(),
        };
        assert_eq!(
            Orb::invoke(&sim, &ghost, "add", &[Value::Long(1), Value::Long(1)]),
            Err(OrbError::ObjectNotExist)
        );
    }
}
