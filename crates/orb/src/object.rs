//! Object references and ORB error codes.

use lc_net::HostId;

/// Location-transparent address of a servant: the host it lives on plus
/// the object adapter's id for it. The CORBA analogue is the object key
/// inside an IOR.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectKey {
    /// Host whose object adapter owns the servant.
    pub host: HostId,
    /// Object id within that adapter.
    pub oid: u64,
}

/// An interoperable object reference (IOR): where the object is and what
/// interface it implements.
///
/// References are freely copyable and can be passed through operations
/// (`ResolvedType::Object` parameters) — that is what makes the CSCW
/// "GUI components can be local or remote" wiring of Fig. 2 work.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ObjectRef {
    /// Servant address.
    pub key: ObjectKey,
    /// Repository id of the most-derived interface, e.g.
    /// `IDL:cscw/Display:1.0`.
    pub type_id: String,
}

impl std::fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}#{}", self.type_id, self.key.host, self.key.oid)
    }
}

/// Why a `COMM_FAILURE` happened — the fabric's [`lc_net::DropReason`]
/// surfaced through the ORB so callers can distinguish a crashed peer
/// from a partition from a dead node process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommReason {
    /// The local (sending) host is down.
    SenderDown,
    /// The destination host is down.
    ReceiverDown,
    /// Sender and destination are in different partitions.
    Partitioned,
    /// The destination host has no node process listening.
    Unbound,
}

impl From<lc_net::DropReason> for CommReason {
    fn from(r: lc_net::DropReason) -> Self {
        match r {
            lc_net::DropReason::SenderDown => CommReason::SenderDown,
            lc_net::DropReason::ReceiverDown => CommReason::ReceiverDown,
            lc_net::DropReason::Partitioned => CommReason::Partitioned,
            lc_net::DropReason::Unbound => CommReason::Unbound,
        }
    }
}

impl From<lc_net::DropReason> for OrbError {
    fn from(r: lc_net::DropReason) -> Self {
        OrbError::CommFailure(r.into())
    }
}

impl std::fmt::Display for CommReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommReason::SenderDown => write!(f, "sender down"),
            CommReason::ReceiverDown => write!(f, "receiver down"),
            CommReason::Partitioned => write!(f, "partitioned"),
            CommReason::Unbound => write!(f, "unbound"),
        }
    }
}

/// ORB-level failures (the CORBA system exceptions this subset needs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OrbError {
    /// The object key does not name an active servant.
    ObjectNotExist,
    /// The interface has no such operation.
    BadOperation(String),
    /// Arguments failed the IDL type check.
    BadParam(String),
    /// The destination host is unreachable, and why.
    CommFailure(CommReason),
    /// A reply did not arrive in time (deadline elapsed, retry budget
    /// exhausted).
    Timeout,
    /// The servant's node shed the request under admission control: it
    /// could not be served within its deadline at the current queue
    /// depth. Deliberately distinct from [`OrbError::Timeout`] — the
    /// caller learns *immediately* that the work was refused (and never
    /// executed), instead of burning its deadline waiting.
    Overload,
    /// Application-level exception raised by the servant, by repository id.
    UserException {
        /// Exception repository id.
        id: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Anything else (servant panicked its invariant, etc.).
    Internal(String),
}

impl std::fmt::Display for OrbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrbError::ObjectNotExist => write!(f, "OBJECT_NOT_EXIST"),
            OrbError::BadOperation(op) => write!(f, "BAD_OPERATION: {op}"),
            OrbError::BadParam(m) => write!(f, "BAD_PARAM: {m}"),
            OrbError::CommFailure(r) => write!(f, "COMM_FAILURE ({r})"),
            OrbError::Timeout => write!(f, "TIMEOUT"),
            OrbError::Overload => write!(f, "OVERLOAD"),
            OrbError::UserException { id, detail } => write!(f, "user exception {id}: {detail}"),
            OrbError::Internal(m) => write!(f, "INTERNAL: {m}"),
        }
    }
}
impl std::error::Error for OrbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let r = ObjectRef {
            key: ObjectKey { host: HostId(3), oid: 42 },
            type_id: "IDL:X:1.0".into(),
        };
        assert_eq!(r.to_string(), "IDL:X:1.0@host3#42");
        assert_eq!(OrbError::Timeout.to_string(), "TIMEOUT");
        assert!(OrbError::UserException { id: "IDL:E:1.0".into(), detail: "boom".into() }
            .to_string()
            .contains("boom"));
    }
}
