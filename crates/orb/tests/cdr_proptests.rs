//! Property-based tests for CDR marshalling: any well-typed value
//! round-trips bit-exactly through encode → decode, and the type checker
//! agrees with the decoder about well-typedness.

use lc_idl::types::ResolvedType;
use lc_orb::{check_value, Decoder, Encoder, ObjectKey, ObjectRef, Value};
use proptest::prelude::*;

const IDL: &str = r#"
    struct Point { long x; double y; };
    enum Color { red, green, blue };
    interface Thing { void f(); };
"#;

/// A strategy producing `(type, well-typed value)` pairs, recursively.
fn typed_value() -> impl Strategy<Value = (ResolvedType, Value)> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(|b| (ResolvedType::Boolean, Value::Boolean(b))),
        any::<u8>().prop_map(|b| (ResolvedType::Octet, Value::Octet(b))),
        any::<char>().prop_map(|c| (ResolvedType::Char, Value::Char(c))),
        any::<i16>().prop_map(|v| (ResolvedType::Short { unsigned: false }, Value::Short(v))),
        any::<u16>().prop_map(|v| (ResolvedType::Short { unsigned: true }, Value::UShort(v))),
        any::<i32>().prop_map(|v| (ResolvedType::Long { unsigned: false }, Value::Long(v))),
        any::<u32>().prop_map(|v| (ResolvedType::Long { unsigned: true }, Value::ULong(v))),
        any::<i64>()
            .prop_map(|v| (ResolvedType::LongLong { unsigned: false }, Value::LongLong(v))),
        any::<u64>()
            .prop_map(|v| (ResolvedType::LongLong { unsigned: true }, Value::ULongLong(v))),
        any::<f32>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(|v| (ResolvedType::Float, Value::Float(v))),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(|v| (ResolvedType::Double, Value::Double(v))),
        "[ -~]{0,40}".prop_map(|s| (ResolvedType::String, Value::Str(s))),
        (any::<i32>(), any::<f64>().prop_filter("finite", |f| f.is_finite())).prop_map(
            |(x, y)| {
                (
                    ResolvedType::Struct("IDL:Point:1.0".into()),
                    Value::Struct {
                        id: "IDL:Point:1.0".into(),
                        fields: vec![Value::Long(x), Value::Double(y)],
                    },
                )
            }
        ),
        (0u32..3).prop_map(|o| {
            (
                ResolvedType::Enum("IDL:Color:1.0".into()),
                Value::Enum { id: "IDL:Color:1.0".into(), ordinal: o },
            )
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(h, oid)| {
            (
                ResolvedType::Object("IDL:Thing:1.0".into()),
                Value::ObjRef(ObjectRef {
                    key: ObjectKey { host: lc_net::HostId(h), oid },
                    type_id: "IDL:Thing:1.0".into(),
                }),
            )
        }),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        prop::collection::vec(inner, 0..6).prop_map(|items| {
            // A sequence must be homogeneous: take the first item's type
            // (or octet for empty) and keep only matching items.
            match items.first() {
                None => (
                    ResolvedType::Sequence(Box::new(ResolvedType::Octet)),
                    Value::Sequence(vec![]),
                ),
                Some((t0, _)) => {
                    let t0 = t0.clone();
                    let vals: Vec<Value> = items
                        .iter()
                        .filter(|(t, _)| *t == t0)
                        .map(|(_, v)| v.clone())
                        .collect();
                    (ResolvedType::Sequence(Box::new(t0)), Value::Sequence(vals))
                }
            }
        })
    })
}

proptest! {
    #[test]
    fn round_trip_exact((ty, value) in typed_value()) {
        let repo = lc_idl::compile(IDL).unwrap();
        // well-typed by construction
        check_value(&value, &ty, &repo).unwrap();
        let mut enc = Encoder::new();
        enc.value(&value);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes, &repo);
        let back = dec.value(&ty).unwrap();
        prop_assert_eq!(&back, &value);
        prop_assert_eq!(dec.consumed(), bytes.len());
        // encoding is deterministic
        let mut enc2 = Encoder::new();
        enc2.value(&back);
        prop_assert_eq!(enc2.into_bytes(), bytes);
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decoder_total(
        garbage in prop::collection::vec(any::<u8>(), 0..200),
        pick in 0usize..8,
    ) {
        let repo = lc_idl::compile(IDL).unwrap();
        let tys = [
            ResolvedType::Boolean,
            ResolvedType::Long { unsigned: false },
            ResolvedType::Double,
            ResolvedType::String,
            ResolvedType::Sequence(Box::new(ResolvedType::String)),
            ResolvedType::Struct("IDL:Point:1.0".into()),
            ResolvedType::Enum("IDL:Color:1.0".into()),
            ResolvedType::Object("IDL:Thing:1.0".into()),
        ];
        let mut dec = Decoder::new(&garbage, &repo);
        let _ = dec.value(&tys[pick]);
    }
}
