//! Property-based tests for CDR marshalling: any well-typed value
//! round-trips bit-exactly through encode → decode, and the type checker
//! agrees with the decoder about well-typedness.

use lc_idl::types::ResolvedType;
use lc_orb::{check_value, Decoder, Encoder, ObjectKey, ObjectRef, Value};
use lc_prop::{check, Gen};

const IDL: &str = r#"
    struct Point { long x; double y; };
    enum Color { red, green, blue };
    interface Thing { void f(); };
"#;

/// Produce a `(type, well-typed value)` pair, recursively: at depth > 0 a
/// draw may be a homogeneous sequence of deeper draws.
fn typed_value(g: &mut Gen, depth: usize) -> (ResolvedType, Value) {
    // One extra arm for sequences while depth remains.
    let arms = if depth > 0 { 16u32 } else { 15 };
    match g.gen_range(0..arms) {
        0 => (ResolvedType::Boolean, Value::Boolean(g.gen_bool())),
        1 => (ResolvedType::Octet, Value::Octet(g.any_u8())),
        2 => (ResolvedType::Char, Value::Char(g.any_char())),
        3 => (ResolvedType::Short { unsigned: false }, Value::Short(g.any_i16())),
        4 => (ResolvedType::Short { unsigned: true }, Value::UShort(g.any_u16())),
        5 => (ResolvedType::Long { unsigned: false }, Value::Long(g.any_i32())),
        6 => (ResolvedType::Long { unsigned: true }, Value::ULong(g.any_u32())),
        7 => (ResolvedType::LongLong { unsigned: false }, Value::LongLong(g.any_i64())),
        8 => (ResolvedType::LongLong { unsigned: true }, Value::ULongLong(g.any_u64())),
        9 => (ResolvedType::Float, Value::Float(g.any_f32())),
        10 => (ResolvedType::Double, Value::Double(g.any_f64())),
        11 => (ResolvedType::String, Value::Str(g.ascii_printable(0..41))),
        12 => (
            ResolvedType::Struct("IDL:Point:1.0".into()),
            Value::Struct {
                id: "IDL:Point:1.0".into(),
                fields: vec![Value::Long(g.any_i32()), Value::Double(g.any_f64())],
            },
        ),
        13 => {
            let ordinal = g.gen_range(0..3u32);
            (
                ResolvedType::Enum("IDL:Color:1.0".into()),
                Value::Enum { id: "IDL:Color:1.0".into(), ordinal },
            )
        }
        14 => (
            ResolvedType::Object("IDL:Thing:1.0".into()),
            Value::ObjRef(ObjectRef {
                key: ObjectKey { host: lc_net::HostId(g.any_u32()), oid: g.any_u64() },
                type_id: "IDL:Thing:1.0".into(),
            }),
        ),
        _ => {
            // A sequence must be homogeneous: generate one element to fix
            // the type, then keep generating until one matches it.
            let n = g.gen_range(0..6usize);
            if n == 0 {
                return (
                    ResolvedType::Sequence(Box::new(ResolvedType::Octet)),
                    Value::Sequence(vec![]),
                );
            }
            let (t0, v0) = typed_value(g, depth - 1);
            let mut vals = vec![v0];
            for _ in 1..n {
                let (t, v) = typed_value(g, depth - 1);
                if t == t0 {
                    vals.push(v);
                }
            }
            (ResolvedType::Sequence(Box::new(t0)), Value::Sequence(vals))
        }
    }
}

#[test]
fn round_trip_exact() {
    let repo = lc_idl::compile(IDL).unwrap();
    check("round_trip_exact", |g| {
        let depth = g.gen_range(0..4usize);
        let (ty, value) = typed_value(g, depth);
        // well-typed by construction
        check_value(&value, &ty, &repo).unwrap();
        let mut enc = Encoder::new();
        enc.value(&value);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes, &repo);
        let back = dec.value(&ty).unwrap();
        assert_eq!(&back, &value);
        assert_eq!(dec.consumed(), bytes.len());
        // encoding is deterministic
        let mut enc2 = Encoder::new();
        enc2.value(&back);
        assert_eq!(enc2.into_bytes(), bytes);
    });
}

/// Decoding arbitrary garbage never panics.
#[test]
fn decoder_total() {
    let repo = lc_idl::compile(IDL).unwrap();
    check("decoder_total", |g| {
        let garbage = g.bytes(0..200);
        let tys = [
            ResolvedType::Boolean,
            ResolvedType::Long { unsigned: false },
            ResolvedType::Double,
            ResolvedType::String,
            ResolvedType::Sequence(Box::new(ResolvedType::String)),
            ResolvedType::Struct("IDL:Point:1.0".into()),
            ResolvedType::Enum("IDL:Color:1.0".into()),
            ResolvedType::Object("IDL:Thing:1.0".into()),
        ];
        let ty = g.pick(&tys).clone();
        let mut dec = Decoder::new(&garbage, &repo);
        let _ = dec.value(&ty);
    });
}
