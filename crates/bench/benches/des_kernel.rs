//! Micro-bench: DES kernel event throughput and fabric send cost —
//! the substrate budget every simulated experiment draws from.

use lc_bench::micro::bench;
use lc_des::{Actor, AnyMsg, Ctx, Sim, SimTime};
use lc_net::{HostCfg, Net, NetMsg, Topology};
use std::hint::black_box;

struct PingPong {
    peer: lc_des::ActorId,
    left: u64,
}
struct Tick;

impl Actor for PingPong {
    fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMsg) {
        if self.left > 0 {
            self.left -= 1;
            ctx.send_in(SimTime::from_nanos(100), self.peer, Tick);
        }
    }
}

struct Sender {
    net: Net,
    left: u64,
}
struct Sink;
impl Actor for Sink {
    fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: AnyMsg) {
        let _ = msg.downcast::<NetMsg>();
    }
}
impl Actor for Sender {
    fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMsg) {
        if self.left > 0 {
            self.left -= 1;
            let _ = self.net.send(ctx, lc_net::HostId(0), lc_net::HostId(1), 256, ());
            ctx.timer_in(SimTime::from_micros(1), Tick);
        }
    }
}

fn main() {
    println!("== des_kernel ==");

    bench("des_ping_pong_10k_events", || {
        let mut sim = Sim::new(1);
        let a = sim.spawn(PingPong { peer: lc_des::ActorId(1), left: 5_000 });
        let bb = sim.spawn(PingPong { peer: a, left: 5_000 });
        sim.send_in(SimTime::ZERO, bb, Tick);
        sim.run();
        black_box(sim.events_fired());
    });

    bench("net_send_10k_messages", || {
        let mut topo = Topology::new();
        let s = topo.add_site("l");
        topo.add_host(HostCfg::new(s));
        topo.add_host(HostCfg::new(s));
        let net = Net::builder(topo).build();
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink);
        net.bind(lc_net::HostId(1), sink);
        let snd = sim.spawn(Sender { net: net.clone(), left: 10_000 });
        net.bind(lc_net::HostId(0), snd);
        sim.send_in(SimTime::ZERO, snd, Tick);
        sim.run();
        black_box(sim.events_fired());
    });
}
