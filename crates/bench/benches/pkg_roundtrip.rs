//! Criterion bench for E9: package pack / parse+verify throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lc_pkg::{ComponentDescriptor, Package, Platform, SigningKey, Version};
use std::hint::black_box;

fn code_payload(size: usize) -> Vec<u8> {
    (0..size)
        .map(|i| match i % 16 {
            0..=7 => 0x90,
            8..=11 => (i / 64) as u8,
            _ => 0xCC,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let key = SigningKey::new("v", b"s");
    let mut g = c.benchmark_group("pkg_roundtrip");
    for &size in &[16 * 1024usize, 256 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        let payload = code_payload(size);
        g.bench_with_input(BenchmarkId::new("pack", size), &payload, |b, payload| {
            b.iter(|| {
                let desc = ComponentDescriptor::new("P", Version::new(1, 0), "v");
                let mut pkg =
                    Package::new(desc).with_binary(Platform::reference(), "x", payload);
                pkg.seal(&key);
                black_box(pkg.to_bytes())
            })
        });
        let desc = ComponentDescriptor::new("P", Version::new(1, 0), "v");
        let mut pkg = Package::new(desc).with_binary(Platform::reference(), "x", &payload);
        pkg.seal(&key);
        let bytes = pkg.to_bytes();
        g.bench_with_input(BenchmarkId::new("parse_verify", size), &bytes, |b, bytes| {
            b.iter(|| Package::from_bytes(black_box(bytes)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
