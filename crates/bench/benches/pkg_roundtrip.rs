//! Micro-bench for E9: package pack / parse+verify throughput.

use lc_bench::micro::{bench, mib_per_s};
use lc_pkg::{ComponentDescriptor, Package, Platform, SigningKey, Version};
use std::hint::black_box;

fn code_payload(size: usize) -> Vec<u8> {
    (0..size)
        .map(|i| match i % 16 {
            0..=7 => 0x90,
            8..=11 => (i / 64) as u8,
            _ => 0xCC,
        })
        .collect()
}

fn main() {
    let key = SigningKey::new("v", b"s");
    println!("== pkg_roundtrip ==");
    for &size in &[16 * 1024usize, 256 * 1024] {
        let payload = code_payload(size);
        let m = bench(&format!("pack/{size}"), || {
            let desc = ComponentDescriptor::new("P", Version::new(1, 0), "v");
            let mut pkg = Package::new(desc).with_binary(Platform::reference(), "x", &payload);
            pkg.seal(&key);
            black_box(pkg.to_bytes());
        });
        println!("    throughput: {:.1} MiB/s", mib_per_s(size as u64, m.median_ns));

        let desc = ComponentDescriptor::new("P", Version::new(1, 0), "v");
        let mut pkg = Package::new(desc).with_binary(Platform::reference(), "x", &payload);
        pkg.seal(&key);
        let bytes = pkg.to_bytes();
        let m = bench(&format!("parse_verify/{size}"), || {
            black_box(Package::from_bytes(black_box(&bytes)).unwrap());
        });
        println!("    throughput: {:.1} MiB/s", mib_per_s(size as u64, m.median_ns));
    }
}
