//! Micro-bench for E1: invocation cost through the lightweight ORB.

use lc_bench::micro::bench;
use lc_orb::{Invocation, LocalOrb, OrbError, Servant, Value};
use std::hint::black_box;
use std::sync::Arc;

struct BenchImpl {
    total: i64,
}

impl Servant for BenchImpl {
    fn interface_id(&self) -> &str {
        "IDL:Bench:1.0"
    }
    fn dispatch(&mut self, inv: &mut Invocation<'_>) -> Result<(), OrbError> {
        match inv.op {
            "bump" => {
                self.total += inv.args[0].as_long().unwrap() as i64;
                inv.set_ret(Value::Long(self.total as i32));
                Ok(())
            }
            "echo" => {
                inv.set_ret(inv.args[0].clone());
                Ok(())
            }
            op => Err(OrbError::BadOperation(op.into())),
        }
    }
}

fn main() {
    let repo = Arc::new(
        lc_idl::compile("interface Bench { long bump(in long d); string echo(in string s); };")
            .unwrap(),
    );
    println!("== orb_invocation ==");

    let mut raw = BenchImpl { total: 0 };
    bench("direct_dispatch", || {
        let args = [Value::Long(1)];
        let mut inv = Invocation::new("bump", &args);
        raw.dispatch(black_box(&mut inv)).unwrap();
    });

    let orb = LocalOrb::new(repo.clone());
    let obj = orb.activate(Box::new(BenchImpl { total: 0 }));
    bench("orb_typed", || {
        orb.invoke(black_box(&obj), "bump", &[Value::Long(1)]).unwrap();
    });
    bench("orb_marshalled", || {
        orb.invoke_marshalled(black_box(&obj), "bump", &[Value::Long(1)]).unwrap();
    });
    let payload = Value::string(&"x".repeat(256));
    bench("orb_echo_string256", || {
        orb.invoke(black_box(&obj), "echo", std::slice::from_ref(&payload)).unwrap();
    });
}
