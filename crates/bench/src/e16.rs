//! E16 — open-loop capacity under overload control.
//!
//! An `lc-load` workload engine offers traffic to a small campus at a
//! *configured* rate (open loop: arrivals never wait for replies — the
//! overloaded system keeps receiving them), sweeping the offered load
//! across three arrival shapes (steady, diurnal wave, flash crowd) and
//! two server variants:
//!
//! * `shed`   — bounded admission ([`AdmissionConfig`]): the worker
//!   refuses requests whose queue backlog exceeds 150 ms (and anything
//!   that cannot meet the 250 ms invoke deadline) with an immediate
//!   `OrbError::Overload`;
//! * `noshed` — no admission control: every request queues, and under
//!   overload replies arrive after the client's deadline (silent
//!   goodput collapse — the failure mode shedding exists to prevent).
//!
//! The *knee* of the goodput-vs-offered-load curve is the headline
//! capacity number. Past the knee the shed variant must retain most of
//! its peak goodput while the noshed variant collapses (both gated by
//! the binary and ci.sh). A final scenario turns on hot-component
//! replication: when the worker saturates, it asks its group MRM for a
//! placement and spawns a replica; drivers re-query the registry and
//! spread zipf-keyed traffic over the replica set, lifting goodput past
//! a single node's capacity.
//!
//! Everything reported derives from virtual time, so report and JSON
//! are byte-identical across runs (ci.sh double-runs and diffs).

use crate::{f2, format_table};
use lc_core::cohesion::CohesionConfig;
use lc_core::demo;
use lc_core::node::{AdmissionConfig, InvokePolicy, NodeCmd, ReplicateConfig};
use lc_core::testkit::{build_world, World};
use lc_core::{NodeConfig, SpawnSink};
use lc_des::SimTime;
use lc_load::{
    percentile, ArrivalShape, ArrivalStream, DriverArrival, DriverConfig, DriverStats,
    LoadDriver, QueryTick, StreamConfig, ZipfKeys,
};
use lc_net::{HostId, Topology};
use lc_orb::Value;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;

/// Campus: 2 sites x 4 hosts; hosts 0 and 4 are servers (4x CPU).
const N: usize = 8;
/// The worker hosting the Display instance (workstation: ~5000 draws/s
/// at 200 us/draw).
const WORKER: HostId = HostId(1);
/// Front-end ingress hosts, one load driver each (two per site).
const FRONTS: [HostId; 4] = [HostId(2), HostId(3), HostId(5), HostId(6)];
/// Soft-state convergence before traffic starts.
const WARMUP: SimTime = SimTime::from_secs(1);
/// Open-loop offered-traffic window.
const HORIZON: SimTime = SimTime::from_secs(2);
/// Post-horizon drain so every in-flight call resolves (client
/// deadline 250 ms << drain).
const DRAIN: SimTime = SimTime::from_millis(600);
/// Offered-load sweep, arrivals/second (base intensity of each shape).
const RATES: [f64; 4] = [2_500.0, 5_000.0, 7_500.0, 10_000.0];
/// Simulated user population.
const USERS: u64 = 1_000_000;
/// Replica re-discovery period of each driver.
const REQUERY: SimTime = SimTime::from_millis(100);
/// Offered load of the replication scenario (≈1.8x one worker).
const REPLICATION_RATE: f64 = 9_000.0;

fn shapes() -> [ArrivalShape; 3] {
    [
        ArrivalShape::Steady,
        ArrivalShape::Diurnal { period: SimTime::from_millis(500), depth: 0.4 },
        ArrivalShape::Flash {
            at: SimTime::from_millis(800),
            width: SimTime::from_millis(400),
            magnitude: 3.0,
        },
    ]
}

fn config(admission: Option<AdmissionConfig>) -> NodeConfig {
    NodeConfig {
        cohesion: CohesionConfig {
            fanout: 8,
            replicas: 2,
            report_period: SimTime::from_millis(200),
            timeout_intervals: 3,
        },
        invoke: InvokePolicy {
            deadline: Some(SimTime::from_millis(250)),
            retries: 0,
            ..InvokePolicy::default()
        },
        require_signature: false,
        admission,
        ..Default::default()
    }
}

fn shed_config() -> AdmissionConfig {
    AdmissionConfig {
        query_queue_cap: 1024,
        cpu_backlog_cap: SimTime::from_millis(150),
        deadline_aware: true,
        replicate_hot: None,
    }
}

/// Aggregate outcome of one `(shape, rate, variant)` scenario.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Measured offered load (arrivals emitted / horizon).
    pub offered_per_sec: f64,
    /// Successful replies / horizon.
    pub goodput_per_sec: f64,
    /// Arrivals sent.
    pub sent: u64,
    /// Successful replies.
    pub ok: u64,
    /// Admission-refused replies.
    pub overload: u64,
    /// Client-deadline expiries.
    pub timeout: u64,
    /// Invoke latency percentiles over successful replies, ms.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    /// First-offer latency p50 over the drivers' discovery queries, ms.
    pub first_offer_p50_ms: f64,
    /// Replicas spawned by hot-component replication.
    pub replicas: u64,
}

/// Run one scenario and aggregate its four drivers.
fn run_scenario(
    shape: &ArrivalShape,
    rate: f64,
    admission: Option<AdmissionConfig>,
    seed: u64,
    key_count: usize,
) -> RunStats {
    let behaviors = lc_core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    let mut w: World = build_world(
        Topology::campus(2, 4),
        seed,
        config(admission),
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        // Only non-front hosts carry the package: front ends must
        // discover over the network (so first-offer latency is real),
        // and the replica-placement targets (the servers and the spare
        // workstation) can still satisfy a Spawn.
        |h| {
            if FRONTS.contains(&h) {
                Vec::new()
            } else {
                vec![demo::display_package_sized(8 * 1024)]
            }
        },
    );
    let spawn: SpawnSink = Rc::new(RefCell::new(None));
    w.cmd(
        WORKER,
        NodeCmd::SpawnLocal {
            component: "Display".into(),
            min_version: lc_pkg::Version::new(2, 0),
            instance_name: None,
            sink: spawn.clone(),
        },
    );
    w.sim.run_until(WARMUP);
    let target = match spawn.borrow().clone() {
        Some(Ok(r)) => r,
        other => panic!("e16: worker spawn failed: {other:?}"),
    };

    let mut drivers = Vec::new();
    for (i, front) in FRONTS.iter().enumerate() {
        let driver = LoadDriver::new(DriverConfig {
            node: w.actors[front.0 as usize],
            component: "Display".into(),
            op: "draw".into(),
            args: vec![Value::string("frame")],
            initial_target: target.clone(),
            requery: Some(REQUERY),
        });
        let actor = w.sim.spawn(driver);
        // Staggered discovery so four queries never share a tick.
        w.sim.send_in(SimTime::from_millis(13 + 7 * i as u64), actor, QueryTick);
        let stream = StreamConfig {
            shape: shape.clone(),
            rate_per_sec: rate,
            seed: seed ^ 0xE16,
            horizon: HORIZON,
            users: USERS,
            keys: ZipfKeys::new(key_count, 1.0),
        };
        for a in ArrivalStream::split(stream, i, FRONTS.len()) {
            w.sim.send_in(a.at, actor, DriverArrival(a));
        }
        drivers.push(actor);
    }
    w.sim.run_until(WARMUP + HORIZON + DRAIN);

    let mut agg = DriverStats::default();
    for id in drivers {
        let Some(d) = w.sim.actor_as_mut::<LoadDriver>(id) else {
            panic!("e16: driver actor vanished");
        };
        let s = d.stats();
        agg.sent += s.sent;
        agg.ok += s.ok;
        agg.overload += s.overload;
        agg.timeout += s.timeout;
        agg.ok_latency_ms.extend(s.ok_latency_ms);
        agg.first_offer_ms.extend(s.first_offer_ms);
    }
    let horizon_s = HORIZON.as_secs_f64();
    RunStats {
        offered_per_sec: agg.sent as f64 / horizon_s,
        goodput_per_sec: agg.ok as f64 / horizon_s,
        sent: agg.sent,
        ok: agg.ok,
        overload: agg.overload,
        timeout: agg.timeout,
        p50_ms: percentile(&agg.ok_latency_ms, 50.0),
        p99_ms: percentile(&agg.ok_latency_ms, 99.0),
        p999_ms: percentile(&agg.ok_latency_ms, 99.9),
        first_offer_p50_ms: percentile(&agg.first_offer_ms, 50.0),
        replicas: w.sim.metrics_ref().counter("admission.replicas"),
    }
}

/// One point of a goodput curve: the same offered stream against both
/// server variants.
pub struct CurvePoint {
    /// Base intensity handed to the generator.
    pub rate: f64,
    /// Shed-variant outcome.
    pub shed: RunStats,
    /// Noshed-variant outcome.
    pub noshed: RunStats,
}

/// One arrival shape's sweep.
pub struct ShapeCurve {
    /// Shape name.
    pub name: &'static str,
    /// Sweep points in offered-load order.
    pub points: Vec<CurvePoint>,
    /// Knee: measured offered load at maximum shed goodput.
    pub knee_offered: f64,
    /// Goodput at the knee.
    pub knee_goodput: f64,
    /// Goodput at the highest offered point / knee goodput, shed.
    pub shed_retention: f64,
    /// Same ratio for the noshed variant (vs the *noshed* peak).
    pub noshed_retention: f64,
}

/// The replication scenario pair.
pub struct ReplicationResult {
    /// Goodput with shedding only.
    pub goodput_off: f64,
    /// Goodput with shedding + hot-component replication.
    pub goodput_on: f64,
    /// `on / off`.
    pub gain: f64,
    /// Replicas spawned in the `on` run.
    pub replicas: u64,
}

/// Both artefacts of one E16 run.
pub struct E16Output {
    /// Human-readable report.
    pub report: String,
    /// Machine-readable summary (sorted keys, stable formatting).
    pub json: String,
    /// All overload-control gates (retention + replication) passed.
    pub gates_ok: bool,
}

fn sweep_shape(shape: &ArrivalShape, rates: &[f64], seed: u64) -> ShapeCurve {
    let mut points = Vec::new();
    for &rate in rates {
        points.push(CurvePoint {
            rate,
            shed: run_scenario(shape, rate, Some(shed_config()), seed, 1),
            noshed: run_scenario(shape, rate, None, seed, 1),
        });
    }
    let shed_curve: Vec<(f64, f64)> =
        points.iter().map(|p| (p.shed.offered_per_sec, p.shed.goodput_per_sec)).collect();
    let (knee_offered, knee_goodput) = lc_load::knee(&shed_curve);
    let last = match points.last() {
        Some(p) => p,
        None => panic!("e16: empty sweep"),
    };
    let noshed_peak = points
        .iter()
        .map(|p| p.noshed.goodput_per_sec)
        .fold(0.0f64, f64::max);
    ShapeCurve {
        name: shape.name(),
        shed_retention: last.shed.goodput_per_sec / knee_goodput.max(f64::MIN_POSITIVE),
        noshed_retention: last.noshed.goodput_per_sec / noshed_peak.max(f64::MIN_POSITIVE),
        knee_offered,
        knee_goodput,
        points,
    }
}

fn run_replication(seed: u64) -> ReplicationResult {
    let off = run_scenario(
        &ArrivalShape::Steady,
        REPLICATION_RATE,
        Some(shed_config()),
        seed,
        16,
    );
    let on = run_scenario(
        &ArrivalShape::Steady,
        REPLICATION_RATE,
        Some(AdmissionConfig {
            replicate_hot: Some(ReplicateConfig {
                cooldown: SimTime::from_millis(200),
                max_replicas: 1,
            }),
            ..shed_config()
        }),
        seed,
        16,
    );
    ReplicationResult {
        gain: on.goodput_per_sec / off.goodput_per_sec.max(f64::MIN_POSITIVE),
        goodput_off: off.goodput_per_sec,
        goodput_on: on.goodput_per_sec,
        replicas: on.replicas,
    }
}

fn render_json(curves: &[ShapeCurve], rep: &ReplicationResult, gates_ok: bool) -> String {
    let mut j = String::new();
    let headline = &curves[0];
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"e16_capacity\",");
    let _ = writeln!(j, "  \"gates_ok\": {gates_ok},");
    let _ = writeln!(j, "  \"headline_knee_goodput_per_sec\": {},", f2(headline.knee_goodput));
    let _ = writeln!(j, "  \"headline_knee_offered_per_sec\": {},", f2(headline.knee_offered));
    let _ = writeln!(j, "  \"nodes\": {N},");
    let _ = writeln!(j, "  \"replication\": {{");
    let _ = writeln!(j, "    \"gain\": {},", f2(rep.gain));
    let _ = writeln!(j, "    \"goodput_off_per_sec\": {},", f2(rep.goodput_off));
    let _ = writeln!(j, "    \"goodput_on_per_sec\": {},", f2(rep.goodput_on));
    let _ = writeln!(j, "    \"replicas_spawned\": {}", rep.replicas);
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"schema_version\": 1,");
    let _ = writeln!(j, "  \"shapes\": [");
    for (i, c) in curves.iter().enumerate() {
        let comma = if i + 1 < curves.len() { "," } else { "" };
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"curve\": [");
        for (k, p) in c.points.iter().enumerate() {
            let pc = if k + 1 < c.points.len() { "," } else { "" };
            let _ = writeln!(j, "        {{");
            let _ = writeln!(j, "          \"first_offer_p50_ms\": {},", f2(p.shed.first_offer_p50_ms));
            let _ = writeln!(j, "          \"goodput_noshed_per_sec\": {},", f2(p.noshed.goodput_per_sec));
            let _ = writeln!(j, "          \"goodput_shed_per_sec\": {},", f2(p.shed.goodput_per_sec));
            let _ = writeln!(j, "          \"offered_per_sec\": {},", f2(p.shed.offered_per_sec));
            let _ = writeln!(j, "          \"overload_replies\": {},", p.shed.overload);
            let _ = writeln!(j, "          \"p50_ms\": {},", f2(p.shed.p50_ms));
            let _ = writeln!(j, "          \"p999_ms\": {},", f2(p.shed.p999_ms));
            let _ = writeln!(j, "          \"p99_ms\": {},", f2(p.shed.p99_ms));
            let _ = writeln!(j, "          \"timeouts_noshed\": {}", p.noshed.timeout);
            let _ = writeln!(j, "        }}{pc}");
        }
        let _ = writeln!(j, "      ],");
        let _ = writeln!(j, "      \"knee_goodput_per_sec\": {},", f2(c.knee_goodput));
        let _ = writeln!(j, "      \"knee_offered_per_sec\": {},", f2(c.knee_offered));
        let _ = writeln!(j, "      \"name\": \"{}\",", c.name);
        let _ = writeln!(j, "      \"post_knee_noshed_retention\": {},", f2(c.noshed_retention));
        let _ = writeln!(j, "      \"post_knee_shed_retention\": {}", f2(c.shed_retention));
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Run the sweep with a rate cap (smoke mode); `None` = full matrix.
pub fn run_limited(seed: u64, max_rate: Option<f64>) -> E16Output {
    let rates: Vec<f64> = RATES
        .iter()
        .copied()
        .filter(|r| max_rate.is_none_or(|m| *r <= m))
        .collect();
    let curves: Vec<ShapeCurve> =
        shapes().iter().map(|s| sweep_shape(s, &rates, seed)).collect();
    let rep = run_replication(seed);

    // Overload-control gates. Retention gates need a post-knee point,
    // so they only bind when the sweep reaches 1.5x the knee.
    let mut gates_ok = rep.gain >= 1.3 && rep.replicas >= 1;
    for c in &curves {
        let last_offered = c.points.last().map_or(0.0, |p| p.shed.offered_per_sec);
        if last_offered >= c.knee_offered * 1.5 {
            gates_ok &= c.shed_retention >= 0.8;
            gates_ok &= c.noshed_retention < 0.5;
        }
    }

    let mut report = String::new();
    let _ = writeln!(
        report,
        "E16: open-loop capacity under overload control (seed {seed})"
    );
    let _ = writeln!(
        report,
        "{N} nodes (2 sites x 4), worker at host {}, {} drivers, {}s horizon, \
         deadline 250ms, backlog cap 150ms",
        WORKER.0,
        FRONTS.len(),
        HORIZON.as_secs_f64(),
    );
    for c in &curves {
        let rows: Vec<Vec<String>> = c
            .points
            .iter()
            .map(|p| {
                vec![
                    f2(p.shed.offered_per_sec),
                    f2(p.shed.goodput_per_sec),
                    f2(p.noshed.goodput_per_sec),
                    p.shed.overload.to_string(),
                    p.noshed.timeout.to_string(),
                    f2(p.shed.p50_ms),
                    f2(p.shed.p99_ms),
                    f2(p.shed.p999_ms),
                    f2(p.shed.first_offer_p50_ms),
                ]
            })
            .collect();
        report.push_str(&format_table(
            &format!("{} arrivals", c.name),
            &[
                "offered/s",
                "goodput shed",
                "goodput noshed",
                "shed",
                "noshed timeouts",
                "p50 ms",
                "p99 ms",
                "p99.9 ms",
                "1st-offer p50",
            ],
            &rows,
        ));
        let _ = writeln!(
            report,
            "knee: {} op/s offered -> {} op/s goodput; post-knee retention shed {} vs noshed {}\n",
            f2(c.knee_offered),
            f2(c.knee_goodput),
            f2(c.shed_retention),
            f2(c.noshed_retention),
        );
    }
    let _ = writeln!(
        report,
        "replication: goodput {} -> {} op/s ({}x) with {} replica(s) spawned",
        f2(rep.goodput_off),
        f2(rep.goodput_on),
        f2(rep.gain),
        rep.replicas,
    );
    let _ = writeln!(report, "gates: {}", if gates_ok { "ok" } else { "FAILED" });

    E16Output { report, json: render_json(&curves, &rep, gates_ok), gates_ok }
}

/// Full sweep (the committed-artefact configuration).
pub fn run(seed: u64) -> E16Output {
    run_limited(seed, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_is_deterministic_and_gates_pass() {
        let a = run(16);
        let b = run(16);
        assert_eq!(a.report, b.report);
        assert_eq!(a.json, b.json);
        assert!(a.gates_ok, "overload gates failed:\n{}", a.report);
    }
}
