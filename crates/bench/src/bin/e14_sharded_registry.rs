//! E14 — sharded registry driver (see `lc_bench::e14` for the model
//! and variant ladder).
//!
//! Usage: `e14_sharded_registry [--max-nodes N] [--gate-reduction R] [JSON_PATH]`
//!
//! * `--max-nodes N` caps the sweep (ci.sh smoke runs cap at 1024; the
//!   committed `BENCH_e14.json` includes the 8k end points).
//! * `--gate-reduction R` exits non-zero if any 4+-shard point on the
//!   1k campus reduces the former leader's recv bytes by less than `R`x
//!   or regresses p99 over the single-leader row — the hotspot gate.
//!
//! Every stdout line and JSON key carrying wall-clock cost is marked
//! `wall`; ci.sh filters those before diffing, so everything else is
//! byte-identical across runs.

use lc_bench::e14;
use lc_net::HostId;
use std::time::Instant; // lc-lint: allow(D1) -- explicit wall-clock column

fn main() {
    let mut max_nodes: u32 = 8192;
    let mut gate: Option<f64> = None;
    let mut path = "target/BENCH_e14.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-nodes" => {
                let v = args.next().unwrap_or_default();
                max_nodes = v.parse().unwrap_or_else(|_| die(&format!("bad --max-nodes {v}")));
            }
            "--gate-reduction" => {
                let v = args.next().unwrap_or_default();
                gate = Some(v.parse().unwrap_or_else(|_| die(&format!("bad gate {v}"))));
            }
            p => path = p.to_string(),
        }
    }

    let seed = 14;
    let mut points: Vec<e14::SweepPoint> = Vec::new();
    let mut leaders: Vec<(u32, HostId)> = Vec::new();
    for p in e14::grid(max_nodes) {
        let leader = leaders.iter().find(|(n, _)| *n == p.nodes).map(|&(_, h)| h);
        let t0 = Instant::now(); // lc-lint: allow(D1) -- wall column only
        let result = e14::run_point(p, seed, leader);
        let wall_s = t0.elapsed().as_secs_f64(); // lc-lint: allow(D1) -- wall column only
        if p.shards == 0 {
            leaders.push((p.nodes, result.hotspot));
        }
        points.push(e14::SweepPoint { result, wall_s });
    }
    let out = e14::render(&points, seed);
    print!("{}", out.report);
    if let Err(e) = std::fs::write(&path, &out.json) {
        eprintln!("e14: failed to write {path}: {e}");
        std::process::exit(1);
    }
    println!("\nsummary: {} sweep points written to JSON", points.len());

    if let Some(r) = gate {
        let single_p99 = points
            .iter()
            .find(|p| p.result.point.nodes == 1024 && p.result.point.shards == 0)
            .map(|p| p.result.p99_ms)
            .unwrap_or(f64::INFINITY);
        let single_leader_recv = points
            .iter()
            .find(|p| p.result.point.nodes == 1024 && p.result.point.shards == 0)
            .map(|p| p.result.leader_recv)
            .unwrap_or(0);
        for p in points.iter().filter(|p| p.result.point.nodes == 1024 && p.result.point.shards >= 4)
        {
            let red = single_leader_recv as f64 / p.result.leader_recv.max(1) as f64;
            if red < r {
                eprintln!(
                    "e14: hotspot gate FAILED at {} shards: reduction {red:.2} < {r:.2}",
                    p.result.point.shards
                );
                std::process::exit(1);
            }
            if p.result.p99_ms > single_p99 {
                eprintln!(
                    "e14: latency gate FAILED at {} shards: p99 {:.2}ms > single-leader {:.2}ms",
                    p.result.point.shards, p.result.p99_ms, single_p99
                );
                std::process::exit(1);
            }
        }
        println!("hotspot gate ok: >= {r:.2}x former-leader reduction, p99 no worse at 4+ shards");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("e14: {msg}");
    std::process::exit(2);
}
