//! E7 — CSCW whiteboard: event fan-out at scale, with a PDA participant
//! (R7: one component model for all tiers; R8: tiny devices).
//!
//! A whiteboard session spans several sites; participants' GUI parts
//! subscribe to the board's stroke channel and paint through their local
//! displays. One participant is a PDA: its GUI part runs on a nearby
//! server ("they can use all components remotely") but paints on the
//! PDA's own screen over its slow wireless link.

use lc_bench::{f2, print_table};
use lc_core::node::NodeCmd;
use lc_core::testkit::{build_world, fast_cohesion, World};
use lc_core::NodeConfig;
use lc_cscw::{DisplayServant, GuiPartServant};
use lc_des::SimTime;
use lc_net::{HostCfg, HostId, Topology};
use lc_orb::Value;
use std::rc::Rc;
use std::sync::Arc;

fn spawn(world: &mut World, host: HostId, component: &str, name: &str) -> lc_orb::ObjectRef {
    let sink: lc_core::SpawnSink = Rc::default();
    world.cmd(
        host,
        NodeCmd::SpawnLocal {
            component: component.into(),
            min_version: lc_pkg::Version::new(1, 0),
            instance_name: Some(name.into()),
            sink: sink.clone(),
        },
    );
    world.sim.run_until(world.sim.now() + SimTime::from_millis(20));
    let r = sink.borrow().clone();
    r.unwrap().unwrap()
}

struct SessionResult {
    mean_latency_ms: f64,
    p95_latency_ms: f64,
    all_delivered: bool,
    pda_draws: u64,
}

fn run(participants: usize, strokes: u32, seed: u64) -> SessionResult {
    // Participants spread over sites of 4; host 0 runs the board; the
    // last participant is a PDA whose GUI runs on host 0 (a server).
    let mut topo = Topology::new();
    let sites: Vec<_> =
        (0..participants.div_ceil(4).max(1)).map(|i| topo.add_site(&format!("site{i}"))).collect();
    let board_host = topo.add_host(HostCfg::new(sites[0]).server());
    let mut hosts = Vec::new();
    for p in 0..participants {
        let site = sites[p / 4];
        if p == participants - 1 {
            hosts.push(topo.add_host(HostCfg::new(site).pda()));
        } else {
            hosts.push(topo.add_host(HostCfg::new(site)));
        }
    }
    let behaviors = lc_core::BehaviorRegistry::new();
    lc_cscw::register_cscw_behaviors(&behaviors);
    let mut world = build_world(
        topo,
        seed,
        NodeConfig { cohesion: fast_cohesion(), ..Default::default() },
        behaviors,
        lc_cscw::cscw_trust(),
        Arc::new(lc_cscw::cscw_idl()),
        |_| {
            vec![
                lc_cscw::display_package(),
                lc_cscw::gui_package(),
                lc_cscw::whiteboard_package(),
            ]
        },
    );
    world.sim.run_until(SimTime::from_millis(50));

    let board = spawn(&mut world, board_host, "Whiteboard", "board");
    let mut gui_homes = Vec::new(); // (gui host, gui name, display host)
    for (p, &host) in hosts.iter().enumerate() {
        let is_pda = p == participants - 1;
        let display = spawn(&mut world, host, "CscwDisplay", &format!("screen{p}"));
        // R8: the PDA cannot host the GUI part; it runs on the board's
        // server and uses the PDA's display remotely.
        let gui_host = if is_pda { board_host } else { host };
        let gui = spawn(&mut world, gui_host, "CscwGuiPart", &format!("gui{p}"));
        world.cmd(
            gui_host,
            NodeCmd::Invoke {
                target: gui.clone(),
                op: "_connect_display".into(),
                args: vec![Value::ObjRef(display)],
                oneway: true,
                sink: None,
            },
        );
        world.cmd(
            gui_host,
            NodeCmd::Subscribe {
                producer: board.clone(),
                port: "strokes".into(),
                consumer: gui,
                delivery_op: "_push_strokes".into(),
            },
        );
        gui_homes.push((gui_host, format!("gui{p}"), host));
    }
    world.sim.run_until(world.sim.now() + SimTime::from_millis(200));

    for k in 0..strokes {
        world.cmd(
            board_host,
            NodeCmd::Invoke {
                target: board.clone(),
                op: "user_stroke".into(),
                args: vec![
                    Value::Long(k as i32),
                    Value::Long(0),
                    Value::Long(k as i32 + 3),
                    Value::Long(3),
                ],
                oneway: true,
                sink: None,
            },
        );
        world.sim.run_until(world.sim.now() + SimTime::from_millis(50));
    }
    world.sim.run_until(world.sim.now() + SimTime::from_secs(2));

    let mut latencies = Vec::new();
    let mut all_delivered = true;
    for (gui_host, gui_name, _) in &gui_homes {
        let node = world.node(*gui_host).unwrap();
        let id = node.registry.named(gui_name).unwrap().id;
        let servant: &GuiPartServant = node.servant_of(id).unwrap();
        if servant.strokes_seen != strokes as u64 {
            all_delivered = false;
        }
        latencies.extend_from_slice(&servant.stroke_latency_ms);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let p95 = latencies
        .get(((latencies.len() as f64 * 0.95) as usize).min(latencies.len().saturating_sub(1)))
        .copied()
        .unwrap_or(0.0);

    // PDA screen painted remotely?
    let pda_host = *hosts.last().unwrap();
    let node = world.node(pda_host).unwrap();
    let pda_screen = node.registry.named(&format!("screen{}", participants - 1)).unwrap().id;
    let pda_draws =
        node.servant_of::<DisplayServant>(pda_screen).map(|d| d.draws).unwrap_or(0);

    SessionResult { mean_latency_ms: mean, p95_latency_ms: p95, all_delivered, pda_draws }
}

fn main() {
    println!("E7: whiteboard stroke fan-out (multi-site, last participant is a PDA)");
    const STROKES: u32 = 40;
    let mut rows = Vec::new();
    for &p in &[2usize, 4, 8, 16, 32] {
        let r = run(p, STROKES, 500 + p as u64);
        rows.push(vec![
            p.to_string(),
            f2(r.mean_latency_ms),
            f2(r.p95_latency_ms),
            if r.all_delivered { format!("{STROKES}/{STROKES}") } else { "LOSS".into() },
            r.pda_draws.to_string(),
        ]);
    }
    print_table(
        "stroke delivery latency vs participants",
        &["participants", "mean ms", "p95 ms", "delivered", "PDA remote paints"],
        &rows,
    );
}
