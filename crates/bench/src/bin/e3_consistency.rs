//! E3 — soft vs strong network consistency under churn (R4).
//!
//! "Instead of maintaining a 'strong' network consistency in which MRMs
//! have perfect knowledge of the set of hosts they manage, MRMs have an
//! approximate view … This soft consistency protocol leads to lower
//! bandwidth utilization and better scalability" (§2.4.3).
//!
//! Both protocols run on identical 64-host fabrics with identical churn;
//! the table reports control traffic (messages and bytes per node per
//! second) and the membership-change work each protocol performs.

use lc_baselines::strong::{StrongConfig, StrongMember};
use lc_bench::{f2, print_table};
use lc_core::demo;
use lc_core::testkit::build_world;
use lc_core::{CohesionConfig, NodeConfig, ServiceKind, ServiceMetrics};
use lc_net::HostId;
use lc_des::{Sim, SimTime};
use lc_net::{ChurnConfig, ChurnDriver, ChurnHooks, Net, Topology};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

const N: usize = 64;
const RUN_SECS: u64 = 120;
const PERIOD_MS: u64 = 2000;

struct Row {
    msgs_per_node_s: f64,
    bytes_per_node_s: f64,
    changes: u64,
}

/// Soft consistency: the CORBA-LC cohesion protocol under churn.
fn run_soft(mean_uptime: Option<SimTime>, seed: u64) -> Row {
    let behaviors = lc_core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    let world = build_world(
        Topology::campus(8, 8),
        seed,
        NodeConfig {
            cohesion: CohesionConfig {
                fanout: 8,
                replicas: 2,
                report_period: SimTime::from_millis(PERIOD_MS),
                timeout_intervals: 3,
            },
            ..Default::default()
        },
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        |_| Vec::new(),
    );
    let mut sim = world.sim;
    let net = world.net.clone();
    let seeds = world.seeds.clone();
    let actors = Rc::new(RefCell::new(world.actors.clone()));

    if let Some(up) = mean_uptime {
        // Crash/recover the non-MRM hosts (MRM failover is E4's topic).
        let victims: Vec<_> = net
            .host_ids()
            .into_iter()
            .filter(|h| h.0 % 8 >= 2) // spare the 2 MRM replicas per group
            .collect();
        let a1 = actors.clone();
        let a2 = actors.clone();
        ChurnDriver::new(
            net.clone(),
            ChurnConfig {
                mean_uptime: up,
                mean_downtime: SimTime::from_secs(10),
                victims,
                until: SimTime::from_secs(RUN_SECS),
            },
            ChurnHooks {
                on_crash: Box::new(move |sim, h| {
                    sim.kill(a1.borrow()[h.0 as usize]);
                }),
                on_recover: Box::new(move |sim, h| {
                    let a = seeds[h.0 as usize].spawn(sim);
                    a2.borrow_mut()[h.0 as usize] = a;
                }),
            },
        )
        .install(&mut sim);
    }

    sim.run_until(SimTime::from_secs(RUN_SECS));
    let m = sim.metrics_ref();
    let msgs = m.counter("cohesion.reports") + m.counter("cohesion.summaries");
    Row {
        msgs_per_node_s: msgs as f64 / N as f64 / RUN_SECS as f64,
        bytes_per_node_s: m.counter("net.bytes") as f64 / N as f64 / RUN_SECS as f64,
        changes: m.counter("cohesion.evictions"),
    }
}

/// Strong consistency baseline under identical churn.
fn run_strong(mean_uptime: Option<SimTime>, seed: u64) -> Row {
    let net = Net::builder(Topology::campus(8, 8)).build();
    let mut sim = Sim::new(seed);
    let cfg = StrongConfig {
        period: SimTime::from_millis(PERIOD_MS),
        timeout_intervals: 3,
    };
    let actors = Rc::new(RefCell::new(StrongMember::install(&mut sim, &net, &cfg)));
    if let Some(up) = mean_uptime {
        let victims: Vec<_> =
            net.host_ids().into_iter().filter(|h| h.0 % 8 >= 2 && h.0 != 0).collect();
        let a1 = actors.clone();
        let a2 = actors.clone();
        let net2 = net.clone();
        let cfg2 = cfg.clone();
        ChurnDriver::new(
            net.clone(),
            ChurnConfig {
                mean_uptime: up,
                mean_downtime: SimTime::from_secs(10),
                victims,
                until: SimTime::from_secs(RUN_SECS),
            },
            ChurnHooks {
                on_crash: Box::new(move |sim, h| {
                    sim.kill(a1.borrow()[h.0 as usize]);
                }),
                on_recover: Box::new(move |sim, h| {
                    let a = StrongMember::install_one(sim, &net2, &cfg2, h);
                    a2.borrow_mut()[h.0 as usize] = a;
                }),
            },
        )
        .install(&mut sim);
    }
    sim.run_until(SimTime::from_secs(RUN_SECS));
    let m = sim.metrics_ref();
    let msgs =
        m.counter("strong.heartbeats") + m.counter("strong.view_msgs") + m.counter("strong.acks");
    Row {
        msgs_per_node_s: msgs as f64 / N as f64 / RUN_SECS as f64,
        bytes_per_node_s: m.counter("net.bytes") as f64 / N as f64 / RUN_SECS as f64,
        changes: m.counter("strong.view_changes"),
    }
}

fn main() {
    println!(
        "E3: control-plane cost, soft vs strong consistency ({N} hosts, {RUN_SECS}s, \
         report/heartbeat period {PERIOD_MS}ms)"
    );
    let mut rows = Vec::new();
    for (label, uptime) in [
        ("stable", None),
        ("churn 1/300s", Some(SimTime::from_secs(300))),
        ("churn 1/60s", Some(SimTime::from_secs(60))),
        ("churn 1/20s", Some(SimTime::from_secs(20))),
    ] {
        let soft = run_soft(uptime, 101);
        let strong = run_strong(uptime, 101);
        rows.push(vec![
            label.to_string(),
            "soft".into(),
            f2(soft.msgs_per_node_s),
            f2(soft.bytes_per_node_s),
            soft.changes.to_string(),
        ]);
        rows.push(vec![
            label.to_string(),
            "strong".into(),
            f2(strong.msgs_per_node_s),
            f2(strong.bytes_per_node_s),
            strong.changes.to_string(),
        ]);
    }
    print_table(
        "control traffic under churn",
        &["churn", "protocol", "msgs/node/s", "bytes/node/s", "membership changes"],
        &rows,
    );

    // Ablation: keep-alive period vs bandwidth (soft only, stable).
    let mut rows = Vec::new();
    for period_ms in [500u64, 1000, 2000, 5000] {
        let behaviors = lc_core::BehaviorRegistry::new();
        demo::register_demo_behaviors(&behaviors);
        let world = build_world(
            Topology::campus(8, 8),
            55,
            NodeConfig {
                cohesion: CohesionConfig {
                    fanout: 8,
                    replicas: 2,
                    report_period: SimTime::from_millis(period_ms),
                    timeout_intervals: 3,
                },
                ..Default::default()
            },
            behaviors,
            demo::demo_trust(),
            Arc::new(demo::demo_idl()),
            |_| Vec::new(),
        );
        let mut sim = world.sim;
        sim.run_until(SimTime::from_secs(60));
        let bytes = sim.metrics_ref().counter("net.bytes") as f64 / N as f64 / 60.0;
        // staleness bound = eviction timeout
        rows.push(vec![
            period_ms.to_string(),
            f2(bytes),
            format!("{}", 3 * period_ms),
        ]);
    }
    print_table(
        "ablation: report period vs bandwidth and staleness bound",
        &["period ms", "bytes/node/s", "staleness bound ms"],
        &rows,
    );

    // Which services carry the control plane: per-service counters summed
    // over all nodes (soft protocol, stable fabric, 60s).
    let behaviors = lc_core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    let mut world = build_world(
        Topology::campus(8, 8),
        55,
        NodeConfig {
            cohesion: CohesionConfig {
                fanout: 8,
                replicas: 2,
                report_period: SimTime::from_millis(PERIOD_MS),
                timeout_intervals: 3,
            },
            ..Default::default()
        },
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        |_| Vec::new(),
    );
    world.sim.run_until(SimTime::from_secs(60));
    let mut per_service = [ServiceMetrics::default(); 5];
    for h in 0..N as u32 {
        let Some(node) = world.node(HostId(h)) else { continue };
        for (acc, kind) in per_service.iter_mut().zip(ServiceKind::ALL) {
            let m = node.node_metrics().service(kind);
            acc.msgs_in += m.msgs_in;
            acc.msgs_out += m.msgs_out;
            acc.dispatches += m.dispatches;
            acc.dispatch_ns += m.dispatch_ns;
        }
    }
    let rows: Vec<Vec<String>> = ServiceKind::ALL
        .iter()
        .zip(per_service.iter())
        .map(|(kind, m)| {
            vec![
                kind.name().to_string(),
                m.msgs_in.to_string(),
                m.msgs_out.to_string(),
                m.dispatches.to_string(),
                f2(m.mean_dispatch_ns() / 1e3),
            ]
        })
        .collect();
    print_table(
        "per-service control-plane breakdown (soft, stable, 60s, all nodes)",
        &["service", "msgs in", "msgs out", "dispatches", "mean us"],
        &rows,
    );
}
