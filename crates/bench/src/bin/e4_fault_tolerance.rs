//! E4 — MRM replication and fault tolerance (R4).
//!
//! "To enhance fault-tolerance, the protocol must allow replicated peer
//! MRMs per group. The number of these replicas must be decided by the
//! protocol depending on FT requirements" (§2.4.3).
//!
//! 64 nodes, fanout 8, replica count k ∈ {1, 2, 3, 4}. Churn crashes MRM
//! seat holders (the first k hosts of every group). A query is issued
//! every 250ms from a rotating non-MRM origin; the table reports query
//! availability (hit rate), failovers taken, and the scripted-outage
//! recovery time: crash *all* configured primaries at once and measure
//! how long until queries succeed again.

use lc_bench::{f2, print_table};
use lc_core::cohesion::CohesionConfig;
use lc_core::demo;
use lc_core::node::{NodeCmd, QueryResult};
use lc_core::testkit::build_world;
use lc_core::{ComponentQuery, NodeConfig};
use lc_des::SimTime;
use lc_net::{ChurnConfig, ChurnDriver, ChurnHooks, HostId, Topology};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

const N: usize = 64;

fn world_with_replicas(k: usize, seed: u64) -> lc_core::testkit::World {
    let behaviors = lc_core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    build_world(
        Topology::campus(8, 8),
        seed,
        NodeConfig {
            cohesion: CohesionConfig {
                fanout: 8,
                replicas: k,
                report_period: SimTime::from_millis(500),
                timeout_intervals: 3,
            },
            query_timeout: SimTime::from_millis(600),
            require_signature: false,
            ..Default::default()
        },
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        // every group's host ≡ 7 (mod 8) owns the component
        |host| if host.0 % 8 == 7 { vec![demo::counter_package()] } else { Vec::new() },
    )
}

/// Availability under continuous MRM churn.
fn churn_run(k: usize) -> (f64, u64) {
    let world = world_with_replicas(k, 200 + k as u64);
    let mut sim = world.sim;
    let net = world.net.clone();
    let seeds = world.seeds.clone();
    let actors = Rc::new(RefCell::new(world.actors.clone()));

    // Churn targets every MRM seat holder (hosts 0..k of each group).
    let victims: Vec<HostId> =
        net.host_ids().into_iter().filter(|h| (h.0 % 8) < k as u32).collect();
    let a1 = actors.clone();
    let a2 = actors.clone();
    ChurnDriver::new(
        net.clone(),
        ChurnConfig {
            mean_uptime: SimTime::from_secs(20),
            mean_downtime: SimTime::from_secs(8),
            victims,
            until: SimTime::from_secs(60),
        },
        ChurnHooks {
            on_crash: Box::new(move |sim, h| sim.kill(a1.borrow()[h.0 as usize])),
            on_recover: Box::new(move |sim, h| {
                let a = seeds[h.0 as usize].spawn(sim);
                a2.borrow_mut()[h.0 as usize] = a;
            }),
        },
    )
    .install(&mut sim);

    sim.run_until(SimTime::from_secs(3)); // converge first

    let mut sinks = Vec::new();
    let mut k_query = 0u32;
    while sim.now() < SimTime::from_secs(60) {
        let origin = HostId(((k_query * 13 + 4) % N as u32) | 4); // never an MRM seat
        let sink: Rc<RefCell<QueryResult>> = Rc::default();
        let actor = actors.borrow()[origin.0 as usize];
        sim.send_in(
            SimTime::ZERO,
            actor,
            NodeCmd::Query {
                query: ComponentQuery::by_name("Counter", lc_pkg::Version::new(1, 0)),
                sink: sink.clone(),
                first_wins: true,
            },
        );
        sinks.push(sink);
        let deadline = sim.now() + SimTime::from_millis(250);
        sim.run_until(deadline);
        k_query += 1;
    }
    sim.run_until(SimTime::from_secs(62));
    let hits = sinks.iter().filter(|s| !s.borrow().offers.is_empty()).count();
    let availability = hits as f64 / sinks.len() as f64;
    (availability, sim.metrics_ref().counter("query.failover"))
}

/// Scripted outage: crash the configured primaries of every group at
/// t=5s, measure time until a query from each group succeeds again.
fn failover_run(k: usize) -> Option<SimTime> {
    let mut world = world_with_replicas(k, 300 + k as u64);
    world.sim.run_until(SimTime::from_secs(3));
    // Crash every group's configured primary (host ≡ 0 mod 8).
    for g in 0..8u32 {
        world.crash(HostId(g * 8));
    }
    let outage_at = world.sim.now();
    // Probe every 100ms until a query succeeds.
    for probe in 0..100 {
        let sink: Rc<RefCell<QueryResult>> = Rc::default();
        let origin = HostId(12); // group 1 member
        world.cmd(
            origin,
            NodeCmd::Query {
                query: ComponentQuery::by_name("Counter", lc_pkg::Version::new(1, 0)),
                sink: sink.clone(),
                first_wins: true,
            },
        );
        let deadline = world.sim.now() + SimTime::from_millis(100);
        world.sim.run_until(deadline);
        if !sink.borrow().offers.is_empty() {
            return Some(world.sim.now() - outage_at);
        }
        let _ = probe;
    }
    None
}

fn main() {
    println!("E4: MRM replication — availability under churn and failover time");
    let mut rows = Vec::new();
    for k in 1..=4usize {
        let (avail, failovers) = churn_run(k);
        let failover = failover_run(k);
        rows.push(vec![
            k.to_string(),
            f2(avail * 100.0),
            failovers.to_string(),
            match failover {
                Some(t) => format!("{:.0} ms", t.as_secs_f64() * 1e3),
                None => "NEVER (group lost)".into(),
            },
        ]);
    }
    print_table(
        "availability vs replica count (MRM-seat churn, 60s)",
        &["replicas k", "query availability %", "failovers", "all-primaries-crash recovery"],
        &rows,
    );
}
