//! E10 — fault injection and end-to-end recovery.
//!
//! The seeded [`lc_net::FaultPlan`] injects message loss, duplication,
//! jitter, timed partitions and node crash/restart schedules *under*
//! the unchanged protocol stack; the recovery layer added on top
//! (per-request deadlines + exponential backoff + retry budgets in the
//! container, request-id dedup on the servant side, query re-issue and
//! partial-result tagging in the registry) is what this experiment
//! measures:
//!
//! 1. invocation reliability vs loss rate, with and without the retry
//!    policy — success rate, p50/p99 latency, retry amplification,
//!    servant-side dedup hits and exactly-once effects;
//! 2. distributed-query success vs loss for CORBA-LC (hierarchical,
//!    with query re-issue) against the flat baseline and against
//!    strong-consistency semantics (partial results count as failure);
//! 3. a timed partition isolating one site: the hierarchy keeps serving
//!    local offers inside the partition, the flat registry goes dark;
//! 4. a scripted MRM crash/restart window driven by the fault plan's
//!    crash schedule, absorbed by MRM replication.
//!
//! Everything runs in virtual time on seeded RNGs: two runs of this
//! binary produce byte-identical output (checked by ci.sh).

use lc_bench::{f2, print_table};
use lc_core::cohesion::CohesionConfig;
use lc_core::demo;
use lc_core::node::{InvokePolicy, NodeCmd, QueryResult};
use lc_core::testkit::{build_world_on, World};
use lc_core::{ComponentQuery, InvokeSink, NodeConfig};
use lc_des::SimTime;
use lc_net::{ChurnHooks, FaultPlan, HostId, LinkFaults, Net, Topology};
use lc_orb::{ObjectRef, Value};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

const N: u32 = 64;
const LOSS_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.10];

fn cohesion() -> CohesionConfig {
    CohesionConfig {
        fanout: 8,
        replicas: 2,
        report_period: SimTime::from_millis(500),
        timeout_intervals: 3,
    }
}

/// Uniform loss/duplication/jitter on every link, or `None` at 0 loss
/// (the zero-fault path must not even draw from the fault RNG).
fn loss_plan(seed: u64, loss: f64) -> Option<FaultPlan> {
    (loss > 0.0).then(|| {
        FaultPlan::seeded(seed).default_link(
            LinkFaults::none()
                .drop_p(loss)
                .dup_p(loss / 2.0)
                .jitter(SimTime::from_millis(2)),
        )
    })
}

/// 64 nodes, campus topology, every group's host ≡ 7 (mod 8) owns the
/// Counter component.
fn world(seed: u64, plan: Option<FaultPlan>, cfg: NodeConfig) -> World {
    let behaviors = lc_core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    let mut b = Net::builder(Topology::campus(8, 8));
    if let Some(p) = plan {
        b = b.fault_plan(p);
    }
    build_world_on(
        b.build(),
        seed,
        cfg,
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        |host| if host.0 % 8 == 7 { vec![demo::counter_package()] } else { Vec::new() },
    )
}

fn hier_cfg(invoke: InvokePolicy, query_retries: u32) -> NodeConfig {
    NodeConfig {
        cohesion: cohesion(),
        query_timeout: SimTime::from_millis(600),
        invoke,
        query_retries,
        ..Default::default()
    }
}

fn pctl(sorted_ms: &[f64], p: f64) -> Option<f64> {
    if sorted_ms.is_empty() {
        return None;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    Some(sorted_ms[idx])
}

fn fmt_ms(v: Option<f64>) -> String {
    v.map_or("-".into(), |m| format!("{m:.1}"))
}

// ---------------------------------------------------------------- T1 --

struct InvokeStats {
    success: f64,
    p50: Option<f64>,
    p99: Option<f64>,
    amplification: f64,
    dedup_hits: u64,
    servant_execs: i64,
}

/// K cross-site invocations of `Counter::inc` from host 12 against the
/// instance on host 7, under uniform loss.
fn invoke_run(loss: f64, policy: InvokePolicy) -> InvokeStats {
    const K: usize = 200;
    let seed = 1000 + (loss * 100.0) as u64;
    let mut w = world(seed, loss_plan(seed, loss), hier_cfg(policy, 0));
    w.sim.run_until(SimTime::from_secs(2));

    let owner = HostId(7);
    let client = HostId(12);
    let spawn: Rc<RefCell<Option<Result<ObjectRef, String>>>> = Rc::default();
    w.cmd(
        owner,
        NodeCmd::SpawnLocal {
            component: "Counter".into(),
            min_version: lc_pkg::Version::new(1, 0),
            instance_name: None,
            sink: spawn.clone(),
        },
    );
    w.sim.run_until(SimTime::from_secs(3));
    let target = spawn.borrow().clone().expect("spawn ran").expect("spawn ok");

    let mut calls: Vec<(SimTime, InvokeSink)> = Vec::new();
    for _ in 0..K {
        let sink: InvokeSink = Rc::default();
        calls.push((w.sim.now(), sink.clone()));
        w.cmd(
            client,
            NodeCmd::Invoke {
                target: target.clone(),
                op: "inc".into(),
                args: vec![Value::Long(1)],
                oneway: false,
                sink: Some(sink),
            },
        );
        let next = w.sim.now() + SimTime::from_millis(100);
        w.sim.run_until(next);
    }
    // Drain outstanding retries and late replies.
    let drain = w.sim.now() + SimTime::from_secs(10);
    w.sim.run_until(drain);

    let mut latencies: Vec<f64> = calls
        .iter()
        .filter_map(|(t0, sink)| {
            sink.borrow()
                .iter()
                .find(|(_, r)| r.is_ok())
                .map(|(t, _)| (*t - *t0).as_secs_f64() * 1e3)
        })
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let success = latencies.len() as f64 / K as f64;
    let retries = w.sim.metrics_ref().counter("orb.retries");
    let dedup_hits = w.sim.metrics_ref().counter("orb.dedup_hits");

    // Exactly-once check: read the counter back over the loopback path
    // (same-host sends bypass fault injection, so this read is reliable).
    let vsink: InvokeSink = Rc::default();
    w.cmd(
        owner,
        NodeCmd::Invoke {
            target,
            op: "value".into(),
            args: vec![],
            oneway: false,
            sink: Some(vsink.clone()),
        },
    );
    let fin = w.sim.now() + SimTime::from_secs(1);
    w.sim.run_until(fin);
    let servant_execs = vsink
        .borrow()
        .first()
        .and_then(|(_, r)| r.as_ref().ok().and_then(|o| o.ret.as_long()))
        .map_or(-1, i64::from);

    InvokeStats {
        success,
        p50: pctl(&latencies, 0.50),
        p99: pctl(&latencies, 0.99),
        amplification: (K as u64 + retries) as f64 / K as f64,
        dedup_hits,
        servant_execs,
    }
}

// ---------------------------------------------------------------- T2 --

/// 100 first-wins queries from rotating non-owner origins under loss.
/// Returns (success rate, strong-semantics success rate, query
/// re-issues, partial results).
fn query_run(loss: f64, cfg: NodeConfig, seed_salt: u64) -> (f64, f64, u64, u64) {
    const Q: u32 = 100;
    let seed = 2000 + (loss * 100.0) as u64 + seed_salt;
    let mut w = world(seed, loss_plan(seed, loss), cfg);
    w.sim.run_until(SimTime::from_secs(3));

    let mut sinks = Vec::new();
    for q in 0..Q {
        // Rotate over hosts 2..=6 of each group: never an MRM seat
        // (group offsets 0/1) and never the component owner (offset 7).
        let origin = HostId((q % 8) * 8 + 2 + (q * 5) % 5);
        let sink: Rc<RefCell<QueryResult>> = Rc::default();
        w.cmd(
            origin,
            NodeCmd::Query {
                query: ComponentQuery::by_name("Counter", lc_pkg::Version::new(1, 0)),
                sink: sink.clone(),
                first_wins: true,
            },
        );
        sinks.push(sink);
        let next = w.sim.now() + SimTime::from_millis(250);
        w.sim.run_until(next);
    }
    let drain = w.sim.now() + SimTime::from_secs(5);
    w.sim.run_until(drain);

    let hits = sinks.iter().filter(|s| !s.borrow().offers.is_empty()).count();
    let complete = sinks
        .iter()
        .filter(|s| {
            let s = s.borrow();
            !s.offers.is_empty() && !s.partial
        })
        .count();
    (
        hits as f64 / Q as f64,
        complete as f64 / Q as f64,
        w.sim.metrics_ref().counter("query.retries"),
        w.sim.metrics_ref().counter("query.partial"),
    )
}

// ---------------------------------------------------------------- T3 --

/// Probe queries from host 20 (site 2) every 250ms across a timed
/// partition isolating its whole site during [10s, 20s). Returns the
/// success rate (before, during, after).
fn partition_run(cfg: NodeConfig, seed_salt: u64) -> (f64, f64, f64) {
    let site2: Vec<HostId> = (16..24).map(HostId).collect();
    let plan = FaultPlan::seeded(4000 + seed_salt).partition(
        SimTime::from_secs(10),
        SimTime::from_secs(20),
        &site2,
    );
    let mut w = world(4000 + seed_salt, Some(plan), cfg);
    w.sim.run_until(SimTime::from_secs(3));

    let mut probes: Vec<(SimTime, Rc<RefCell<QueryResult>>)> = Vec::new();
    while w.sim.now() < SimTime::from_secs(30) {
        let sink: Rc<RefCell<QueryResult>> = Rc::default();
        probes.push((w.sim.now(), sink.clone()));
        w.cmd(
            HostId(20),
            NodeCmd::Query {
                query: ComponentQuery::by_name("Counter", lc_pkg::Version::new(1, 0)),
                sink,
                first_wins: true,
            },
        );
        let next = w.sim.now() + SimTime::from_millis(250);
        w.sim.run_until(next);
    }
    let drain = w.sim.now() + SimTime::from_secs(3);
    w.sim.run_until(drain);

    let rate = |lo: u64, hi: u64| {
        let in_window: Vec<_> = probes
            .iter()
            .filter(|(t, _)| *t >= SimTime::from_secs(lo) && *t < SimTime::from_secs(hi))
            .collect();
        let hits = in_window.iter().filter(|(_, s)| !s.borrow().offers.is_empty()).count();
        hits as f64 / in_window.len().max(1) as f64
    };
    (rate(3, 10), rate(10, 20), rate(20, 30))
}

// ---------------------------------------------------------------- T4 --

/// Crash/restart schedule from the fault plan: the primary MRM of the
/// client's group (host 8) is down during [8s, 16s); queries keep
/// succeeding through the replica seat. Returns (success rate during
/// the outage, crashes, restarts).
fn crash_run() -> (f64, u64, u64) {
    let plan = FaultPlan::seeded(5000).crash(
        HostId(8),
        SimTime::from_secs(8),
        Some(SimTime::from_secs(16)),
    );
    let w = world(5000, Some(plan), hier_cfg(InvokePolicy::default(), 1));
    let mut sim = w.sim;
    let seeds = w.seeds.clone();
    let actors = Rc::new(RefCell::new(w.actors.clone()));
    let (a1, a2) = (actors.clone(), actors.clone());
    w.net.install_drivers(
        &mut sim,
        ChurnHooks {
            on_crash: Box::new(move |sim, h| sim.kill(a1.borrow()[h.0 as usize])),
            on_recover: Box::new(move |sim, h| {
                let a = seeds[h.0 as usize].spawn(sim);
                a2.borrow_mut()[h.0 as usize] = a;
            }),
        },
    );
    sim.run_until(SimTime::from_secs(3));

    let mut outage_probes = Vec::new();
    while sim.now() < SimTime::from_secs(20) {
        let sink: Rc<RefCell<QueryResult>> = Rc::default();
        let during = sim.now() >= SimTime::from_secs(8) && sim.now() < SimTime::from_secs(16);
        let actor = actors.borrow()[12];
        sim.send_in(
            SimTime::ZERO,
            actor,
            NodeCmd::Query {
                query: ComponentQuery::by_name("Counter", lc_pkg::Version::new(1, 0)),
                sink: sink.clone(),
                first_wins: true,
            },
        );
        if during {
            outage_probes.push(sink);
        }
        let next = sim.now() + SimTime::from_millis(250);
        sim.run_until(next);
    }
    sim.run_until(SimTime::from_secs(22));
    let hits = outage_probes.iter().filter(|s| !s.borrow().offers.is_empty()).count();
    (
        hits as f64 / outage_probes.len().max(1) as f64,
        sim.metrics_ref().counter("net.fault.crashes"),
        sim.metrics_ref().counter("net.fault.restarts"),
    )
}

fn main() {
    println!("E10: fault injection — invocation retry/backoff, query degradation, partitions");

    // T1: invocation reliability sweep.
    let mut rows = Vec::new();
    for loss in LOSS_RATES {
        for (label, policy) in
            [("none", InvokePolicy::default()), ("retry x3", InvokePolicy::standard())]
        {
            let s = invoke_run(loss, policy);
            rows.push(vec![
                format!("{:.0}%", loss * 100.0),
                label.into(),
                f2(s.success * 100.0),
                fmt_ms(s.p50),
                fmt_ms(s.p99),
                f2(s.amplification),
                s.dedup_hits.to_string(),
                s.servant_execs.to_string(),
            ]);
        }
    }
    print_table(
        "invocation reliability vs loss (200 cross-site calls, deadline 250ms)",
        &["loss", "recovery", "success %", "p50 ms", "p99 ms", "retry amp", "dedup hits", "servant execs"],
        &rows,
    );

    // T2: query success, CORBA-LC vs flat vs strong semantics.
    let mut rows = Vec::new();
    for loss in LOSS_RATES {
        let (lc, _, lc_retries, lc_partial) =
            query_run(loss, hier_cfg(InvokePolicy::default(), 2), 0);
        let (flat, _, _, _) = query_run(
            loss,
            NodeConfig {
                cohesion: lc_baselines::flat_config(N as usize, 2, SimTime::from_millis(500)),
                query_timeout: SimTime::from_millis(600),
                ..Default::default()
            },
            7,
        );
        let (_, strong, _, _) = query_run(loss, hier_cfg(InvokePolicy::default(), 0), 13);
        rows.push(vec![
            format!("{:.0}%", loss * 100.0),
            f2(lc * 100.0),
            f2(flat * 100.0),
            f2(strong * 100.0),
            lc_retries.to_string(),
            lc_partial.to_string(),
        ]);
    }
    print_table(
        "query success vs loss (100 first-wins queries)",
        &[
            "loss",
            "CORBA-LC %",
            "flat %",
            "strong-sem %",
            "LC re-issues",
            "LC partial",
        ],
        &rows,
    );

    // T3: timed partition of site 2 during [10s, 20s).
    let (hb, hd, ha) = partition_run(hier_cfg(InvokePolicy::default(), 1), 0);
    let (fb, fd, fa) = partition_run(
        NodeConfig {
            cohesion: lc_baselines::flat_config(N as usize, 2, SimTime::from_millis(500)),
            query_timeout: SimTime::from_millis(600),
            ..Default::default()
        },
        1,
    );
    print_table(
        "site-2 partition [10s,20s): query success from inside the partition",
        &["registry", "before %", "during %", "after %"],
        &[
            vec!["CORBA-LC hierarchy".into(), f2(hb * 100.0), f2(hd * 100.0), f2(ha * 100.0)],
            vec!["flat".into(), f2(fb * 100.0), f2(fd * 100.0), f2(fa * 100.0)],
        ],
    );

    // T4: crash/restart schedule absorbed by MRM replication.
    let (avail, crashes, restarts) = crash_run();
    print_table(
        "scheduled MRM crash [8s,16s) (replicas=2)",
        &["query success during outage %", "crashes", "restarts"],
        &[vec![f2(avail * 100.0), crashes.to_string(), restarts.to_string()]],
    );

    println!(
        "\nReading: without recovery, invocation success tracks (1-loss)^2 per\n\
         request/reply pair and lost calls hang; the deadline+backoff budget\n\
         recovers nearly all of it at bounded retry amplification, and the\n\
         servant-side request-id cache keeps effects exactly-once (servant\n\
         execs never exceed the issued calls). The hierarchical registry\n\
         degrades gracefully: re-issued queries restore success under loss,\n\
         partial results are tagged instead of hanging, and a partitioned\n\
         site keeps resolving local components while the flat registry goes\n\
         dark for the whole window."
    );
}
