//! E12 — registry query cache + coalescing + frame batching (see
//! `lc_bench::e12` for the workload and variant matrix).
//!
//! Usage: `e12_cache_perf [JSON_PATH]` — writes the machine-readable
//! summary (default `target/BENCH_e12.json`; the committed copy lives
//! at the repo root). Stdout and the JSON are byte-identical across
//! runs; ci.sh runs the binary twice and diffs both.

use lc_bench::e12;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "target/BENCH_e12.json".into());
    let out = e12::run(12);
    print!("{}", out.report);
    if let Err(e) = std::fs::write(&path, &out.json) {
        eprintln!("e12: failed to write {path}: {e}");
        std::process::exit(1);
    }
    // Stdout stays byte-identical regardless of the target path (ci.sh
    // diffs two runs writing to different files).
    println!("\nsummary: {} bytes of JSON written", out.json.len());
}
