//! F2 — reproduce Figure 2: the CSCW application model.
//!
//! Builds the whiteboard application assembly (Application + GUI parts +
//! per-host Display), type-checks it against the CSCW IDL, deploys it
//! across a simulated network, and prints the component/port graph in
//! the shape of the paper's Figure 2 — including the "GUI components can
//! be local or remote" property: one GUI part runs on the application's
//! host, one on a remote workstation, and the PDA participant's GUI part
//! runs remotely while painting on the PDA's display.

use lc_core::node::NodeCmd;
use lc_core::testkit::{build_world, fast_cohesion};
use lc_core::NodeConfig;
use lc_des::SimTime;
use lc_net::{HostCfg, Topology};
use lc_orb::Value;
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    println!("F2: Figure 2 — CSCW application model");
    println!("-------------------------------------");

    // The assembly, type-checked against the IDL like a visual builder
    // would before letting the user hit 'run'.
    let assembly = lc_cscw::whiteboard_assembly(3);
    let idl = lc_cscw::cscw_idl();
    let mut descs = std::collections::BTreeMap::new();
    for bytes in [
        lc_cscw::gui_package(),
        lc_cscw::whiteboard_package(),
        lc_cscw::display_package(),
    ] {
        let pkg = lc_pkg::Package::from_bytes(&bytes).unwrap();
        descs.insert(pkg.descriptor.name.clone(), pkg.descriptor);
    }
    assembly.typecheck(&descs, &idl).expect("assembly typechecks");
    println!("\nassembly '{}' (typechecked):", assembly.name);
    for i in &assembly.instances {
        println!("  instance {:<6} : {} >= {}", i.name, i.component, i.min_version);
    }
    for c in &assembly.connections {
        let arrow = match c.kind {
            lc_core::ConnectionKind::Interface => "--uses-->",
            lc_core::ConnectionKind::Event => "~~consumes~~>",
        };
        println!("  {}.{} {arrow} {}.{}", c.from, c.from_port, c.to, c.to_port);
    }

    // Deploy: app host + workstation + PDA.
    let mut topo = Topology::new();
    let office = topo.add_site("office");
    let app_host = topo.add_host(HostCfg::new(office).server());
    let workstation = topo.add_host(HostCfg::new(office));
    let pda = topo.add_host(HostCfg::new(office).pda());
    let behaviors = lc_core::BehaviorRegistry::new();
    lc_cscw::register_cscw_behaviors(&behaviors);
    let mut world = build_world(
        topo,
        2,
        NodeConfig { cohesion: fast_cohesion(), ..Default::default() },
        behaviors,
        lc_cscw::cscw_trust(),
        Arc::new(lc_cscw::cscw_idl()),
        |_| {
            vec![
                lc_cscw::display_package(),
                lc_cscw::gui_package(),
                lc_cscw::whiteboard_package(),
            ]
        },
    );
    world.sim.run_until(SimTime::from_millis(50));

    let spawn = |world: &mut lc_core::testkit::World, host, component: &str, name: &str| {
        let sink: lc_core::SpawnSink = Rc::default();
        world.cmd(
            host,
            NodeCmd::SpawnLocal {
                component: component.into(),
                min_version: lc_pkg::Version::new(1, 0),
                instance_name: Some(name.into()),
                sink: sink.clone(),
            },
        );
        world.sim.run_until(world.sim.now() + SimTime::from_millis(20));
        let r = sink.borrow().clone();
        r.unwrap().unwrap()
    };

    let board = spawn(&mut world, app_host, "Whiteboard", "application");
    // local GUI part (same host as the application)
    let gui_local = spawn(&mut world, app_host, "CscwGuiPart", "gui-part-1");
    let disp_local = spawn(&mut world, app_host, "CscwDisplay", "display-app");
    // remote GUI part on the workstation
    let gui_remote = spawn(&mut world, workstation, "CscwGuiPart", "gui-part-2");
    let disp_remote = spawn(&mut world, workstation, "CscwDisplay", "display-ws");
    // PDA: display local (firmware), GUI part hosted on the server
    let disp_pda = spawn(&mut world, pda, "CscwDisplay", "display-pda");
    let gui_pda = spawn(&mut world, app_host, "CscwGuiPart", "gui-part-pda");

    for (host, gui, disp) in [
        (app_host, &gui_local, &disp_local),
        (workstation, &gui_remote, &disp_remote),
        (app_host, &gui_pda, &disp_pda),
    ] {
        world.cmd(
            host,
            NodeCmd::Invoke {
                target: gui.clone(),
                op: "_connect_display".into(),
                args: vec![Value::ObjRef(disp.clone())],
                oneway: true,
                sink: None,
            },
        );
        world.cmd(
            host,
            NodeCmd::Subscribe {
                producer: board.clone(),
                port: "strokes".into(),
                consumer: gui.clone(),
                delivery_op: "_push_strokes".into(),
            },
        );
    }
    world.sim.run_until(world.sim.now() + SimTime::from_millis(200));

    // One stroke to light the wires up.
    world.cmd(
        app_host,
        NodeCmd::Invoke {
            target: board,
            op: "user_stroke".into(),
            args: vec![Value::Long(1), Value::Long(2), Value::Long(3), Value::Long(4)],
            oneway: true,
            sink: None,
        },
    );
    world.sim.run_until(world.sim.now() + SimTime::from_secs(1));

    println!("\ndeployed model (cf. Fig. 2):\n");
    println!("  Application Window           Node                    Network");
    for (label, host) in
        [("application host", app_host), ("workstation", workstation), ("PDA", pda)]
    {
        let node = world.node(host).unwrap();
        println!("  [{label} = {}]", host);
        for inst in node.registry.instances() {
            let ports: Vec<String> = inst
                .provides
                .iter()
                .map(|p| format!("provides {}", p.name))
                .chain(inst.uses.iter().map(|p| format!("uses {}", p.name)))
                .chain(inst.emits.iter().map(|p| format!("emits {}", p.name)))
                .chain(inst.consumes.iter().map(|p| format!("consumes {}", p.name)))
                .collect();
            println!(
                "    {} '{}' ({})",
                inst.component,
                inst.name.clone().unwrap_or_default(),
                ports.join(", ")
            );
        }
        for c in node.registry.connections() {
            println!("      wire: {}.{} -> {}", c.from, c.from_port, c.to);
        }
    }
    println!(
        "\n  stroke delivered to 3 GUI parts (1 local, 1 remote, 1 serving the PDA);\n\
         events published: {}",
        world.sim.metrics_ref().counter("events.published")
    );
}
