//! E11 — observability: deterministic distributed tracing, metrics
//! registry and flight recorder (see `lc_bench::e11` for the workload).
//!
//! Usage: `e11_observability [EXPORT_PREFIX]` — writes
//! `<prefix>.trace.jsonl` and `<prefix>.trace.json` (chrome://tracing),
//! default prefix `target/e11`. Stdout and both export files are
//! byte-identical across runs; ci.sh runs the binary twice and diffs
//! all three.

use lc_bench::e11;

fn main() {
    let prefix = std::env::args().nth(1).unwrap_or_else(|| "target/e11".into());
    let out = e11::run(11);
    print!("{}", out.report);
    let jsonl = format!("{prefix}.trace.jsonl");
    let chrome = format!("{prefix}.trace.json");
    if let Err(e) =
        std::fs::write(&jsonl, &out.jsonl).and_then(|_| std::fs::write(&chrome, &out.chrome))
    {
        eprintln!("e11: failed to write exports: {e}");
        std::process::exit(1);
    }
    let lines = out.jsonl.lines().count();
    println!("\nexports: {lines} spans -> trace JSONL + chrome://tracing JSON");
}
