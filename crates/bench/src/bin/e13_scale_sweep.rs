//! E13 — scale sweep driver (see `lc_bench::e13` for the model and
//! variant matrix).
//!
//! Usage: `e13_scale_sweep [--max-nodes N] [--gate-bytes-per-node T] [JSON_PATH]`
//!
//! * `--max-nodes N` caps the sweep (ci.sh smoke runs use 10⁴; the
//!   committed `BENCH_e13.json` is the full 10⁶ sweep).
//! * `--gate-bytes-per-node T` exits non-zero if the largest `hier`
//!   point exceeds `T` bytes of state per node — the memory regression
//!   gate.
//!
//! Every stdout line and JSON key carrying wall-clock throughput is
//! marked `wall`; ci.sh filters those before diffing, so everything
//! else is byte-identical across runs.

use lc_bench::e13;
use std::time::Instant; // lc-lint: allow(D1) -- explicit wall-clock throughput column

fn main() {
    let mut max_nodes: u32 = 1_000_000;
    let mut gate: Option<f64> = None;
    let mut path = "target/BENCH_e13.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-nodes" => {
                let v = args.next().unwrap_or_default();
                max_nodes = v.parse().unwrap_or_else(|_| die(&format!("bad --max-nodes {v}")));
            }
            "--gate-bytes-per-node" => {
                let v = args.next().unwrap_or_default();
                gate = Some(v.parse().unwrap_or_else(|_| die(&format!("bad gate {v}"))));
            }
            p => path = p.to_string(),
        }
    }

    let seed = 13;
    let mut points = Vec::new();
    for (n, variant) in e13::grid(max_nodes) {
        let t0 = Instant::now(); // lc-lint: allow(D1) -- wall column only
        let report = e13::run_point(n, variant, seed);
        let wall_s = t0.elapsed().as_secs_f64(); // lc-lint: allow(D1) -- wall column only
        points.push(e13::SweepPoint { report, wall_s });
    }
    let out = e13::render(&points, seed);
    print!("{}", out.report);
    if let Err(e) = std::fs::write(&path, &out.json) {
        eprintln!("e13: failed to write {path}: {e}");
        std::process::exit(1);
    }
    // The JSON length varies with the width of the wall_ values, so the
    // summary counts points, not bytes (stdout must diff clean).
    println!("\nsummary: {} sweep points written to JSON", points.len());

    if let Some(t) = gate {
        let worst = points
            .iter()
            .filter(|p| p.report.variant == "hier")
            .max_by_key(|p| p.report.n)
            .map(|p| p.report.bytes_per_node)
            .unwrap_or(0.0);
        if worst > t {
            eprintln!("e13: memory gate FAILED: {worst:.2} bytes/node > {t:.2}");
            std::process::exit(1);
        }
        println!("memory gate ok: {worst:.2} bytes/node <= {t:.2}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("e13: {msg}");
    std::process::exit(2);
}
