//! E8 — Grid data-parallel aggregation: speedup, efficiency, idle
//! harvesting and volunteer loss (§3.2, §2.1.1 "Aggregation").
//!
//! A `PiMaster` aggregation component splits a Monte-Carlo job over W
//! `PiWorker` instances, one per volunteer host. The table reports
//! makespan, speedup and efficiency vs worker count; a second table
//! shows idle-cycle harvesting on a heterogeneous volunteer pool, and a
//! third re-runs the job while half the volunteers crash mid-flight.

use lc_bench::{f2, f3, print_table};
use lc_des::SimTime;
use lc_grid::harness::deploy;
use lc_net::{HostCfg, HostId, Topology};

const WORK: u64 = 64_000_000;

fn main() {
    println!("E8: data-parallel aggregation (total work {WORK} units, 100ms/Munit)");

    // --- speedup vs worker count -----------------------------------
    let mut rows = Vec::new();
    let mut base = None;
    for &w in &[1usize, 2, 4, 8, 16, 32] {
        let hosts: Vec<HostId> = (1..=w as u32).map(HostId).collect();
        let mut sess = deploy(Topology::lan(w + 1), 800 + w as u64, &hosts);
        let elapsed = sess
            .run_job(WORK, (w * 4) as u32, SimTime::from_secs(1200))
            .expect("job finishes");
        let secs = elapsed.as_secs_f64();
        let base_secs = *base.get_or_insert(secs);
        let speedup = base_secs / secs;
        let pi = sess.master_servant().unwrap().pi_estimate();
        rows.push(vec![
            w.to_string(),
            f2(secs),
            f2(speedup),
            f2(speedup / w as f64 * 100.0),
            f3(pi),
        ]);
    }
    print_table(
        "speedup vs workers (homogeneous volunteers)",
        &["workers", "makespan s", "speedup", "efficiency %", "pi estimate"],
        &rows,
    );

    // --- idle harvesting on a heterogeneous pool ---------------------
    // 4 volunteers: a 4x server, two 1x workstations, a 0.5x relic.
    let mut topo = Topology::new();
    let s = topo.add_site("campus");
    topo.add_host(HostCfg::new(s)); // master
    topo.add_host(HostCfg::new(s).server());
    topo.add_host(HostCfg::new(s));
    topo.add_host(HostCfg::new(s));
    topo.add_host(HostCfg::new(s).cpu(0.5));
    let volunteers: Vec<HostId> = (1..=4).map(HostId).collect();
    let mut sess = deploy(topo, 900, &volunteers);
    let elapsed = sess.run_job(WORK / 4, 32, SimTime::from_secs(1200)).expect("finishes");
    let mut rows = Vec::new();
    for (host, units) in sess.worker_units() {
        let node = sess.world.node(host).unwrap();
        let power = node.resources.static_info().cpu_power;
        rows.push(vec![
            host.to_string(),
            f2(power),
            units.to_string(),
            f2(units as f64 / 1e6 * 100.0 / power / 1e3), // busy seconds
        ]);
    }
    rows.push(vec!["makespan".into(), "".into(), "".into(), f2(elapsed.as_secs_f64())]);
    print_table(
        "idle harvesting: heterogeneous volunteers (16M units, 32 chunks)",
        &["host", "cpu power", "units done", "busy s"],
        &rows,
    );

    // --- volunteer loss ----------------------------------------------
    let hosts: Vec<HostId> = (1..=8).map(HostId).collect();
    let mut sess = deploy(Topology::lan(9), 901, &hosts);
    sess.world.cmd(
        sess.master_host,
        lc_core::node::NodeCmd::Invoke {
            target: sess.master.clone(),
            op: "start".into(),
            args: vec![lc_orb::Value::ULongLong(WORK / 2), lc_orb::Value::ULong(32)],
            oneway: true,
            sink: None,
        },
    );
    let t0 = sess.world.sim.now();
    sess.world.sim.run_until(t0 + SimTime::from_millis(150));
    for h in [2u32, 3, 4, 5] {
        sess.world.crash(HostId(h));
    }
    let mut done = None;
    while sess.world.sim.now() - t0 < SimTime::from_secs(1200) {
        let d = sess.world.sim.now() + SimTime::from_millis(500);
        sess.world.sim.run_until(d);
        sess.world.cmd(
            sess.master_host,
            lc_core::node::NodeCmd::Invoke {
                target: sess.master.clone(),
                op: "nudge".into(),
                args: vec![],
                oneway: true,
                sink: None,
            },
        );
        if let Some(m) = sess.master_servant() {
            if let Some(e) = m.elapsed() {
                done = Some(e);
                break;
            }
        }
    }
    let master = sess.master_servant().unwrap();
    println!("\n== volunteer loss: 8 workers, 4 crash at t+150ms ==");
    println!(
        "job completed: {} (makespan {}), chunks re-dispatched: {}, pi = {:.3}",
        done.is_some(),
        done.map(|e| format!("{:.2}s", e.as_secs_f64())).unwrap_or_else(|| "-".into()),
        master.redispatches,
        master.pi_estimate()
    );
}
