//! E5 — run-time deployment vs CCM-style static assembly (R6, §2.4.4).
//!
//! "While traditional component models force programmers to decide the
//! hosts in which their components are going to be run … CORBA-LC
//! performs the deployment and component dependency management
//! automatically", using "the dynamic system data offered by the
//! Reflection Architecture" (§4).
//!
//! A heterogeneous 16-node network (4 idle servers, 12 half-loaded slow
//! workstations) receives an application of 24 compute instances. The
//! CORBA-LC planner places with live load data; the baseline follows a
//! fixed round-robin mapping decided "at deployment-design time". After
//! placement, every instance computes one work chunk; the makespan (last
//! reply) and the load distribution tell the story.

use lc_bench::{f2, print_table};
use lc_core::node::NodeCmd;
use lc_core::testkit::{build_world, fast_cohesion, World};
use lc_core::{AssemblyDescriptor, NodeConfig, PlacementStrategy, ServiceKind, ServiceMetrics};
use lc_des::SimTime;
use lc_grid::PiWorkerServant;
use lc_net::{HostCfg, HostId, Topology};
use lc_orb::Value;
use std::rc::Rc;
use std::sync::Arc;

const INSTANCES: usize = 24;

fn topo() -> Topology {
    let mut t = Topology::new();
    let s = t.add_site("cluster");
    for i in 0..16 {
        if i % 4 == 0 {
            t.add_host(HostCfg::new(s).server()); // idle 4.0-cpu servers
        } else {
            t.add_host(HostCfg::new(s).cpu(0.5)); // slow workstations
        }
    }
    t
}

struct Run {
    placed: usize,
    makespan_ms: f64,
    peak_busy_ms: f64,
    push_bytes: u64,
    /// Per-service counters summed over every node.
    per_service: [ServiceMetrics; 5],
}

fn run(strategy: PlacementStrategy, lb: bool, seed: u64) -> Run {
    let behaviors = lc_core::BehaviorRegistry::new();
    lc_grid::register_grid_behaviors(&behaviors);
    let mut world: World = build_world(
        topo(),
        seed,
        NodeConfig {
            cohesion: lc_baselines::flat_config(16, 1, fast_cohesion().report_period),
            load_balance: lb.then(|| lc_core::LoadBalanceConfig {
                check_period: lc_des::SimTime::from_millis(500),
                overload_threshold: 0.25,
            }),
            ..Default::default()
        },
        behaviors,
        lc_grid::grid_trust(),
        Arc::new(lc_grid::grid_idl()),
        // Only the orchestrator (host 0) has the package: run-time
        // deployment pushes binaries where they are needed.
        |host| if host == HostId(0) { vec![lc_grid::worker_package()] } else { Vec::new() },
    );
    world.sim.run_until(SimTime::from_secs(1)); // central view converges

    let mut assembly = AssemblyDescriptor::new("compute-farm");
    for i in 0..INSTANCES {
        assembly =
            assembly.instance(&format!("w{i}"), "PiWorker", lc_pkg::Version::new(1, 0));
    }
    let sink: lc_core::AssemblySink = Rc::default();
    world.cmd(HostId(0), NodeCmd::StartAssembly { assembly, strategy, sink: sink.clone() });
    world.sim.run_until(world.sim.now() + SimTime::from_secs(5));
    if lb {
        // Give the load balancer time to shuffle instances off the
        // overloaded workstations ("this decision may change to reflect
        // changes in the load", §2.4.4).
        world.sim.run_until(world.sim.now() + SimTime::from_secs(20));
    }

    // Re-resolve references after possible LB migrations: named
    // instances may have moved, but migration forwarding keeps the old
    // references working — use them as-is.
    let refs: Vec<_> = sink
        .borrow()
        .values()
        .filter_map(|r| r.as_ref().ok().cloned())
        .collect();
    let placed = refs.len();
    let push_bytes = world.sim.metrics_ref().counter("assembly.push_bytes");

    // One compute wave: every instance crunches 2M units.
    let invoke: lc_core::InvokeSink = Rc::default();
    let wave_start = world.sim.now();
    for r in &refs {
        world.cmd(
            HostId(0),
            NodeCmd::Invoke {
                target: r.clone(),
                op: "compute".into(),
                args: vec![Value::ULongLong(7), Value::ULongLong(2_000_000)],
                oneway: false,
                sink: Some(invoke.clone()),
            },
        );
    }
    world.sim.run_until(world.sim.now() + SimTime::from_secs(120));
    let makespan = invoke
        .borrow()
        .iter()
        .map(|(at, _)| *at)
        .max()
        .map(|t| (t - wave_start).as_secs_f64() * 1e3)
        .unwrap_or(f64::NAN);

    // The bottleneck: busy time of the most loaded host (units scaled
    // by the worker's 100ms/Munit cost and the host's CPU power).
    let mut peak_busy_ms = 0f64;
    for h in 0..16u32 {
        if let Some(node) = world.node(HostId(h)) {
            let mut host_busy = 0f64;
            for inst in node.registry.instances() {
                if let Some(w) = node.servant_of::<PiWorkerServant>(inst.id) {
                    host_busy += w.units_done as f64 / 1e6 * 100.0
                        / node.resources.static_info().cpu_power;
                }
            }
            peak_busy_ms = peak_busy_ms.max(host_busy);
        }
    }

    let mut per_service = [ServiceMetrics::default(); 5];
    for h in 0..16u32 {
        let Some(node) = world.node(HostId(h)) else { continue };
        for (acc, kind) in per_service.iter_mut().zip(ServiceKind::ALL) {
            let m = node.node_metrics().service(kind);
            acc.msgs_in += m.msgs_in;
            acc.msgs_out += m.msgs_out;
            acc.dispatches += m.dispatches;
            acc.dispatch_ns += m.dispatch_ns;
        }
    }

    Run { placed, makespan_ms: makespan, peak_busy_ms, push_bytes, per_service }
}

fn main() {
    println!(
        "E5: deployment — CORBA-LC run-time placement vs CCM static assembly \
         (16 hosts: 4 idle servers + 12 slow workstations; {INSTANCES} instances)"
    );
    let mut rows = Vec::new();
    let mut runtime_breakdown = None;
    for (label, strategy, lb) in [
        ("CORBA-LC run-time", PlacementStrategy::RuntimeLoadAware, false),
        ("CCM static RR", PlacementStrategy::StaticRoundRobin, false),
        ("static RR + auto-LB", PlacementStrategy::StaticRoundRobin, true),
    ] {
        let r = run(strategy, lb, 77);
        if runtime_breakdown.is_none() {
            runtime_breakdown = Some(r.per_service);
        }
        rows.push(vec![
            label.to_string(),
            format!("{}/{INSTANCES}", r.placed),
            f2(r.makespan_ms),
            f2(r.peak_busy_ms),
            lc_bench::human_bytes(r.push_bytes),
        ]);
    }
    print_table(
        "placement quality",
        &["strategy", "placed", "wave makespan ms", "bottleneck host busy ms", "binaries pushed"],
        &rows,
    );

    // Where the deployment work lands inside the nodes (run-time
    // placement run, per-service counters summed over all 16 hosts).
    let per_service = runtime_breakdown.expect("at least one run");
    let rows: Vec<Vec<String>> = ServiceKind::ALL
        .iter()
        .zip(per_service.iter())
        .map(|(kind, m)| {
            vec![
                kind.name().to_string(),
                m.msgs_in.to_string(),
                m.msgs_out.to_string(),
                m.dispatches.to_string(),
                f2(m.mean_dispatch_ns() / 1e3),
            ]
        })
        .collect();
    print_table(
        "per-service breakdown, CORBA-LC run-time placement (all nodes)",
        &["service", "msgs in", "msgs out", "dispatches", "mean us"],
        &rows,
    );
}
