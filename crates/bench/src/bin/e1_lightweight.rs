//! E1 — requirement R1: the model "must be lightweight".
//!
//! Measures what the ORB and the container machinery add to a method
//! call in one address space:
//!
//! * direct Rust call on the servant struct,
//! * ORB-mediated call (object adapter + full IDL type checking),
//! * ORB call with a CDR marshalling round-trip (what a remote call
//!   pays in CPU),
//! * the same under 4 concurrent caller threads.
//!
//! (Criterion versions of these series live in `benches/orb_invocation.rs`;
//! this binary prints the one-page summary table.)

use lc_bench::{f2, print_table};
use lc_idl::compile;
use lc_orb::{Invocation, LocalOrb, ObjectRef, Orb, OrbError, Servant, SimOrbClient, Value};
use std::sync::Arc;
// lc-lint: allow(D1) -- E1 measures wall-clock dispatch cost; its columns are excluded from determinism diffs
use std::time::Instant;

const IDL: &str = r#"
    interface Bench {
      long bump(in long delta);
      string echo(in string s);
    };
"#;

struct BenchImpl {
    total: i64,
}

impl Servant for BenchImpl {
    fn interface_id(&self) -> &str {
        "IDL:Bench:1.0"
    }
    fn dispatch(&mut self, inv: &mut Invocation<'_>) -> Result<(), OrbError> {
        match inv.op {
            "bump" => {
                self.total += inv.args[0].as_long().expect("typed") as i64;
                inv.set_ret(Value::Long(self.total as i32));
                Ok(())
            }
            "echo" => {
                inv.set_ret(inv.args[0].clone());
                Ok(())
            }
            op => Err(OrbError::BadOperation(op.into())),
        }
    }
}

fn ops_per_sec(iters: u64, f: impl FnMut()) -> f64 {
    let mut f = f;
    // lc-lint: allow(D1) -- wall-clock throughput measurement (E1 column)
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

/// The common series, generic over any [`Orb`] flavour: plain typed
/// invoke, marshalled invoke, and a 64-byte string echo. Returns
/// `(via_orb, marshalled, echo)` in ops/s.
fn bench_orb(orb: &dyn Orb, obj: &ObjectRef, iters: u64) -> (f64, f64, f64) {
    let via_orb = ops_per_sec(iters, || {
        orb.invoke(obj, "bump", &[Value::Long(1)]).unwrap();
    });
    let marshalled = ops_per_sec(iters, || {
        orb.invoke_marshalled(obj, "bump", &[Value::Long(1)]).unwrap();
    });
    let s64 = "x".repeat(64);
    let echo = ops_per_sec(iters / 3, || {
        orb.invoke(obj, "echo", &[Value::string(&s64)]).unwrap();
    });
    (via_orb, marshalled, echo)
}

fn main() {
    println!("E1: invocation overhead of the lightweight ORB (single host, in-process)");
    let repo = Arc::new(compile(IDL).unwrap());
    const ITERS: u64 = 300_000;

    // direct struct call
    let mut raw = BenchImpl { total: 0 };
    let direct = ops_per_sec(ITERS, || {
        let args = [Value::Long(1)];
        let mut inv = Invocation::new("bump", &args);
        raw.dispatch(&mut inv).unwrap();
    });

    // ORB-mediated, measured through the unified `Orb` trait (the same
    // series runs below over the simulated-network flavour).
    let orb = LocalOrb::new(repo.clone());
    let obj = orb.activate(Box::new(BenchImpl { total: 0 }));
    let (via_orb, marshalled, echo) = bench_orb(&orb, &obj, ITERS);

    // concurrent callers
    // lc-lint: allow(D1) -- wall-clock throughput measurement (E1 column)
    let t0 = Instant::now();
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let orb = orb.clone();
            let obj = obj.clone();
            std::thread::spawn(move || {
                for _ in 0..ITERS / 4 {
                    orb.invoke(&obj, "bump", &[Value::Long(1)]).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let concurrent = ITERS as f64 / t0.elapsed().as_secs_f64();

    let rows = vec![
        vec!["direct struct call".into(), f2(direct / 1e6), f2(1.0)],
        vec!["ORB (adapter + type check)".into(), f2(via_orb / 1e6), f2(direct / via_orb)],
        vec!["ORB + CDR round-trip".into(), f2(marshalled / 1e6), f2(direct / marshalled)],
        vec!["ORB echo(string64)".into(), f2(echo / 1e6), f2(direct / echo)],
        vec!["ORB, 4 threads".into(), f2(concurrent / 1e6), f2(direct / concurrent)],
    ];
    print_table(
        "invocation throughput",
        &["path", "Mops/s", "slowdown vs direct"],
        &rows,
    );

    // The adapter's own dispatch accounting: how many calls went through
    // the typed vs the raw path, and the mean in-adapter latency.
    let stats = orb.dispatch_stats();
    println!(
        "\nadapter dispatch stats: {} typed + {} raw = {} dispatches, {} errors, mean {:.0} ns",
        stats.typed,
        stats.raw,
        stats.total(),
        stats.errors,
        stats.mean_ns()
    );
    // The same series through the simulated-network flavour of the
    // `Orb` trait: each call is a real GIOP-style request/reply through
    // the DES fabric (two-host LAN), so the numbers fold in the event
    // loop — they measure the harness, not the wire (virtual time is
    // free), and show both flavours behind one API.
    let sim_orb = SimOrbClient::new(repo);
    let sobj = sim_orb.activate(Box::new(BenchImpl { total: 0 }));
    let (s_via, s_marsh, s_echo) = bench_orb(&sim_orb, &sobj, ITERS / 100);
    let sim_rows = vec![
        vec!["SimOrb (DES request/reply)".into(), f2(s_via / 1e6), f2(direct / s_via)],
        vec!["SimOrb + CDR round-trip".into(), f2(s_marsh / 1e6), f2(direct / s_marsh)],
        vec!["SimOrb echo(string64)".into(), f2(s_echo / 1e6), f2(direct / s_echo)],
    ];
    print_table(
        "same workload, simulated-network Orb flavour",
        &["path", "Mops/s", "slowdown vs direct"],
        &sim_rows,
    );
    let sstats = sim_orb.dispatch_stats();
    println!(
        "\nsim adapter dispatch stats: {} typed + {} raw = {} dispatches, {} errors",
        sstats.typed,
        sstats.raw,
        sstats.total(),
        sstats.errors,
    );

    println!(
        "\nR1 check: the full ORB path stays within a small constant factor of a raw\n\
         call and needs no generated stubs — no transactions/persistence machinery\n\
         is in the way (the paper's 'lightweight' contrast with CCM/EJB)."
    );
}
