//! E16 — open-loop capacity under overload control (see `lc_bench::e16`
//! for the workload, variants and gates).
//!
//! Usage: `e16_capacity [--max-rate N] [JSON_PATH]` — writes the
//! machine-readable summary (default `target/BENCH_e16.json`; the
//! committed copy lives at the repo root). `--max-rate` caps the
//! offered-load sweep for quick smoke runs. Stdout and the JSON are
//! byte-identical across runs; ci.sh runs the binary twice and diffs
//! both. Exits non-zero when the overload-control gates fail.

use lc_bench::e16;

fn main() {
    let mut max_rate: Option<f64> = None;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-rate" => {
                let Some(v) = args.next() else { die("--max-rate needs a value") };
                match v.parse::<f64>() {
                    Ok(r) if r > 0.0 => max_rate = Some(r),
                    _ => die("--max-rate must be a positive number"),
                }
            }
            _ if a.starts_with("--") => die(&format!("unknown flag {a}")),
            _ => path = Some(a),
        }
    }
    let path = path.unwrap_or_else(|| "target/BENCH_e16.json".into());

    let out = e16::run_limited(16, max_rate);
    print!("{}", out.report);
    if let Err(e) = std::fs::write(&path, &out.json) {
        eprintln!("e16: failed to write {path}: {e}");
        std::process::exit(1);
    }
    // Stdout stays byte-identical regardless of the target path (ci.sh
    // diffs two runs writing to different files).
    println!("\nsummary: {} bytes of JSON written", out.json.len());
    if !out.gates_ok {
        eprintln!("e16: overload-control gates FAILED");
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("e16: {msg}");
    std::process::exit(2);
}
