//! E2 — scalability of distributed component queries (requirement R4).
//!
//! Compares the hierarchical MRM protocol against the flat/centralized
//! registry baseline while the network grows, and sweeps the hierarchy
//! fanout as the ablation DESIGN.md §5 calls for.
//!
//! Reported per configuration: messages per query, mean first-offer
//! latency, and the *hotspot load* — bytes received by the busiest host —
//! which is what melts a centralized registry ("the protocol must allow
//! logical grouping and incremental resource lookup. … This reduces
//! network load and exploits locality", §2.4.3).

use lc_baselines::flat_config;
use lc_bench::{f2, human_bytes, print_table};
use lc_core::cohesion::CohesionConfig;
use lc_core::demo;
use lc_core::node::{NodeCmd, QueryResult};
use lc_core::testkit::{build_world, World};
use lc_core::{ComponentQuery, NodeConfig, ServiceKind, ServiceMetrics};
use lc_des::SimTime;
use lc_net::{HostId, Topology};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

struct Outcome {
    msgs_per_query: f64,
    first_offer_ms: f64,
    hotspot_recv: u64,
    hit_rate: f64,
    /// Per-service counters summed over every node in the world.
    per_service: [ServiceMetrics; 5],
}

fn run(n: usize, cohesion: CohesionConfig, seed: u64) -> Outcome {
    let behaviors = lc_core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    let report_period = cohesion.report_period;
    // Component owners: one per 16 nodes, spread out, never group MRMs.
    let owners: Vec<HostId> =
        (0..n).filter(|i| i % 16 == 7).map(|i| HostId(i as u32)).collect();
    let owners_for_closure = owners.clone();
    let mut world: World = build_world(
        Topology::campus(n / 8, 8),
        seed,
        NodeConfig {
            cohesion,
            query_timeout: SimTime::from_millis(800),
            require_signature: false,
            ..Default::default()
        },
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        move |host| {
            if owners_for_closure.contains(&host) {
                vec![demo::counter_package()]
            } else {
                Vec::new()
            }
        },
    );
    // Let the soft state converge (reports + summaries).
    world.sim.run_until(report_period * 4);
    let msgs_before = world.sim.metrics_ref().counter("query.msgs");

    // 20 queries from scattered origins.
    let sinks: Vec<Rc<RefCell<QueryResult>>> = (0..20)
        .map(|k| {
            let origin = HostId(((k * 13 + 3) % n) as u32);
            let sink: Rc<RefCell<QueryResult>> = Rc::default();
            world.cmd(
                origin,
                NodeCmd::Query {
                    query: ComponentQuery::by_name("Counter", lc_pkg::Version::new(1, 0)),
                    sink: sink.clone(),
                    first_wins: true,
                },
            );
            // space queries out so latencies are independent
            let deadline = world.sim.now() + SimTime::from_millis(150);
            world.sim.run_until(deadline);
            sink
        })
        .collect();
    let deadline = world.sim.now() + SimTime::from_secs(2);
    world.sim.run_until(deadline);

    let msgs = world.sim.metrics_ref().counter("query.msgs") - msgs_before;
    let mut first_ms = Vec::new();
    let mut hits = 0usize;
    for s in &sinks {
        let r = s.borrow();
        if let Some(at) = r.first_offer_at {
            first_ms.push((at - r.started).as_secs_f64() * 1e3);
            hits += 1;
        }
    }
    let hotspot = (0..n as u32)
        .map(|h| world.net.host_traffic(HostId(h)).1)
        .max()
        .unwrap_or(0);
    let mut per_service = [ServiceMetrics::default(); 5];
    for h in 0..n as u32 {
        let Some(node) = world.node(HostId(h)) else { continue };
        for (acc, kind) in per_service.iter_mut().zip(ServiceKind::ALL) {
            let m = node.node_metrics().service(kind);
            acc.msgs_in += m.msgs_in;
            acc.msgs_out += m.msgs_out;
            acc.dispatches += m.dispatches;
            acc.dispatch_ns += m.dispatch_ns;
        }
    }
    Outcome {
        msgs_per_query: msgs as f64 / sinks.len() as f64,
        first_offer_ms: first_ms.iter().sum::<f64>() / first_ms.len().max(1) as f64,
        hotspot_recv: hotspot,
        hit_rate: hits as f64 / sinks.len() as f64,
        per_service,
    }
}

fn main() {
    let period = SimTime::from_millis(500);
    println!("E2: distributed query scalability — hierarchical MRMs vs flat registry");

    let mut rows = Vec::new();
    for &n in &[16usize, 64, 256, 1024] {
        for (label, cfg) in [
            (
                "hier f=8",
                CohesionConfig {
                    fanout: 8,
                    replicas: 2,
                    report_period: period,
                    timeout_intervals: 3,
                },
            ),
            ("flat", flat_config(n, 2, period)),
        ] {
            let o = run(n, cfg, 42 + n as u64);
            rows.push(vec![
                n.to_string(),
                label.to_string(),
                f2(o.msgs_per_query),
                f2(o.first_offer_ms),
                human_bytes(o.hotspot_recv),
                f2(o.hit_rate * 100.0),
            ]);
        }
    }
    print_table(
        "query cost vs network size",
        &["nodes", "protocol", "msgs/query", "first-offer ms", "hotspot recv", "hit %"],
        &rows,
    );

    // Ablation: fanout sweep at N=256.
    let mut rows = Vec::new();
    for &fanout in &[4usize, 8, 16, 32] {
        let o = run(
            256,
            CohesionConfig {
                fanout,
                replicas: 2,
                report_period: period,
                timeout_intervals: 3,
            },
            7,
        );
        rows.push(vec![
            fanout.to_string(),
            f2(o.msgs_per_query),
            f2(o.first_offer_ms),
            human_bytes(o.hotspot_recv),
            f2(o.hit_rate * 100.0),
        ]);
    }
    print_table(
        "ablation: hierarchy fanout at N=256",
        &["fanout", "msgs/query", "first-offer ms", "hotspot recv", "hit %"],
        &rows,
    );

    // Where a node's work goes: per-service message and dispatch-latency
    // breakdown (NodeMetrics summed over all 64 nodes, hier f=8).
    let o = run(
        64,
        CohesionConfig { fanout: 8, replicas: 2, report_period: period, timeout_intervals: 3 },
        42 + 64,
    );
    let rows: Vec<Vec<String>> = ServiceKind::ALL
        .iter()
        .zip(o.per_service.iter())
        .map(|(kind, m)| {
            vec![
                kind.name().to_string(),
                m.msgs_in.to_string(),
                m.msgs_out.to_string(),
                m.dispatches.to_string(),
                f2(m.mean_dispatch_ns() / 1e3),
            ]
        })
        .collect();
    print_table(
        "per-service breakdown, N=64 hier f=8 (all nodes)",
        &["service", "msgs in", "msgs out", "dispatches", "mean us"],
        &rows,
    );
}
