//! E6 — the paper's MPEG example: use-remote vs fetch-local vs migrate.
//!
//! "Once selected, the network can decide either to instantiate the
//! component in its original node or to fetch the component to be
//! locally installed, instantiated and run. For example, a component
//! decoding a MPEG video stream would work much faster if it is
//! installed locally" (§2.4.3). §2.2 adds mid-stream migration: capture
//! state, move the binary, restore, continue.
//!
//! Topology: a video server site and a viewer site joined by a slow WAN
//! link. The decoder (512 KiB binary) turns 4 KiB encoded chunks into
//! 32 KiB decoded frames drawn to the viewer's display. Strategies:
//!
//! * **remote-decode** — decoder stays at the server: every *decoded*
//!   frame crosses the WAN (as display traffic).
//! * **fetch-local** — pay the package transfer once, then only
//!   *encoded* chunks cross.
//! * **migrate@25%** — start remote (instant start), migrate the decoder
//!   (with its frame counter state) to the viewer a quarter into the
//!   stream.
//!
//! The table sweeps stream length and reports WAN bytes per strategy —
//! the crossover DESIGN.md §5 calls out.

use lc_bench::{human_bytes, print_table};
use lc_core::node::NodeCmd;
use lc_core::testkit::{build_world, fast_cohesion, World};
use lc_core::NodeConfig;
use lc_cscw::{DisplayServant, VideoDecoderServant};
use lc_des::SimTime;
use lc_net::{HostCfg, HostId, Topology};
use lc_orb::Value;
use std::rc::Rc;
use std::sync::Arc;

const CHUNK: usize = 4 * 1024;

#[derive(Clone, Copy, PartialEq)]
enum Strategy {
    RemoteDecode,
    FetchLocal,
    MigrateQuarter,
}

fn build() -> World {
    let mut topo = Topology::new();
    let server_site = topo.add_site("video-server");
    let viewer_site = topo.add_site("home");
    topo.set_site_pair_latency(server_site, viewer_site, SimTime::from_millis(30));
    topo.add_host(HostCfg::new(server_site).server()); // 0: video server
    topo.add_host(HostCfg::new(viewer_site)); // 1: viewer
    let behaviors = lc_core::BehaviorRegistry::new();
    lc_cscw::register_cscw_behaviors(&behaviors);
    build_world(
        Topology::clone(&topo),
        66,
        NodeConfig { cohesion: fast_cohesion(), ..Default::default() },
        behaviors,
        lc_cscw::cscw_trust(),
        Arc::new(lc_cscw::cscw_idl()),
        |host| {
            let mut pkgs = vec![lc_cscw::display_package()];
            if host == HostId(0) {
                pkgs.push(lc_cscw::video_decoder_package()); // 512 KiB binary
            }
            pkgs
        },
    )
}

fn spawn(world: &mut World, host: HostId, component: &str, name: &str) -> lc_orb::ObjectRef {
    let sink: lc_core::SpawnSink = Rc::default();
    world.cmd(
        host,
        NodeCmd::SpawnLocal {
            component: component.into(),
            min_version: lc_pkg::Version::new(1, 0),
            instance_name: Some(name.into()),
            sink: sink.clone(),
        },
    );
    world.sim.run_until(world.sim.now() + SimTime::from_millis(20));
    let result = sink.borrow().clone();
    result.unwrap().unwrap()
}

fn connect_display(world: &mut World, decoder: &lc_orb::ObjectRef, display: &lc_orb::ObjectRef) {
    world.cmd(
        decoder.key.host,
        NodeCmd::Invoke {
            target: decoder.clone(),
            op: "_connect_display".into(),
            args: vec![Value::ObjRef(display.clone())],
            oneway: true,
            sink: None,
        },
    );
    world.sim.run_until(world.sim.now() + SimTime::from_millis(20));
}

/// Stream `frames` chunks; returns (WAN bytes, frames decoded at viewer).
fn run(strategy: Strategy, frames: u32) -> (u64, u64) {
    let mut world = build();
    let server = HostId(0);
    let viewer = HostId(1);
    world.sim.run_until(SimTime::from_millis(50));
    let viewer_display = spawn(&mut world, viewer, "CscwDisplay", "screen");

    // Where does the decoder start?
    let mut decoder = match strategy {
        Strategy::RemoteDecode | Strategy::MigrateQuarter => {
            spawn(&mut world, server, "VideoDecoder", "dec")
        }
        Strategy::FetchLocal => {
            // The real dependency-resolution path: the viewer's screen
            // needs a video source; with a long expected stream the
            // planner picks FetchAndRunLocal, pulling the package over
            // the WAN from the server (§2.4.3's MPEG decision).
            let screen_inst =
                world.node(viewer).unwrap().registry.named("screen").unwrap().id;
            let provider: lc_core::SpawnSink = Rc::default();
            world.cmd(
                viewer,
                NodeCmd::Resolve {
                    instance: screen_inst,
                    port: "video_in".into(),
                    query: lc_core::ComponentQuery::by_name(
                        "VideoDecoder",
                        lc_pkg::Version::new(1, 0),
                    ),
                    policy: lc_core::ResolvePolicy {
                        expected_traffic: frames as u64 * CHUNK as u64 * 8,
                        ..Default::default()
                    },
                    sink: Some(provider.clone()),
                },
            );
            world.sim.run_until(world.sim.now() + SimTime::from_secs(30));
            let r = provider.borrow().clone().expect("resolved").expect("fetch-local decoder");
            assert_eq!(r.key.host, viewer, "planner must choose local install");
            r
        }
    };
    connect_display(&mut world, &decoder, &viewer_display);

    let wan_before = world.sim.metrics_ref().counter("net.bytes.inter");

    let migrate_at = frames / 4;
    for f in 0..frames {
        if strategy == Strategy::MigrateQuarter && f == migrate_at {
            // Mid-stream migration, state and all (§2.2).
            let inst = world.node(server).unwrap().registry.named("dec").unwrap().id;
            let msink: lc_core::MigrateSink = Rc::default();
            world.cmd(server, NodeCmd::Migrate { instance: inst, to: viewer, sink: Some(msink.clone()) });
            world.sim.run_until(world.sim.now() + SimTime::from_secs(30));
            decoder = msink.borrow().clone().unwrap().expect("migration done");
            connect_display(&mut world, &decoder, &viewer_display);
        }
        // The camera/file source lives at the server site.
        world.cmd(
            server,
            NodeCmd::Invoke {
                target: decoder.clone(),
                op: "push_chunk".into(),
                args: vec![Value::blob(&vec![0x5A; CHUNK])],
                oneway: true,
                sink: None,
            },
        );
        world.sim.run_until(world.sim.now() + SimTime::from_millis(40)); // 25 fps
    }
    world.sim.run_until(world.sim.now() + SimTime::from_secs(5));

    let wan = world.sim.metrics_ref().counter("net.bytes.inter") - wan_before;
    let node = world.node(viewer).unwrap();
    let frames_drawn = node
        .registry
        .named("screen")
        .and_then(|i| node.servant_of::<DisplayServant>(i.id))
        .map(|d| d.draws)
        .unwrap_or(0);
    // sanity: decoder processed all frames wherever it lives
    let total_decoded: u64 = [server, viewer]
        .iter()
        .filter_map(|h| {
            let node = world.node(*h)?;
            let inst = node
                .registry
                .instances()
                .find(|i| i.component == "VideoDecoder" && i.name.as_deref() != Some("warm"))?;
            node.servant_of::<VideoDecoderServant>(inst.id).map(|d| d.frames)
        })
        .sum();
    assert!(total_decoded >= frames as u64, "decoded {total_decoded}/{frames}");
    (wan, frames_drawn)
}

fn main() {
    println!("E6: video decoder placement — WAN bytes by strategy and stream length");
    println!("(4 KiB encoded chunks -> 16 KiB painted frames; 512 KiB decoder binary)");
    let mut rows = Vec::new();
    for &frames in &[50u32, 200, 800, 2000] {
        let (remote, _) = run(Strategy::RemoteDecode, frames);
        let (fetch, _) = run(Strategy::FetchLocal, frames);
        let (migrate, drawn) = run(Strategy::MigrateQuarter, frames);
        rows.push(vec![
            frames.to_string(),
            human_bytes(remote),
            human_bytes(fetch),
            human_bytes(migrate),
            drawn.to_string(),
        ]);
    }
    print_table(
        "WAN traffic per strategy",
        &["frames", "remote-decode", "fetch-local", "migrate@25%", "frames on screen (migrate)"],
        &rows,
    );
    println!(
        "\nShape check: fetch-local pays ~the package size up front and wins once the\n\
         stream is long; remote-decode ships every decoded frame over the WAN;\n\
         migration lands in between, approaching fetch-local for long streams."
    );
}
