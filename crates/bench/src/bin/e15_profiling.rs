//! E15 — profiling driver (see `lc_bench::e15` for the model).
//!
//! Usage: `e15_profiling [--max-nodes N] [--gate-overhead-pct T] [JSON_PATH]`
//!
//! * `--max-nodes N` caps the part-A profiler sweep (ci.sh smoke runs
//!   use 10⁴; the committed `BENCH_e15.json` is the full 10⁵ sweep).
//! * `--gate-overhead-pct T` exits non-zero if the profiler-on run of
//!   the largest sweep point costs more than `T` % wall time over the
//!   profiler-off run — the "zero cost when disabled, bounded cost when
//!   enabled" gate.
//!
//! Besides the JSON, two deterministic artefacts land next to it: the
//! collapsed-stack flamegraph (`<json>.flame.txt`) and the per-node
//! virtual-time timeline (`<json>.timeline.txt`); ci.sh diffs both
//! across a double run. Every volatile stdout line is marked `wall`
//! and every volatile JSON key is prefixed `wall_`.

use lc_bench::e15;
use std::time::Instant; // lc-lint: allow(D1) -- explicit wall-clock overhead column

fn main() {
    let mut max_nodes: u32 = 100_000;
    let mut gate: Option<f64> = None;
    let mut path = "target/BENCH_e15.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-nodes" => {
                let v = args.next().unwrap_or_default();
                max_nodes = v.parse().unwrap_or_else(|_| die(&format!("bad --max-nodes {v}")));
            }
            "--gate-overhead-pct" => {
                let v = args.next().unwrap_or_default();
                gate = Some(v.parse().unwrap_or_else(|_| die(&format!("bad gate {v}"))));
            }
            p => path = p.to_string(),
        }
    }

    let seed = 15;
    let mut points = Vec::new();
    for n in e15::prof_grid(max_nodes) {
        // Off first, then on, timed separately; one warm-up off-run per
        // point so allocator state doesn't bill the first measurement.
        let _ = e15::run_off(n, seed);
        let t0 = Instant::now(); // lc-lint: allow(D1) -- wall column only
        let off = e15::run_off(n, seed);
        let wall_off_s = t0.elapsed().as_secs_f64(); // lc-lint: allow(D1) -- wall column only
        let t1 = Instant::now(); // lc-lint: allow(D1) -- wall column only
        let (on, profile) = e15::run_on(n, seed);
        let wall_on_s = t1.elapsed().as_secs_f64(); // lc-lint: allow(D1) -- wall column only
        let identical = off == on;
        points.push(e15::ProfPoint { n, report: off, profile, identical, wall_off_s, wall_on_s });
    }
    let runs: Vec<e15::TracedRun> = e15::RATES
        .iter()
        .map(|&(label, one_in)| e15::run_traced(seed, label, one_in))
        .collect();
    let out = e15::render(&points, &runs, seed);
    print!("{}", out.report);

    let base = path.strip_suffix(".json").unwrap_or(&path);
    let flame_path = format!("{base}.flame.txt");
    let timeline_path = format!("{base}.timeline.txt");
    for (p, body) in [(&path, &out.json), (&flame_path, &out.flame), (&timeline_path, &out.timeline)] {
        if let Err(e) = std::fs::write(p, body) {
            eprintln!("e15: failed to write {p}: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "\nsummary: {} profiler points + {} traced runs written to JSON; \
         flamegraph {} lines, timeline {} lines",
        points.len(),
        runs.len(),
        out.flame.lines().count(),
        out.timeline.lines().count(),
    );

    for p in &points {
        if !p.identical {
            eprintln!("e15: profiler perturbed the {}-node simulation", p.n);
            std::process::exit(1);
        }
    }
    if let Some(t) = gate {
        let Some(p) = points.last() else { die("gate needs at least one sweep point") };
        let pct = e15::overhead_pct(p);
        if pct > t {
            eprintln!("e15: overhead gate FAILED: {pct:.2}% > {t:.2}% at {} nodes", p.n);
            std::process::exit(1);
        }
        println!("overhead gate ok: {pct:.2}% <= {t:.2}% at {} nodes (wall)", p.n);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("e15: {msg}");
    std::process::exit(2);
}
