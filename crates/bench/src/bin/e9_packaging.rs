//! E9 — packaging: compression, verification, partial extraction (§2.3).
//!
//! The packaging requirements in one table each: compression ratio and
//! pack/verify wall-clock time across binary sizes and redundancy
//! levels, and the PDA partial-extraction saving ("extracting only a set
//! of binaries from the whole component … to be installed in devices
//! with a tiny memory").

use lc_bench::{f2, human_bytes, print_table};
use lc_pkg::{ComponentDescriptor, Package, Platform, SigningKey, TrustStore, Version};
// lc-lint: allow(D1) -- E9 measures wall-clock pack/verify cost; its columns are excluded from determinism diffs
use std::time::Instant;

fn payload(kind: &str, size: usize) -> Vec<u8> {
    match kind {
        // machine code-ish: repetitive patterns (compresses well)
        "code" => (0..size)
            .map(|i| match i % 16 {
                0..=7 => 0x90,
                8..=11 => (i / 64) as u8,
                _ => 0xCC,
            })
            .collect(),
        // media/encrypted: incompressible
        _ => {
            let mut x = 0xABCDEF01u32;
            (0..size)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    (x >> 24) as u8
                })
                .collect()
        }
    }
}

fn main() {
    println!("E9: CLCP packaging — compression, signing, partial extraction");
    let key = SigningKey::new("vendor", b"secret");
    let mut trust = TrustStore::new();
    trust.trust("vendor", b"secret");

    let mut rows = Vec::new();
    for &(kind, size) in &[
        ("code", 4 * 1024),
        ("code", 64 * 1024),
        ("code", 1024 * 1024),
        ("code", 4 * 1024 * 1024),
        ("media", 64 * 1024),
        ("media", 4 * 1024 * 1024),
    ] {
        let desc = ComponentDescriptor::new("Pkg", Version::new(1, 0), "vendor");
        let mut pkg = Package::new(desc)
            .with_idl("x.idl", "interface X { void f(); };")
            .with_binary(Platform::reference(), "x", &payload(kind, size))
            .with_binary(Platform::pda(), "x_pda", &payload(kind, size / 8));
        // lc-lint: allow(D1) -- wall-clock packaging measurement (E9 column)
        let t0 = Instant::now();
        pkg.seal(&key);
        let bytes = pkg.to_bytes();
        let pack_ms = t0.elapsed().as_secs_f64() * 1e3;

        // lc-lint: allow(D1) -- wall-clock verification measurement (E9 column)
        let t1 = Instant::now();
        let back = Package::from_bytes(&bytes).unwrap();
        assert_eq!(back.verify(&trust), lc_pkg::sign::Verification::Trusted);
        let verify_ms = t1.elapsed().as_secs_f64() * 1e3;

        let raw = pkg.raw_size() as f64;
        rows.push(vec![
            kind.to_string(),
            human_bytes(size as u64),
            human_bytes(pkg.raw_size() as u64),
            human_bytes(bytes.len() as u64),
            f2(raw / bytes.len() as f64),
            f2(pack_ms),
            f2(verify_ms),
        ]);
    }
    print_table(
        "pack/verify across binary sizes",
        &["payload", "main binary", "raw total", "wire total", "ratio", "pack ms", "verify ms"],
        &rows,
    );

    // Partial extraction for PDAs.
    let mut rows = Vec::new();
    for &size in &[64 * 1024usize, 1024 * 1024, 4 * 1024 * 1024] {
        let desc = ComponentDescriptor::new("Pkg", Version::new(1, 0), "vendor");
        let pkg = Package::new(desc)
            .with_idl("x.idl", "interface X { void f(); };")
            .with_binary(Platform::reference(), "x", &payload("media", size))
            .with_binary(
                Platform::new("sparc", "solaris", "lc-orb"),
                "x_sparc",
                &payload("media", size),
            )
            .with_binary(Platform::pda(), "x_pda", &payload("media", size / 16));
        let full = pkg.to_bytes().len();
        let sub = pkg.extract_subset(&[Platform::pda()]).to_bytes().len();
        rows.push(vec![
            human_bytes(size as u64),
            human_bytes(full as u64),
            human_bytes(sub as u64),
            f2(full as f64 / sub as f64),
        ]);
    }
    print_table(
        "PDA partial extraction (3-platform package, PDA binary = size/16)",
        &["per-platform binary", "full package", "PDA subset", "saving x"],
        &rows,
    );
}
