//! F1 — reproduce Figure 1: the logical internal node structure.
//!
//! Boots one node, installs three components through the Component
//! Acceptor, instantiates and connects them, then dumps the reflected
//! view of all four services (Resource Manager, Component Repository /
//! Registry, instances, connections) exactly as Fig. 1 describes them.

use lc_core::demo;
use lc_core::node::NodeCmd;
use lc_core::testkit::{build_world, fast_cohesion};
use lc_core::{ComponentQuery, NodeConfig, ResolvePolicy};
use lc_des::SimTime;
use lc_net::{HostId, Topology};
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    let behaviors = lc_core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    let mut world = build_world(
        Topology::lan(2),
        1,
        NodeConfig { cohesion: fast_cohesion(), ..Default::default() },
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        |_| Vec::new(),
    );

    println!("F1: Figure 1 — Logical Internal Node Structure");
    println!("----------------------------------------------");
    println!("(a) empty node right after boot:\n");
    world.sim.run_until(SimTime::from_millis(10));
    println!(
        "{}",
        lc_core::reflect::render(&lc_core::reflect::snapshot(world.node(HostId(0)).unwrap()))
    );

    // Component Acceptor: install three packages at run time.
    for pkg in [demo::counter_package(), demo::display_package(), demo::gui_package()] {
        world.cmd(HostId(0), NodeCmd::Install(pkg));
    }
    let deadline = world.sim.now() + SimTime::from_millis(50);
    world.sim.run_until(deadline);

    // Instantiate and connect: GuiPart --display--> Display.
    let gspawn: lc_core::SpawnSink = Rc::default();
    world.cmd(
        HostId(0),
        NodeCmd::SpawnLocal {
            component: "GuiPart".into(),
            min_version: lc_pkg::Version::new(1, 0),
            instance_name: Some("gui".into()),
            sink: gspawn.clone(),
        },
    );
    let dspawn: lc_core::SpawnSink = Rc::default();
    world.cmd(
        HostId(0),
        NodeCmd::SpawnLocal {
            component: "Display".into(),
            min_version: lc_pkg::Version::new(2, 0),
            instance_name: Some("screen".into()),
            sink: dspawn.clone(),
        },
    );
    let deadline = world.sim.now() + SimTime::from_millis(50);
    world.sim.run_until(deadline);
    let gui_instance = world.node(HostId(0)).unwrap().registry.named("gui").unwrap().id;
    world.cmd(
        HostId(0),
        NodeCmd::Resolve {
            instance: gui_instance,
            port: "display".into(),
            query: ComponentQuery::by_name("Display", lc_pkg::Version::new(2, 0)),
            policy: ResolvePolicy::default(),
            sink: None,
        },
    );
    let deadline = world.sim.now() + SimTime::from_millis(1000);
    world.sim.run_until(deadline);

    println!("(b) after run-time install of 3 packages, 2 instances, 1 connection:\n");
    println!(
        "{}",
        lc_core::reflect::render(&lc_core::reflect::snapshot(world.node(HostId(0)).unwrap()))
    );

    println!("Node services exercised:");
    println!("  Component Acceptor : acceptor.installed = {}", 3);
    println!(
        "  Component Registry : {} instances reflected, {} connections",
        world.node(HostId(0)).unwrap().registry.instance_count(),
        world.node(HostId(0)).unwrap().registry.connections().len()
    );
    println!(
        "  Resource Manager   : cpu_used = {:.2}, instances = {}",
        world.node(HostId(0)).unwrap().resources.dynamic().cpu_used,
        world.node(HostId(0)).unwrap().resources.dynamic().instances
    );
    println!(
        "  Network Cohesion   : reports sent = {}",
        world.sim.metrics_ref().counter("cohesion.reports")
    );

    // Per-service instrumentation from the node's own NodeMetrics layer.
    println!("\nPer-service instrumentation (host0):");
    println!("{:<10}  {:>8}  {:>8}  {:>10}  {:>12}", "service", "msgs in", "msgs out", "dispatches", "mean ns");
    let node = world.node(HostId(0)).unwrap();
    let metrics = node.node_metrics();
    for kind in lc_core::ServiceKind::ALL {
        let m = metrics.service(kind);
        println!(
            "{:<10}  {:>8}  {:>8}  {:>10}  {:>12.0}",
            kind.name(),
            m.msgs_in,
            m.msgs_out,
            m.dispatches,
            m.mean_dispatch_ns()
        );
    }
    let cmds: Vec<String> = metrics.cmd_counts().into_iter().map(|(n, c)| format!("{n}={c}")).collect();
    println!("commands: {}", cmds.join(" "));
    println!(
        "continuations pending: {} (peak {})",
        node.continuation_depth(),
        node.continuation_peak_depth()
    );
}
