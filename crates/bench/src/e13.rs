//! E13 — the scale sweep: one campus model, 10³ → 10⁶ nodes.
//!
//! §2.3's case for hierarchical MRM federation is asymptotic: soft
//! state and summary push keep query cost at O(depth) while a central
//! registry degrades with campus size and strong consistency pays for
//! every membership change. E1–E12 demonstrate the mechanisms at 8–64
//! nodes; E13 runs the arithmetic campus model
//! ([`lc_core::scale`]) across four decades of scale and three
//! registry designs:
//!
//! * `hier`   — the paper's hierarchy (fanout 8, 2 MRM replicas);
//! * `flat`   — one central registry, query fan-out to every owner;
//! * `strong` — strongly-consistent coordinator (3-message queries,
//!   2·N view-change broadcast per membership change).
//!
//! Each point reports messages per query, messages per churn event,
//! nodes materialized (the lazy-SoA footprint), and bytes per node
//! (campus columns + event-calendar arena). Every column except the
//! `wall`-marked throughput ones derives from virtual time and
//! counters, so two runs render byte-identical reports; ci.sh diffs a
//! double run (wall lines filtered) and the committed `BENCH_e13.json`
//! (`wall_` keys filtered).

use crate::{f2, format_table, human_bytes};
use lc_core::scale::{run_scale, ScaleConfig, ScaleReport, Variant};
use std::fmt::Write as _;

/// JSON schema version (bump when keys change; ci.sh pins the diff).
pub const SCHEMA_VERSION: u32 = 1;

/// Campus sizes swept (nodes).
pub const SIZES: [u32; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Registry designs compared at every size.
pub const VARIANTS: [Variant; 3] = [Variant::Hier, Variant::Flat, Variant::Strong];

/// One sweep point plus its (caller-measured) wall-clock cost. The
/// library never reads a clock — the binary times each point and passes
/// the seconds in; tests pass `0.0`.
pub struct SweepPoint {
    /// Deterministic simulation results.
    pub report: ScaleReport,
    /// Wall-clock seconds the point took (0 = untimed).
    pub wall_s: f64,
}

/// Run a single sweep point (pure simulation, deterministic).
pub fn run_point(n: u32, variant: Variant, seed: u64) -> ScaleReport {
    run_scale(ScaleConfig::new(n, variant), seed)
}

/// The sweep grid, capped at `max_nodes` (the ci.sh smoke run caps at
/// 10⁴; the committed artefact is the full 10⁶ sweep).
pub fn grid(max_nodes: u32) -> Vec<(u32, Variant)> {
    let mut g = Vec::new();
    for &n in SIZES.iter().filter(|&&n| n <= max_nodes) {
        for &v in &VARIANTS {
            g.push((n, v));
        }
    }
    g
}

/// Both artefacts of one E13 run.
pub struct E13Output {
    /// Human-readable report (wall columns marked `wall`).
    pub report: String,
    /// Machine-readable summary; volatile values only on `wall_` keys.
    pub json: String,
}

/// Render the machine-readable summary: one JSON object, keys sorted,
/// floats at fixed precision. Deterministic except `wall_` keys.
fn render_json(points: &[SweepPoint], seed: u64) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"e13_scale_sweep\",");
    let max_n = points.iter().map(|p| p.report.n).max().unwrap_or(0);
    let _ = writeln!(j, "  \"max_nodes\": {max_n},");
    let _ = writeln!(j, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let r = &p.report;
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"bytes_per_node\": {},", f2(r.bytes_per_node));
        let _ = writeln!(j, "      \"campus_bytes\": {},", r.campus_bytes);
        let _ = writeln!(j, "      \"churn_msgs_per_event\": {},", f2(r.churn_msgs_per_event));
        let _ = writeln!(j, "      \"depth\": {},", r.depth);
        let _ = writeln!(j, "      \"escalations\": {},", r.escalations);
        let _ = writeln!(j, "      \"events\": {},", r.events);
        let _ = writeln!(j, "      \"groups\": {},", r.groups);
        let _ = writeln!(j, "      \"latency_p50_ns\": {},", r.latency_p50_ns);
        let _ = writeln!(j, "      \"latency_p99_ns\": {},", r.latency_p99_ns);
        let _ = writeln!(j, "      \"msgs_per_query\": {},", f2(r.msgs_per_query));
        let _ = writeln!(j, "      \"n\": {},", r.n);
        let _ = writeln!(j, "      \"nodes_materialized\": {},", r.nodes_materialized);
        let _ = writeln!(j, "      \"queries_completed\": {},", r.queries_completed);
        let _ = writeln!(j, "      \"queue_bytes\": {},", r.queue_bytes);
        let _ = writeln!(j, "      \"variant\": \"{}\",", r.variant);
        let eps = if p.wall_s > 0.0 { r.events as f64 / p.wall_s } else { 0.0 };
        let _ = writeln!(j, "      \"wall_events_per_sec\": {},", f2(eps));
        let _ = writeln!(j, "      \"wall_ms\": {}", f2(p.wall_s * 1e3));
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(j, "  \"seed\": {seed}");
    let _ = writeln!(j, "}}");
    j
}

/// Render both artefacts from completed sweep points.
pub fn render(points: &[SweepPoint], seed: u64) -> E13Output {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let r = &p.report;
            vec![
                r.n.to_string(),
                r.variant.to_string(),
                r.depth.to_string(),
                f2(r.msgs_per_query),
                f2(r.churn_msgs_per_event),
                r.escalations.to_string(),
                r.nodes_materialized.to_string(),
                human_bytes(r.campus_bytes as u64),
                human_bytes(r.queue_bytes as u64),
                f2(r.bytes_per_node),
                // wall column: volatile, filtered by the CI diff.
                if p.wall_s > 0.0 {
                    format!("{} wall", human_events_per_sec(r.events as f64 / p.wall_s))
                } else {
                    "- wall".to_string()
                },
            ]
        })
        .collect();
    let mut report = String::new();
    let _ = writeln!(report, "E13: scale sweep, hier vs flat vs strong (seed {seed})");
    let _ = writeln!(
        report,
        "fanout 8, 2 MRM replicas, 2 rounds, 32 queries + 2 membership changes per point"
    );
    report.push_str(&format_table(
        "campus scale sweep",
        &[
            "nodes",
            "variant",
            "depth",
            "msgs/query",
            "msgs/churn",
            "escalations",
            "materialized",
            "campus mem",
            "queue mem",
            "B/node",
            "events/s",
        ],
        &rows,
    ));

    // Headline: the asymptotic claim, stated from the largest size that
    // has all three variants.
    if let Some(n) = points.iter().map(|p| p.report.n).max() {
        let at = |v: &str| {
            points.iter().find(|p| p.report.n == n && p.report.variant == v).map(|p| &p.report)
        };
        if let (Some(h), Some(f), Some(s)) = (at("hier"), at("flat"), at("strong")) {
            let _ = writeln!(
                report,
                "\nat {n} nodes: hier {} msgs/query vs flat {} ({}x); \
                 strong churn {} msgs/event vs hier {} ({}x)",
                f2(h.msgs_per_query),
                f2(f.msgs_per_query),
                f2(f.msgs_per_query / h.msgs_per_query.max(f64::MIN_POSITIVE)),
                f2(s.churn_msgs_per_event),
                f2(h.churn_msgs_per_event),
                f2(s.churn_msgs_per_event / h.churn_msgs_per_event.max(f64::MIN_POSITIVE)),
            );
            let _ = writeln!(
                report,
                "hier state: {} materialized of {n} nodes, {} bytes/node",
                h.nodes_materialized,
                f2(h.bytes_per_node),
            );
        }
    }
    E13Output { report, json: render_json(points, seed) }
}

/// Human-readable events/sec (volatile — only used on wall columns).
fn human_events_per_sec(eps: f64) -> String {
    if eps >= 1e6 {
        format!("{}M/s", f2(eps / 1e6))
    } else if eps >= 1e3 {
        format!("{}k/s", f2(eps / 1e3))
    } else {
        format!("{}/s", f2(eps))
    }
}

/// Run the whole (capped) sweep untimed — the deterministic core the
/// tests and the double-run CI gate exercise.
pub fn run_untimed(seed: u64, max_nodes: u32) -> E13Output {
    let points: Vec<SweepPoint> = grid(max_nodes)
        .into_iter()
        .map(|(n, v)| SweepPoint { report: run_point(n, v, seed), wall_s: 0.0 })
        .collect();
    render(&points, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_small_sweep_is_deterministic() {
        let a = run_untimed(13, 10_000);
        let b = run_untimed(13, 10_000);
        assert_eq!(a.report, b.report);
        assert_eq!(a.json, b.json);
        assert!(a.json.contains("\"schema_version\": 1"));
        // 2 sizes x 3 variants.
        assert_eq!(a.json.matches("\"variant\"").count(), 6);
    }

    #[test]
    fn hier_cost_stays_flat_while_flat_grows() {
        let h1 = run_point(1_000, Variant::Hier, 13);
        let h2 = run_point(10_000, Variant::Hier, 13);
        let f1 = run_point(1_000, Variant::Flat, 13);
        let f2_ = run_point(10_000, Variant::Flat, 13);
        // 10x the campus: hier msgs/query barely moves (one extra level
        // at most), flat grows with the owner population.
        assert!(h2.msgs_per_query < h1.msgs_per_query * 2.0);
        assert!(f2_.msgs_per_query > f1.msgs_per_query * 5.0);
        // The lazy SoA keeps footprint near-constant per node.
        assert!(h2.bytes_per_node < 160.0, "bytes/node {}", h2.bytes_per_node);
    }
}
