//! Wall-clock micro-benchmark runner for the `benches/` entry points.
//!
//! The container has no crates.io access, so the Criterion benches were
//! rewritten on this small `std::time::Instant` harness: calibrate an
//! iteration count to a target sample duration, take several samples,
//! report the median (robust against scheduler noise). Invoke through
//! `cargo bench` as before — each bench is a `harness = false` binary.

use std::time::{Duration, Instant};

/// One measured benchmark: median/min/max ns per iteration.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Median over samples, ns per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Iterations per sample the runner calibrated to.
    pub iters: u64,
}

/// Measure `f`, auto-calibrating so each sample runs ~40 ms, then taking
/// 7 samples. Set `LC_BENCH_FAST=1` to cut this ~5× for smoke runs.
pub fn measure(mut f: impl FnMut()) -> Measurement {
    let fast = std::env::var("LC_BENCH_FAST").is_ok();
    let (target, samples) = if fast {
        (Duration::from_millis(8), 3)
    } else {
        (Duration::from_millis(40), 7)
    };

    // Warm-up + calibration: run until the target duration passes once.
    let start = Instant::now();
    let mut iters: u64 = 0;
    while start.elapsed() < target {
        f();
        iters += 1;
    }
    let iters = iters.max(1);

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    Measurement {
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        max_ns: per_iter[per_iter.len() - 1],
        iters,
    }
}

/// Format a nanosecond figure with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Measure and print one line: `name  median  (min … max, N iters/sample)`.
pub fn bench(name: &str, f: impl FnMut()) -> Measurement {
    let m = measure(f);
    println!(
        "{name:<32} {:>10}  ({} … {}, {} iters/sample)",
        fmt_ns(m.median_ns),
        fmt_ns(m.min_ns),
        fmt_ns(m.max_ns),
        m.iters
    );
    m
}

/// Throughput in MiB/s for `bytes` processed per iteration.
pub fn mib_per_s(bytes: u64, ns_per_iter: f64) -> f64 {
    bytes as f64 / (1u64 << 20) as f64 / (ns_per_iter / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_sane_numbers() {
        std::env::set_var("LC_BENCH_FAST", "1");
        let mut x = 0u64;
        let m = measure(|| x = x.wrapping_add(std::hint::black_box(1)));
        assert!(m.iters >= 1);
        assert!(m.median_ns >= 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
    }

    #[test]
    fn formats_units() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
        assert_eq!(fmt_ns(3e9), "3.00 s");
    }
}
