//! E11 — observability: deterministic distributed tracing, the node
//! metrics registry and the per-node flight recorder, exercised end to
//! end on a 24-node campus.
//!
//! The workload is a condensed E2 + E10: first-wins component queries
//! from every site, cross-site invocations against a spawned Counter,
//! then a crash of the component owner mid-stream (invocations into the
//! outage exercise the retry path and its span links; the dead node's
//! flight recorder is read back post-mortem) and a recovery.
//!
//! Everything the report prints is derived from **virtual** time and
//! counters — span ids come from per-node counters, timestamps from the
//! simulation clock — so two runs with the same seed produce
//! byte-identical reports *and* byte-identical JSONL/chrome exports
//! (ci.sh runs the binary twice and diffs all three).
//!
//! The same workload also runs with tracing compiled in but *disabled*
//! (the default for every other experiment): the report asserts that
//! the fabric/query/orb counters of both runs are identical, i.e. the
//! instrumentation is observationally free when off.

use crate::{f2, format_table};
use lc_core::cohesion::CohesionConfig;
use lc_core::demo;
use lc_core::node::{InvokePolicy, NodeCmd, QueryResult};
use lc_core::testkit::{build_world_on, World};
use lc_core::{ComponentQuery, InvokeSink, NodeConfig, ServiceKind};
use lc_des::SimTime;
use lc_net::{HostId, Net, Topology};
use lc_orb::{ObjectRef, Value};
use lc_trace::{critical_path, to_chrome, to_jsonl, Span, TraceId, Tracer};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;

/// Queries issued before the crash window.
const QUERIES: u32 = 9;
/// Cross-site invocations against the Counter instance.
const CALLS: u32 = 4;
/// The component owner that gets crashed and recovered.
const VICTIM: HostId = HostId(7);

/// Everything one run of the experiment produces.
pub struct E11Output {
    /// The human-readable report (tables + flight-recorder dump).
    pub report: String,
    /// Sorted span-per-line JSONL export.
    pub jsonl: String,
    /// chrome://tracing JSON document.
    pub chrome: String,
}

/// What the workload alone observed — compared between the traced and
/// the tracing-disabled run for the overhead check.
struct Observed {
    query_hits: usize,
    counter_value: i64,
    sim_counters: Vec<(String, u64)>,
}

fn config() -> NodeConfig {
    NodeConfig {
        cohesion: CohesionConfig {
            fanout: 8,
            replicas: 2,
            report_period: SimTime::from_millis(500),
            timeout_intervals: 3,
        },
        query_timeout: SimTime::from_millis(600),
        invoke: InvokePolicy::standard(),
        query_retries: 1,
        ..Default::default()
    }
}

/// Run the E2+E10-style workload on a fabric carrying `tracer`.
fn workload(seed: u64, tracer: Tracer) -> (World, Observed) {
    let behaviors = lc_core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    let mut w = build_world_on(
        Net::builder(Topology::campus(3, 8)).tracer(tracer).build(),
        seed,
        config(),
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        |host| if host.0 % 8 == 7 { vec![demo::counter_package()] } else { Vec::new() },
    );
    w.sim.run_until(SimTime::from_secs(3));

    // Traced first-wins queries from rotating non-owner, non-MRM origins
    // across all three sites.
    let mut sinks: Vec<Rc<RefCell<QueryResult>>> = Vec::new();
    let query = |w: &mut World, q: u32, sinks: &mut Vec<Rc<RefCell<QueryResult>>>| {
        let origin = HostId((q % 3) * 8 + 2 + (q % 4));
        let sink: Rc<RefCell<QueryResult>> = Rc::default();
        sinks.push(sink.clone());
        w.cmd(
            origin,
            NodeCmd::Query {
                query: ComponentQuery::by_name("Counter", lc_pkg::Version::new(1, 0)),
                sink,
                first_wins: true,
            },
        );
        let next = w.sim.now() + SimTime::from_millis(250);
        w.sim.run_until(next);
    };
    for q in 0..QUERIES {
        query(&mut w, q, &mut sinks);
    }

    // Traced cross-site invocations: Counter on the victim, client two
    // sites away.
    let spawn: Rc<RefCell<Option<Result<ObjectRef, String>>>> = Rc::default();
    w.cmd(
        VICTIM,
        NodeCmd::SpawnLocal {
            component: "Counter".into(),
            min_version: lc_pkg::Version::new(1, 0),
            instance_name: None,
            sink: spawn.clone(),
        },
    );
    let settle = w.sim.now() + SimTime::from_millis(500);
    w.sim.run_until(settle);
    let Some(Ok(target)) = spawn.borrow().clone() else {
        unreachable!("Counter spawn on its own repository host cannot fail")
    };
    let client = HostId(18);
    for _ in 0..CALLS {
        let sink: InvokeSink = Rc::default();
        w.cmd(
            client,
            NodeCmd::Invoke {
                target: target.clone(),
                op: "inc".into(),
                args: vec![Value::Long(1)],
                oneway: false,
                sink: Some(sink),
            },
        );
        let next = w.sim.now() + SimTime::from_millis(100);
        w.sim.run_until(next);
    }
    let vsink: InvokeSink = Rc::default();
    w.cmd(
        client,
        NodeCmd::Invoke {
            target: target.clone(),
            op: "value".into(),
            args: vec![],
            oneway: false,
            sink: Some(vsink.clone()),
        },
    );
    let settle = w.sim.now() + SimTime::from_millis(500);
    w.sim.run_until(settle);
    let counter_value = vsink
        .borrow()
        .iter()
        .find_map(|(_, r)| r.as_ref().ok().and_then(|o| o.ret.as_long()))
        .map_or(-1, i64::from);

    // Crash the owner. Queries keep resolving through the other sites'
    // owners; one invocation into the outage exhausts its retry budget,
    // leaving a chain of linked retry spans in the trace.
    w.crash(VICTIM);
    let dead: InvokeSink = Rc::default();
    w.cmd(
        client,
        NodeCmd::Invoke {
            target,
            op: "inc".into(),
            args: vec![Value::Long(1)],
            oneway: false,
            sink: Some(dead.clone()),
        },
    );
    for q in 0..3 {
        query(&mut w, q, &mut sinks);
    }
    let drain = w.sim.now() + SimTime::from_secs(3);
    w.sim.run_until(drain);

    // Recover and confirm the registry serves the respawned node's site
    // again.
    w.recover(VICTIM);
    let settle = w.sim.now() + SimTime::from_secs(2);
    w.sim.run_until(settle);
    for q in 0..3 {
        query(&mut w, q, &mut sinks);
    }
    let drain = w.sim.now() + SimTime::from_secs(2);
    w.sim.run_until(drain);

    let query_hits = sinks.iter().filter(|s| !s.borrow().offers.is_empty()).count();
    let sim_counters =
        w.sim.metrics_ref().counters().map(|(k, v)| (k.to_owned(), v)).collect();
    (w, Observed { query_hits, counter_value, sim_counters })
}

/// Per-root-name aggregate over all recorded traces.
struct TraceAgg {
    traces: usize,
    spans: usize,
    max_nodes: usize,
    max_spans: usize,
    net_msgs: usize,
}

fn aggregate(spans: &[Span]) -> BTreeMap<String, TraceAgg> {
    let mut by_trace: BTreeMap<TraceId, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace).or_default().push(s);
    }
    let mut agg: BTreeMap<String, TraceAgg> = BTreeMap::new();
    for members in by_trace.values() {
        let Some(root) = members.iter().find(|s| s.parent.is_none()) else { continue };
        let nodes: std::collections::BTreeSet<u32> = members.iter().map(|s| s.node).collect();
        let net_msgs = members.iter().filter(|s| s.name == "net.msg").count();
        let e = agg.entry(root.name.clone()).or_insert(TraceAgg {
            traces: 0,
            spans: 0,
            max_nodes: 0,
            max_spans: 0,
            net_msgs: 0,
        });
        e.traces += 1;
        e.spans += members.len();
        e.max_nodes = e.max_nodes.max(nodes.len());
        e.max_spans = e.max_spans.max(members.len());
        e.net_msgs += net_msgs;
    }
    agg
}

/// The registry.query trace with the most spans (the representative
/// end-to-end resolution shown as a critical path).
fn representative_query(spans: &[Span]) -> Option<TraceId> {
    let mut counts: BTreeMap<TraceId, usize> = BTreeMap::new();
    for s in spans {
        *counts.entry(s.trace).or_default() += 1;
    }
    spans
        .iter()
        .filter(|s| s.parent.is_none() && s.name == "registry.query")
        .max_by_key(|s| (counts.get(&s.trace).copied().unwrap_or(0), std::cmp::Reverse(s.id)))
        .map(|s| s.trace)
}

fn ms(ns: u64) -> String {
    f2(ns as f64 / 1e6)
}

/// Run E11 and render the report plus both exports.
pub fn run(seed: u64) -> E11Output {
    let tracer = Tracer::new();
    let (w, traced) = workload(seed, tracer.clone());
    let spans = tracer.spans();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "E11: observability — deterministic tracing, metrics registry, flight recorder"
    );
    let _ = writeln!(
        report,
        "24 nodes (3 sites x 8), seed {seed}: {} queries, {} calls, owner crash + recovery",
        QUERIES + 6,
        CALLS + 2
    );

    // -- trace summary ------------------------------------------------
    let agg = aggregate(&spans);
    let rows: Vec<Vec<String>> = agg
        .iter()
        .map(|(name, a)| {
            vec![
                name.clone(),
                a.traces.to_string(),
                a.spans.to_string(),
                f2(a.spans as f64 / a.traces as f64),
                a.max_spans.to_string(),
                a.max_nodes.to_string(),
                a.net_msgs.to_string(),
            ]
        })
        .collect();
    report.push_str(&format_table(
        "recorded traces by root span",
        &["root", "traces", "spans", "avg spans", "max spans", "max nodes", "net.msg spans"],
        &rows,
    ));

    // -- representative critical path --------------------------------
    if let Some(trace) = representative_query(&spans) {
        let path = critical_path(&spans, trace);
        let t0 = path.first().map_or(0, |s| s.start_ns);
        let rows: Vec<Vec<String>> = path
            .iter()
            .map(|seg| {
                vec![
                    format!("{}{}", "  ".repeat(seg.depth), seg.name),
                    seg.id.to_string(),
                    seg.node.to_string(),
                    ms(seg.start_ns - t0),
                    ms(seg.end_ns - seg.start_ns),
                ]
            })
            .collect();
        report.push_str(&format_table(
            &format!("critical path of the largest query trace ({trace})"),
            &["span", "id", "node", "t+ms", "dur ms"],
            &rows,
        ));
    }

    // -- retry links --------------------------------------------------
    let retries: Vec<&Span> = spans.iter().filter(|s| !s.links.is_empty()).collect();
    let _ = writeln!(report, "\n== retry spans (causally linked, not parented) ==");
    if retries.is_empty() {
        let _ = writeln!(report, "(none this run)");
    }
    for s in &retries {
        let links: Vec<String> = s.links.iter().map(|l| l.to_string()).collect();
        let _ = writeln!(
            report,
            "{} {} on node {} -> links [{}] attempt={} error={}",
            s.id,
            s.name,
            s.node,
            links.join(","),
            s.attr("attempt").unwrap_or("-"),
            s.attr("error").unwrap_or("-"),
        );
    }

    // -- flight recorder of the crashed node --------------------------
    let (events, dropped) = tracer.flight_record(VICTIM.0);
    let _ = writeln!(
        report,
        "\n== flight recorder of crashed node {} (post-mortem, {} dropped) ==",
        VICTIM.0, dropped
    );
    let tail = events.len().saturating_sub(8);
    for ev in &events[tail..] {
        let _ = writeln!(report, "{}", ev.render());
    }

    // -- metrics registry excerpt ------------------------------------
    let Some(observer) = w.node(HostId(18)) else {
        unreachable!("client node 18 is never crashed")
    };
    let metrics = observer.node_metrics();
    let rows: Vec<Vec<String>> = ServiceKind::ALL
        .iter()
        .map(|&kind| {
            let m = metrics.service(kind);
            vec![
                kind.name().into(),
                m.msgs_in.to_string(),
                m.msgs_out.to_string(),
                m.dispatches.to_string(),
            ]
        })
        .collect();
    report.push_str(&format_table(
        "metrics registry of client node 18 (wall-clock histograms elided)",
        &["service", "msgs in", "msgs out", "dispatches"],
        &rows,
    ));
    let cmds: Vec<String> =
        metrics.cmd_counts().into_iter().map(|(n, c)| format!("{n}={c}")).collect();
    let _ = writeln!(report, "driver commands: {}", cmds.join(" "));
    let wall_samples = metrics
        .registry()
        .histograms()
        .map(|(k, h)| format!("{k}: {} samples", h.count()))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(report, "wall-ns histograms: {wall_samples}");

    // -- overhead: disabled tracer must not perturb the run -----------
    let (_, untraced) = workload(seed, Tracer::disabled());
    let same = traced.query_hits == untraced.query_hits
        && traced.counter_value == untraced.counter_value
        && traced.sim_counters == untraced.sim_counters;
    let _ = writeln!(
        report,
        "\n== overhead check ==\ntracing disabled -> same workload: query hits {}/{}, \
         counter {}/{}, {} sim counters identical: {}",
        untraced.query_hits,
        traced.query_hits,
        untraced.counter_value,
        traced.counter_value,
        traced.sim_counters.len(),
        if same { "yes" } else { "NO" },
    );
    let _ = writeln!(
        report,
        "traced run: {} spans across {} traces, {} query hits, counter value {}",
        spans.len(),
        agg.values().map(|a| a.traces).sum::<usize>(),
        traced.query_hits,
        traced.counter_value,
    );

    E11Output { report, jsonl: to_jsonl(&spans), chrome: to_chrome(&spans) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_trace::validate;
    use std::collections::BTreeSet;

    #[test]
    fn e11_traces_are_valid_cross_node_and_deterministic() {
        let a = run(11);
        let b = run(11);
        // Two identical runs are byte-identical in every artefact.
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.chrome, b.chrome);
        assert_eq!(a.report, b.report);
        assert!(!a.jsonl.is_empty());

        // Rebuild enough structure from the export to check the
        // acceptance shape: the traced world records at least one query
        // trace spanning three or more nodes, and all trees validate.
        let tracer = Tracer::new();
        let (_, _) = workload(11, tracer.clone());
        let spans = tracer.spans();
        validate(&spans).expect("trace trees well-formed");
        let trace = representative_query(&spans).expect("a query trace exists");
        let nodes: BTreeSet<u32> =
            spans.iter().filter(|s| s.trace == trace).map(|s| s.node).collect();
        assert!(nodes.len() >= 3, "query trace touches {} nodes", nodes.len());
        // The dead-target invocation leaves linked retry spans.
        assert!(spans.iter().any(|s| s.name == "container.retry" && !s.links.is_empty()));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let (_, obs) = workload(11, tracer.clone());
        assert_eq!(tracer.span_count(), 0);
        assert!(obs.query_hits > 0);
    }
}
