//! # lc-bench — the experiment harness
//!
//! One binary per figure/experiment of DESIGN.md §4 (`cargo run -p
//! lc-bench --release --bin <id>`), plus Criterion micro-benchmarks for
//! the hot paths (`cargo bench`). Every binary prints the table (or
//! figure facsimile) it regenerates; EXPERIMENTS.md records the outputs
//! and compares them against the paper's qualitative claims.

use std::fmt::Write as _;

pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod micro;

/// Render a titled ASCII table with aligned columns.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut doc = String::new();
    let _ = writeln!(doc, "\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ");
    }
    let _ = writeln!(doc, "{line}");
    let _ = writeln!(doc, "{}", "-".repeat(line.len().min(100)));
    for row in rows {
        let mut out = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, "{cell:>w$}  ");
        }
        let _ = writeln!(doc, "{out}");
    }
    doc
}

/// Print a titled ASCII table with aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", format_table(title, headers, rows));
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format bytes human-readably.
pub fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // rounds
        assert_eq!(human_bytes(100), "100 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 << 20), "3.00 MiB");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["col1", "column2"],
            &[vec!["a".into(), "b".into()], vec!["longer".into(), "x".into()]],
        );
    }
}
