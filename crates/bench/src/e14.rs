//! E14 — the sharded registry: single leader vs a consistent-hash DHT.
//!
//! E12 showed that even with the result cache and singleflight the
//! remaining hotspot is the campus leader: every miss still ascends the
//! MRM hierarchy and funnels through its root. This experiment puts the
//! [`Sharded`](lc_core::Sharded) backend against that wall: the same
//! 1k-node campus, the same query workload, with the component
//! inventory consistent-hashed over 2/4/8 shards (2 replicas each) and
//! lookups routed Chord-style through the finger overlay instead of up
//! the hierarchy.
//!
//! The workload runs under E10-style churn — uniform loss, duplication
//! and jitter on every link plus a scripted crash/restart schedule —
//! so the gossip anti-entropy path (replica respawn repair, lost
//! publishes) is exercised, not just the happy path. Rotating front-end
//! hosts query 32 distinct components owned by 32 scattered owners;
//! distinct (origin, component) pairs keep the result cache cold, which
//! is exactly the traffic that concentrates on the leader.
//!
//! Reported per variant: answered fraction, p50/p99 first-offer
//! latency, query messages, overlay hops, gossip traffic, the busiest
//! receiver over the query phase, and — the headline — bytes received
//! by the *former leader* (the busiest host of the single-leader run)
//! under each shard count. The committed `BENCH_e14.json` pins the
//! acceptance floor: ≥ 3x former-leader reduction and p99 no worse at
//! 4+ shards. Everything except the `wall` column derives from virtual
//! time, so two runs render byte-identical reports (ci.sh diffs a
//! double run with wall columns masked).

use crate::{f2, format_table, human_bytes};
use lc_core::cohesion::CohesionConfig;
use lc_core::demo;
use lc_core::node::{NodeCmd, QueryResult, RegistryConfig};
use lc_core::testkit::{build_world_on, World};
use lc_core::{CacheConfig, ComponentQuery, NodeConfig, ShardConfig};
use lc_des::{ActorId, Sim, SimTime};
use lc_net::{ChurnHooks, FaultPlan, HostId, LinkFaults, Net, Topology};
use lc_pkg::{ComponentDescriptor, Package, Platform, QosSpec, Version};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;

/// JSON schema version (bump when keys change; ci.sh pins the diff).
pub const SCHEMA_VERSION: u32 = 1;

/// Distinct components spread over the shard space.
const COMPONENTS: u32 = 32;
/// Queries issued per variant.
const QUERIES: u32 = 768;
/// Virtual-time spacing between queries.
const QUERY_GAP: SimTime = SimTime::from_millis(12);

/// One sweep point: a campus size and a registry backend.
#[derive(Clone, Copy)]
pub struct Point {
    /// Campus size in nodes (sites x 8).
    pub nodes: u32,
    /// Shard count; 0 selects the single-leader backend.
    pub shards: u32,
}

/// The sweep: the full backend ladder on the 1k campus (the gated
/// table), plus the end points again at 8k to show the trend holds an
/// order of magnitude up.
pub fn grid(max_nodes: u32) -> Vec<Point> {
    let mut g: Vec<Point> = [0u32, 2, 4, 8]
        .iter()
        .map(|&shards| Point { nodes: 1024, shards })
        .collect();
    if max_nodes >= 8192 {
        g.push(Point { nodes: 8192, shards: 0 });
        g.push(Point { nodes: 8192, shards: 8 });
    }
    g
}

/// One variant's aggregate outcome over the query phase.
pub struct VariantResult {
    /// Point this result belongs to.
    pub point: Point,
    /// Queries answered with at least one offer / issued.
    pub answered: f64,
    /// First-offer latency percentiles, ms (virtual time).
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// `query.msgs` delta per query.
    pub msgs_per_query: f64,
    /// Overlay finger hops and gossip digest/delta messages.
    pub shard_hops: u64,
    pub gossip_msgs: u64,
    /// Busiest receiver over the query phase: host and byte delta.
    pub hotspot: HostId,
    pub hotspot_recv: u64,
    /// Byte delta of the single-leader run's hotspot (the former
    /// leader) under *this* backend.
    pub leader_recv: u64,
    /// Fabric crash/restart events observed (churn really ran).
    pub crashes: u64,
}

/// Label for a point's backend column.
pub fn backend_label(p: &Point) -> String {
    if p.shards == 0 {
        "single-leader".to_owned()
    } else {
        format!("shard-{}", p.shards)
    }
}

/// A synthetic component package: distinct name, shared demo behavior
/// and signer so installation passes the Acceptor checks.
pub(crate) fn component_package(name: &str) -> Rc<Vec<u8>> {
    let mut desc = ComponentDescriptor::new(name, Version::new(1, 0), "demo-vendor")
        .provides("counter", "IDL:demo/Counter:1.0");
    desc.qos = QosSpec { cpu_min: 0.05, cpu_max: 0.2, memory: 1 << 20, bandwidth_min: 0.0 };
    let mut pkg = Package::new(desc).with_binary(
        Platform::reference(),
        "demo_counter",
        &[0xE1; 4 * 1024],
    );
    pkg.seal(&demo::demo_key());
    Rc::new(pkg.to_bytes())
}

pub(crate) fn component_name(i: u32) -> String {
    format!("Svc{i:02}")
}

/// The owner of component `i`: a scattered non-MRM seat (offset 5).
pub(crate) fn owner(i: u32, sites: u32) -> HostId {
    HostId(((i * 37) % sites) * 8 + 5)
}

/// The origin of query `q`: rotating sites, offsets 2–4 (never an MRM
/// seat, an owner seat or a crash target).
pub(crate) fn origin(q: u32, sites: u32) -> HostId {
    HostId(((q * 53 + 11) % sites) * 8 + 2 + q % 3)
}

/// E10-style churn: uniform loss/dup/jitter plus a scripted
/// crash/restart schedule on three bystander seats.
pub(crate) fn churn_plan(seed: u64, sites: u32) -> FaultPlan {
    let mut plan = FaultPlan::seeded(seed).default_link(
        LinkFaults::none()
            .drop_p(0.01)
            .dup_p(0.005)
            .jitter(SimTime::from_millis(2)),
    );
    for (k, site) in [3u32, 17, 41].iter().enumerate() {
        let down = SimTime::from_millis(8000 + 500 * k as u64);
        let up = down + SimTime::from_millis(2500);
        plan = plan.crash(HostId((site % sites) * 8 + 6), down, Some(up));
    }
    plan
}

pub(crate) fn config(registry: RegistryConfig) -> NodeConfig {
    NodeConfig::builder()
        .cohesion(CohesionConfig {
            fanout: 8,
            replicas: 2,
            // A long report cadence keeps cohesion chatter from
            // drowning the query traffic whose hotspot we measure; the
            // liveness window (3 x 2s) still exceeds the 2.5s crash
            // windows, so no spurious MRM failover.
            report_period: SimTime::from_secs(2),
            timeout_intervals: 3,
        })
        .query_timeout(SimTime::from_millis(800))
        .query_retries(1)
        .cache(CacheConfig::default())
        .registry(registry)
        .build()
}

/// Run one point. `leader` is the single-leader run's hotspot at this
/// size (`None` while measuring it); its recv delta is the headline.
pub fn run_point(point: Point, seed: u64, leader: Option<HostId>) -> VariantResult {
    let sites = point.nodes / 8;
    let registry = if point.shards == 0 {
        RegistryConfig::SingleLeader
    } else {
        RegistryConfig::Sharded(ShardConfig {
            shards: point.shards,
            replicas: 2,
            vnodes: 8,
            gossip_period: SimTime::from_millis(500),
            publish_ttl: SimTime::from_secs(2),
        })
    };
    let behaviors = lc_core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    let packages: Vec<(HostId, Rc<Vec<u8>>)> = (0..COMPONENTS)
        .map(|i| (owner(i, sites), component_package(&component_name(i))))
        .collect();
    let w: World = build_world_on(
        Net::builder(Topology::campus(sites as usize, 8))
            .fault_plan(churn_plan(seed, sites))
            .build(),
        seed,
        config(registry),
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        |host| {
            packages
                .iter()
                .filter(|(o, _)| *o == host)
                .map(|(_, p)| p.clone())
                .collect()
        },
    );

    // The crash schedule must also kill/respawn the node actors, not
    // just flip fabric reachability (E10's churn driver pattern).
    let net = w.net.clone();
    let mut sim: Sim = w.sim;
    let seeds = w.seeds.clone();
    let actors: Rc<RefCell<Vec<ActorId>>> = Rc::new(RefCell::new(w.actors.clone()));
    let (a1, a2) = (actors.clone(), actors.clone());
    net.install_drivers(
        &mut sim,
        ChurnHooks {
            on_crash: Box::new(move |sim, h| sim.kill(a1.borrow()[h.0 as usize])),
            on_recover: Box::new(move |sim, h| {
                let a = seeds[h.0 as usize].spawn(sim);
                a2.borrow_mut()[h.0 as usize] = a;
            }),
        },
    );

    // Soft-state convergence (cohesion summaries, shard publishes),
    // then baseline traffic so setup is excluded from the deltas. Two
    // full report rounds (2s cadence) must land before the snapshot;
    // the crash schedule starts at 8s, inside the query phase.
    sim.run_until(SimTime::from_secs(7));
    let recv_before: Vec<u64> =
        (0..point.nodes).map(|h| net.host_traffic(HostId(h)).1).collect();
    let msgs_before = sim.metrics_ref().counter("query.msgs");

    let mut sinks: Vec<Rc<RefCell<QueryResult>>> = Vec::new();
    for q in 0..QUERIES {
        let sink: Rc<RefCell<QueryResult>> = Rc::default();
        sinks.push(sink.clone());
        let actor = actors.borrow()[origin(q, sites).0 as usize];
        sim.send_in(
            SimTime::ZERO,
            actor,
            NodeCmd::Query {
                query: ComponentQuery::by_name(
                    &component_name(q % COMPONENTS),
                    Version::new(1, 0),
                ),
                sink,
                first_wins: true,
            },
        );
        let next = sim.now() + QUERY_GAP;
        sim.run_until(next);
    }
    let drain = sim.now() + SimTime::from_secs(2);
    sim.run_until(drain);

    let recv_delta =
        |h: HostId| net.host_traffic(h).1.saturating_sub(recv_before[h.0 as usize]);
    let (hotspot, hotspot_recv) = (0..point.nodes)
        .map(|h| (HostId(h), recv_delta(HostId(h))))
        .max_by_key(|&(h, d)| (d, std::cmp::Reverse(h.0)))
        .unwrap_or((HostId(0), 0));
    let leader_recv = recv_delta(leader.unwrap_or(hotspot));

    let mut lat_ms: Vec<f64> = sinks
        .iter()
        .filter_map(|s| {
            let r = s.borrow();
            r.first_offer_at.map(|at| (at - r.started).as_secs_f64() * 1e3)
        })
        .collect();
    lat_ms.sort_by(f64::total_cmp);
    let pctl = |p: f64| {
        if lat_ms.is_empty() {
            return 0.0;
        }
        lat_ms[((lat_ms.len() as f64 - 1.0) * p).round() as usize]
    };
    let m = sim.metrics_ref();
    VariantResult {
        point,
        answered: lat_ms.len() as f64 / QUERIES as f64,
        p50_ms: pctl(0.50),
        p99_ms: pctl(0.99),
        msgs_per_query: (m.counter("query.msgs") - msgs_before) as f64 / QUERIES as f64,
        shard_hops: m.counter("registry.shard_hops"),
        gossip_msgs: m.counter("registry.gossip_msgs"),
        hotspot,
        hotspot_recv,
        leader_recv,
        crashes: m.counter("net.fault.crashes"),
    }
}

/// One sweep point plus its (caller-measured) wall-clock cost; the
/// library never reads a clock — tests pass `0.0`.
pub struct SweepPoint {
    /// Deterministic simulation result.
    pub result: VariantResult,
    /// Wall-clock seconds the point took (0 = untimed).
    pub wall_s: f64,
}

/// Both artefacts of one E14 run.
pub struct E14Output {
    /// Human-readable report (wall column marked `wall`).
    pub report: String,
    /// Machine-readable summary; volatile values only on `wall_` keys.
    pub json: String,
}

/// The former-leader reduction of a sharded point against its
/// size-matched single-leader row.
fn reduction(points: &[SweepPoint], p: &VariantResult) -> f64 {
    let single = points
        .iter()
        .find(|s| s.result.point.nodes == p.point.nodes && s.result.point.shards == 0)
        .map_or(0, |s| s.result.leader_recv);
    single as f64 / (p.leader_recv.max(1)) as f64
}

/// Render the machine-readable summary: one JSON object, keys sorted,
/// floats at fixed precision. Deterministic except `wall_` keys.
fn render_json(points: &[SweepPoint], seed: u64) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"e14_sharded_registry\",");
    let _ = writeln!(j, "  \"queries_per_variant\": {QUERIES},");
    let _ = writeln!(j, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(j, "  \"seed\": {seed},");
    let _ = writeln!(j, "  \"variants\": [");
    for (i, p) in points.iter().enumerate() {
        let r = &p.result;
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"answered\": {},", f2(r.answered));
        let _ = writeln!(j, "      \"backend\": \"{}\",", backend_label(&r.point));
        let _ = writeln!(j, "      \"crashes\": {},", r.crashes);
        let _ = writeln!(j, "      \"former_leader_recv_bytes\": {},", r.leader_recv);
        let _ = writeln!(j, "      \"former_leader_reduction\": {},", f2(reduction(points, r)));
        let _ = writeln!(j, "      \"gossip_msgs\": {},", r.gossip_msgs);
        let _ = writeln!(j, "      \"hotspot_host\": {},", r.hotspot.0);
        let _ = writeln!(j, "      \"hotspot_recv_bytes\": {},", r.hotspot_recv);
        let _ = writeln!(j, "      \"msgs_per_query\": {},", f2(r.msgs_per_query));
        let _ = writeln!(j, "      \"nodes\": {},", r.point.nodes);
        let _ = writeln!(j, "      \"p50_ms\": {},", f2(r.p50_ms));
        let _ = writeln!(j, "      \"p99_ms\": {},", f2(r.p99_ms));
        let _ = writeln!(j, "      \"shard_hops\": {},", r.shard_hops);
        let _ = writeln!(j, "      \"shards\": {},", r.point.shards);
        let _ = writeln!(j, "      \"wall_ms\": {}", f2(p.wall_s * 1e3));
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Render both artefacts from completed sweep points.
pub fn render(points: &[SweepPoint], seed: u64) -> E14Output {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let r = &p.result;
            vec![
                r.point.nodes.to_string(),
                backend_label(&r.point),
                f2(r.answered * 100.0),
                f2(r.p50_ms),
                f2(r.p99_ms),
                f2(r.msgs_per_query),
                r.shard_hops.to_string(),
                r.gossip_msgs.to_string(),
                human_bytes(r.hotspot_recv),
                human_bytes(r.leader_recv),
                f2(reduction(points, r)),
                if p.wall_s > 0.0 {
                    format!("{} wall", f2(p.wall_s))
                } else {
                    "- wall".to_string()
                },
            ]
        })
        .collect();
    let mut report = String::new();
    let _ = writeln!(report, "E14: sharded registry vs single leader under churn (seed {seed})");
    let _ = writeln!(
        report,
        "{QUERIES} queries x {COMPONENTS} components, 1% loss + 3 crash/restart cycles, \
         2 replicas/shard, gossip every 500ms"
    );
    report.push_str(&format_table(
        "single-leader vs consistent-hash shards",
        &[
            "nodes",
            "backend",
            "answered %",
            "p50 ms",
            "p99 ms",
            "msgs/query",
            "hops",
            "gossip",
            "hotspot recv",
            "ex-leader recv",
            "reduction",
            "s",
        ],
        &rows,
    ));
    if let (Some(single), Some(s4)) = (
        points.iter().find(|p| p.result.point.nodes == 1024 && p.result.point.shards == 0),
        points.iter().find(|p| p.result.point.nodes == 1024 && p.result.point.shards == 4),
    ) {
        let _ = writeln!(
            report,
            "\nformer leader (host {}) at 4 shards: {} -> {} recv bytes ({}x less); \
             p99 {} -> {} ms",
            single.result.hotspot.0,
            single.result.leader_recv,
            s4.result.leader_recv,
            f2(reduction(points, &s4.result)),
            f2(single.result.p99_ms),
            f2(s4.result.p99_ms),
        );
    }
    E14Output { report, json: render_json(points, seed) }
}

/// Run the whole (capped) sweep untimed — the deterministic core the
/// tests and the double-run CI gate exercise. The single-leader row of
/// each size runs first so its hotspot (the former leader) can be
/// re-measured under every shard count.
pub fn run_untimed(seed: u64, max_nodes: u32) -> E14Output {
    let mut points: Vec<SweepPoint> = Vec::new();
    let mut leaders: Vec<(u32, HostId)> = Vec::new();
    for p in grid(max_nodes) {
        let leader = leaders.iter().find(|(n, _)| *n == p.nodes).map(|&(_, h)| h);
        let result = run_point(p, seed, leader);
        if p.shards == 0 {
            leaders.push((p.nodes, result.hotspot));
        }
        points.push(SweepPoint { result, wall_s: 0.0 });
    }
    render(&points, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_is_deterministic_and_meets_acceptance_floor() {
        let a = run_untimed(14, 1024);
        let b = run_untimed(14, 1024);
        assert_eq!(a.report, b.report);
        assert_eq!(a.json, b.json);
        assert!(a.json.contains("\"schema_version\": 1"));

        // Parse the per-variant gate fields back out of the JSON.
        let field = |block: &str, key: &str| -> f64 {
            block
                .lines()
                .find(|l| l.contains(&format!("\"{key}\":")))
                .and_then(|l| {
                    l.split(':').nth(1)?.trim().trim_end_matches(',').trim_matches('"').parse().ok()
                })
                .unwrap_or(f64::NAN)
        };
        let blocks: Vec<&str> = a.json.split("    {").skip(1).collect();
        let single = blocks
            .iter()
            .find(|b| field(b, "shards") == 0.0)
            .expect("single-leader row");
        for b in blocks.iter().filter(|b| field(b, "shards") >= 4.0) {
            let red = field(b, "former_leader_reduction");
            assert!(
                red >= 3.0,
                "{} shards: former-leader reduction {red} < 3x",
                field(b, "shards")
            );
            assert!(
                field(b, "p99_ms") <= field(single, "p99_ms"),
                "p99 regressed at {} shards",
                field(b, "shards")
            );
        }
        // Churn really ran, and answers stayed high through it.
        for b in &blocks {
            assert!(field(b, "crashes") >= 3.0);
            assert!(field(b, "answered") >= 0.9, "answered {}", field(b, "answered"));
        }
    }
}
