//! E15 — profiling the platform at scale: virtual-time profiler
//! overhead, deterministic trace sampling, and SLO monitors under
//! churn.
//!
//! Three observability claims from DESIGN.md §14, each measured:
//!
//! 1. **Profiler overhead and fidelity** — the E13 scale sweep (`hier`,
//!    10³–10⁵ nodes) runs twice per point, profiler off and on. The
//!    profiler is pure observation, so both runs must produce the
//!    *same* [`ScaleReport`] (asserted per point, reported in the
//!    `identical` column); the wall-clock cost of the per-event hook is
//!    the `overhead` column (volatile, `wall`-marked, gated ≤ 10 % on
//!    the committed artefact).
//! 2. **Sampling determinism** — the E14 sharded-registry campus (1024
//!    nodes, 4 shards, E10-style churn) runs at three head-sampling
//!    rates: full, 1/8 and 1/64. The simulation outcome fingerprint
//!    (answers, query messages, SLO breaches, crashes) must be
//!    byte-identical across rates — sampling only changes what the
//!    tracer *retains* — and each sampled span set must be a
//!    prefix-closed subset of the full run's span forest.
//! 3. **SLO monitors in virtual time** — every node evaluates a p99
//!    latency rule and an error-budget burn-rate rule over 2 s windows;
//!    1 query in 16 targets a component that does not exist, so the
//!    burn rule deterministically fires and dumps the flight recorder.
//!
//! Artefacts: a collapsed-stack flamegraph (span trees of the full run
//! merged with the DES kernel profile) and a per-node virtual-time
//! timeline — both derived from virtual time only, so the ci.sh double
//! run diffs them byte-for-byte. Everything except `wall` columns and
//! `wall_` JSON keys is deterministic.

use crate::e14;
use crate::{f2, format_table, human_bytes};
use lc_core::node::{NodeCmd, QueryResult, RegistryConfig, TraceConfig};
use lc_core::scale::{run_scale_profiled, ScaleConfig, ScaleReport, Variant};
use lc_core::testkit::{build_world_on, World};
use lc_core::{demo, ComponentQuery, Node, ShardConfig, KIND_NAMES};
use lc_des::{ActorId, ProfileReport, ProfilerConfig, Sim, SimTime};
use lc_net::{ChurnHooks, HostId, Net, Topology};
use lc_pkg::Version;
use lc_trace::{SampleConfig, SloConfig, SloKind, SloRule, Span, SpanId, Tracer};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;

/// JSON schema version (bump when keys change; ci.sh pins the diff).
pub const SCHEMA_VERSION: u32 = 1;

/// Campus sizes profiled in part A (the `hier` scale-sweep points).
pub const PROF_SIZES: [u32; 3] = [1_000, 10_000, 100_000];

/// Traced campus size for part B (sites × 8).
const NODES: u32 = 1024;
/// Shard count of the part-B registry backend.
const SHARDS: u32 = 4;
/// Distinct components spread over the shard space.
const COMPONENTS: u32 = 32;
/// Queries issued per sampling rate.
const QUERIES: u32 = 640;
/// Virtual-time spacing between queries.
const QUERY_GAP: SimTime = SimTime::from_millis(12);
/// Every `MISS_EVERY`-th query targets a component that does not
/// exist, so the error-budget burn rule has a deterministic signal.
const MISS_EVERY: u32 = 16;

/// The part-A grid, capped at `max_nodes` (ci.sh smoke caps at 10⁴).
pub fn prof_grid(max_nodes: u32) -> Vec<u32> {
    PROF_SIZES.iter().copied().filter(|&n| n <= max_nodes).collect()
}

/// One profiled sweep point: the same campus run twice, profiler off
/// then on, with caller-measured wall times (0 = untimed).
pub struct ProfPoint {
    /// Campus size.
    pub n: u32,
    /// The (profiler-off) simulation result.
    pub report: ScaleReport,
    /// The kernel profile of the profiler-on run.
    pub profile: ProfileReport,
    /// Did the profiler-on run produce the identical report?
    pub identical: bool,
    /// Wall seconds, profiler off / on (0 = untimed).
    pub wall_off_s: f64,
    pub wall_on_s: f64,
}

/// Run one sweep point with the profiler off (pure simulation).
pub fn run_off(n: u32, seed: u64) -> ScaleReport {
    let (report, _) = run_scale_profiled(ScaleConfig::new(n, Variant::Hier), seed, None);
    report
}

/// Run one sweep point with the profiler on.
pub fn run_on(n: u32, seed: u64) -> (ScaleReport, ProfileReport) {
    let (report, profile) =
        run_scale_profiled(ScaleConfig::new(n, Variant::Hier), seed, Some(ProfilerConfig::default()));
    match profile {
        Some(p) => (report, p),
        None => unreachable!("profiler was enabled"),
    }
}

/// The part-B SLO rule set: a windowed p99 latency ceiling on the
/// query-latency histogram and an error-budget burn-rate rule over the
/// empty-result fraction (budget 1 %, breach at ≥ 1× burn — the
/// deterministic 1-in-16 misses burn ≈ 6×).
pub fn slo_config() -> SloConfig {
    SloConfig {
        window: SimTime::from_secs(2),
        rules: vec![
            SloRule {
                name: "query-p99-us".to_owned(),
                kind: SloKind::LatencyQuantile {
                    key: "slo.query_us".to_owned(),
                    q_ppm: 990_000,
                    max: 5_000,
                    min_samples: 8,
                },
            },
            SloRule {
                name: "query-empty-burn".to_owned(),
                kind: SloKind::BurnRate {
                    bad: "slo.query.empty".to_owned(),
                    total: "slo.query.total".to_owned(),
                    budget_ppm: 10_000,
                    max_burn_centi: 100,
                    min_total: 16,
                },
            },
        ],
    }
}

/// Part-B query origins: four fixed front-end seats (sites 1–4, seat
/// 2 — never an MRM, owner or crash seat), so the per-node latency
/// histograms accumulate enough window samples for the SLO rules.
fn origin(q: u32) -> HostId {
    HostId(((q % 4) + 1) * 8 + 2)
}

/// The sampling ladder: label and head-sampling rate (1-in-n).
pub const RATES: [(&str, Option<u32>); 3] = [("full", None), ("1/8", Some(8)), ("1/64", Some(64))];

/// One traced campus run at a fixed sampling rate.
pub struct TracedRun {
    /// Rate label (`full`, `1/8`, `1/64`).
    pub label: &'static str,
    /// Every span the tracer retained.
    pub spans: Vec<Span>,
    /// Distinct traces retained.
    pub traces: usize,
    /// Queries answered with at least one offer.
    pub answered: u64,
    /// `slo.breaches` fired across the campus (virtual time).
    pub breaches: u64,
    /// Flight-recorder span events dumped by breach records.
    pub flight_events: u64,
    /// First few breach lines (deterministic, for the report).
    pub breach_lines: Vec<String>,
    /// Deterministic simulation-outcome fingerprint; equal across
    /// sampling rates iff sampling never perturbed the run.
    pub fingerprint: String,
}

/// Run the part-B campus once at the given sampling rate.
pub fn run_traced(seed: u64, label: &'static str, one_in: Option<u32>) -> TracedRun {
    let sites = NODES / 8;
    let tracer = Tracer::new();
    let registry = RegistryConfig::Sharded(ShardConfig {
        shards: SHARDS,
        replicas: 2,
        vnodes: 8,
        gossip_period: SimTime::from_millis(500),
        publish_ttl: SimTime::from_secs(2),
    });
    let mut cfg = e14::config(registry);
    cfg.tracing = TraceConfig {
        query_spans: true,
        recorder_cap: 64,
        sample: one_in.map(|n| SampleConfig::one_in(n, seed)),
        slo: Some(slo_config()),
    };
    let behaviors = lc_core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    let packages: Vec<(HostId, Rc<Vec<u8>>)> = (0..COMPONENTS)
        .map(|i| (e14::owner(i, sites), e14::component_package(&e14::component_name(i))))
        .collect();
    let w: World = build_world_on(
        Net::builder(Topology::campus(sites as usize, 8))
            .tracer(tracer.clone())
            .fault_plan(e14::churn_plan(seed, sites))
            .build(),
        seed,
        cfg,
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        |host| {
            packages
                .iter()
                .filter(|(o, _)| *o == host)
                .map(|(_, p)| p.clone())
                .collect()
        },
    );

    // E14's churn driver: the crash schedule kills/respawns the node
    // actors, not just fabric reachability.
    let net = w.net.clone();
    let mut sim: Sim = w.sim;
    let seeds = w.seeds.clone();
    let actors: Rc<RefCell<Vec<ActorId>>> = Rc::new(RefCell::new(w.actors.clone()));
    let (a1, a2) = (actors.clone(), actors.clone());
    net.install_drivers(
        &mut sim,
        ChurnHooks {
            on_crash: Box::new(move |sim, h| sim.kill(a1.borrow()[h.0 as usize])),
            on_recover: Box::new(move |sim, h| {
                let a = seeds[h.0 as usize].spawn(sim);
                a2.borrow_mut()[h.0 as usize] = a;
            }),
        },
    );

    sim.run_until(SimTime::from_secs(7));
    let msgs_before = sim.metrics_ref().counter("query.msgs");

    let mut sinks: Vec<Rc<RefCell<QueryResult>>> = Vec::new();
    for q in 0..QUERIES {
        let name = if q % MISS_EVERY == 0 {
            "SvcMissing".to_owned()
        } else {
            e14::component_name(q % COMPONENTS)
        };
        let sink: Rc<RefCell<QueryResult>> = Rc::default();
        sinks.push(sink.clone());
        let actor = actors.borrow()[origin(q).0 as usize];
        sim.send_in(
            SimTime::ZERO,
            actor,
            NodeCmd::Query {
                query: ComponentQuery::by_name(&name, Version::new(1, 0)),
                sink,
                first_wins: true,
            },
        );
        let next = sim.now() + QUERY_GAP;
        sim.run_until(next);
    }
    sim.run_until(sim.now() + SimTime::from_secs(2));

    let answered = sinks.iter().filter(|s| s.borrow().first_offer_at.is_some()).count() as u64;
    let m = sim.metrics_ref();
    let fingerprint = format!(
        "answered={} query.msgs={} breaches={} crashes={} hops={} gossip={}",
        answered,
        m.counter("query.msgs") - msgs_before,
        m.counter("slo.breaches"),
        m.counter("net.fault.crashes"),
        m.counter("registry.shard_hops"),
        m.counter("registry.gossip_msgs"),
    );
    let breaches = m.counter("slo.breaches");

    // Walk the (alive) nodes for their SLO monitors: flight-recorder
    // dump sizes and the first few breach lines, in (time, node) order.
    let mut flight_events = 0u64;
    let mut lines: Vec<(u64, u32, String)> = Vec::new();
    for (host, &actor) in actors.borrow().iter().enumerate() {
        let Some(node) = sim.actor_as::<Node>(actor) else { continue };
        let Some(mon) = node.state().slo_monitor() else { continue };
        for rec in mon.breaches() {
            flight_events += rec.flight.len() as u64;
            lines.push((
                rec.breach.at.as_nanos(),
                host as u32,
                format!("node {:>4}  {} ({} flight events)", host, rec.breach.render(), rec.flight.len()),
            ));
        }
    }
    lines.sort();
    let breach_lines: Vec<String> = lines.into_iter().take(4).map(|(_, _, l)| l).collect();

    let spans = tracer.spans();
    let traces = spans.iter().map(|s| s.trace).collect::<BTreeSet<_>>().len();
    TracedRun { label, spans, traces, answered, breaches, flight_events, breach_lines, fingerprint }
}

/// Is `sub` a prefix-closed subset of `full`? (Every sampled span
/// exists in the full run, and every sampled span's parent was also
/// sampled.)
pub fn prefix_closed_subset(sub: &[Span], full: &[Span]) -> bool {
    let full_ids: BTreeSet<SpanId> = full.iter().map(|s| s.id).collect();
    let sub_ids: BTreeSet<SpanId> = sub.iter().map(|s| s.id).collect();
    sub.iter().all(|s| {
        full_ids.contains(&s.id) && s.parent.map(|p| sub_ids.contains(&p)).unwrap_or(true)
    })
}

/// The flamegraph artefact: span-tree collapsed stacks of the full
/// traced run merged with the DES kernel profile of the largest
/// profiled sweep point. Virtual-time weights only — byte-identical
/// across runs.
pub fn flame_artefact(full_spans: &[Span], profile: &ProfileReport) -> String {
    let mut s = String::new();
    s.push_str(&lc_trace::flame::to_collapsed(full_spans));
    s.push_str(&lc_trace::profile::to_collapsed(profile, &KIND_NAMES));
    s
}

/// The per-node virtual-time timeline artefact: the first two
/// front-end seats of the traced campus.
pub fn timeline_artefact(full_spans: &[Span]) -> String {
    lc_trace::flame::to_timeline(full_spans, &[origin(0).0, origin(1).0])
}

/// Both artefacts of one E15 run.
pub struct E15Output {
    /// Human-readable report (wall columns marked `wall`).
    pub report: String,
    /// Machine-readable summary; volatile values only on `wall_` keys.
    pub json: String,
    /// Collapsed-stack flamegraph (deterministic).
    pub flame: String,
    /// Per-node virtual-time timeline (deterministic).
    pub timeline: String,
}

/// Wall overhead of the profiler-on run, percent (0 while untimed).
pub fn overhead_pct(p: &ProfPoint) -> f64 {
    if p.wall_off_s > 0.0 {
        (p.wall_on_s / p.wall_off_s - 1.0) * 100.0
    } else {
        0.0
    }
}

/// Render the machine-readable summary: one JSON object, keys sorted,
/// floats at fixed precision. Deterministic except `wall_` keys.
fn render_json(points: &[ProfPoint], runs: &[TracedRun], seed: u64) -> String {
    let full = &runs[0];
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"e15_profiling\",");
    let _ = writeln!(j, "  \"profiler_points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let pr = &p.profile;
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"arena_bytes_max\": {},", pr.arena_bytes_max);
        let _ = writeln!(j, "      \"depth_max\": {},", pr.depth_max);
        let _ = writeln!(j, "      \"events\": {},", pr.events);
        let _ = writeln!(j, "      \"identical\": {},", p.identical);
        let _ = writeln!(j, "      \"n\": {},", p.n);
        let _ = writeln!(j, "      \"queue_samples\": {},", pr.samples.len());
        let _ = writeln!(j, "      \"samples_dropped\": {},", pr.samples_dropped);
        let _ = writeln!(j, "      \"wall_off_ms\": {},", f2(p.wall_off_s * 1e3));
        let _ = writeln!(j, "      \"wall_on_ms\": {},", f2(p.wall_on_s * 1e3));
        let _ = writeln!(j, "      \"wall_overhead_pct\": {}", f2(overhead_pct(p)));
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(j, "  \"seed\": {seed},");
    let _ = writeln!(j, "  \"traced\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"answered\": {},", r.answered);
        let _ = writeln!(j, "      \"breaches\": {},", r.breaches);
        let _ = writeln!(j, "      \"flight_events\": {},", r.flight_events);
        let _ = writeln!(j, "      \"identical\": {},", r.fingerprint == full.fingerprint);
        let _ = writeln!(
            j,
            "      \"prefix_closed_subset\": {},",
            prefix_closed_subset(&r.spans, &full.spans)
        );
        let _ = writeln!(j, "      \"rate\": \"{}\",", r.label);
        let _ = writeln!(j, "      \"spans\": {},", r.spans.len());
        let _ = writeln!(j, "      \"traces\": {}", r.traces);
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Render every artefact from completed parts A and B. `runs[0]` must
/// be the full (unsampled) traced run.
pub fn render(points: &[ProfPoint], runs: &[TracedRun], seed: u64) -> E15Output {
    let full = &runs[0];
    let mut report = String::new();
    let _ = writeln!(report, "E15: profiling, sampling and SLO monitors at scale (seed {seed})");
    let _ = writeln!(
        report,
        "part A: hier scale sweep profiled off/on; part B: {NODES}-node sharded campus, \
         {QUERIES} queries, 1-in-{MISS_EVERY} deliberate misses, churn + SLO rules"
    );

    let rows_a: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let pr = &p.profile;
            vec![
                p.n.to_string(),
                pr.events.to_string(),
                pr.lane(lc_des::Lane::Packed).events.to_string(),
                pr.samples.len().to_string(),
                pr.depth_max.to_string(),
                human_bytes(pr.arena_bytes_max as u64),
                p.identical.to_string(),
                // Fixed-width cell so table alignment (and therefore
                // the masked double-run diff) never varies with the
                // wall value.
                if p.wall_off_s > 0.0 {
                    format!("{:>7} wall", f2(overhead_pct(p)))
                } else {
                    format!("{:>7} wall", "-")
                },
            ]
        })
        .collect();
    report.push_str(&format_table(
        "A: virtual-time profiler over the scale sweep (hier)",
        &["nodes", "events", "packed", "samples", "qdepth max", "arena max", "identical", "overhead %"],
        &rows_a,
    ));

    if let Some(p) = points.last() {
        let _ = writeln!(report);
        report.push_str(&lc_trace::profile::render(&p.profile, &KIND_NAMES, 5));
    }

    let rows_b: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.spans.len().to_string(),
                r.traces.to_string(),
                r.answered.to_string(),
                r.breaches.to_string(),
                r.flight_events.to_string(),
                prefix_closed_subset(&r.spans, &full.spans).to_string(),
                (r.fingerprint == full.fingerprint).to_string(),
            ]
        })
        .collect();
    report.push_str(&format_table(
        "B: head sampling on the sharded campus under churn",
        &["rate", "spans", "traces", "answered", "breaches", "flight", "prefix-closed", "identical"],
        &rows_b,
    ));

    let _ = writeln!(report, "\n== first SLO breaches (virtual time, full run) ==");
    for line in &full.breach_lines {
        let _ = writeln!(report, "{line}");
    }

    let retained: Vec<String> =
        runs.iter().map(|r| format!("{}: {} spans", r.label, r.spans.len())).collect();
    let _ = writeln!(
        report,
        "\nsampling kept bounded memory without touching the outcome: {}",
        retained.join(", ")
    );

    E15Output {
        report,
        json: render_json(points, runs, seed),
        flame: flame_artefact(&full.spans, &points[points.len() - 1].profile),
        timeline: timeline_artefact(&full.spans),
    }
}

/// Run the whole (capped) experiment untimed — the deterministic core
/// the tests and the double-run CI gate exercise.
pub fn run_untimed(seed: u64, max_nodes: u32) -> E15Output {
    let points: Vec<ProfPoint> = prof_grid(max_nodes)
        .into_iter()
        .map(|n| {
            let off = run_off(n, seed);
            let (on, profile) = run_on(n, seed);
            let identical = off == on;
            ProfPoint { n, report: off, profile, identical, wall_off_s: 0.0, wall_on_s: 0.0 }
        })
        .collect();
    let runs: Vec<TracedRun> =
        RATES.iter().map(|&(label, one_in)| run_traced(seed, label, one_in)).collect();
    render(&points, &runs, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_is_pure_observation() {
        let off = run_off(1_000, 15);
        let (on, profile) = run_on(1_000, 15);
        assert_eq!(off, on, "profiler perturbed the simulation");
        assert_eq!(profile.events, off.events);
        // Every event is attributed to exactly one lane.
        let lanes: u64 = profile.lanes.iter().map(|t| t.events).sum();
        assert_eq!(lanes, profile.events);
        assert!(!profile.samples.is_empty(), "cadence produced no queue samples");
    }

    #[test]
    fn sampling_never_perturbs_and_stays_prefix_closed() {
        let full = run_traced(15, "full", None);
        let eighth = run_traced(15, "1/8", Some(8));
        assert_eq!(full.fingerprint, eighth.fingerprint, "sampling changed the simulation");
        assert!(eighth.spans.len() < full.spans.len(), "1/8 sampling retained everything");
        assert!(prefix_closed_subset(&eighth.spans, &full.spans));
        // The SLO pipeline fired: deliberate misses burn the error
        // budget, breaches dump the flight recorder.
        assert!(full.breaches > 0, "no SLO breaches fired");
        assert!(full.flight_events > 0, "breaches dumped no flight events");
        assert!(!full.breach_lines.is_empty());
    }
}
