//! E12 — registry query cache, request coalescing and frame batching
//! (§2.4.2: component metadata is mostly immutable, so "caching can be
//! performed safely").
//!
//! The workload stresses exactly the traffic the cache is built for:
//! a 64-node campus where a handful of front-end hosts re-issue the
//! same component lookup in rounds, with same-tick bursts (think a
//! fan-in of clients hitting one facade). Four variants run the same
//! workload and seed:
//!
//! * `baseline`   — no cache (`NodeConfig.cache = None`), the pre-cache
//!   runtime byte-for-byte;
//! * `cache`      — per-node result cache only;
//! * `cache+coal` — cache plus singleflight coalescing of identical
//!   in-flight queries;
//! * `full`       — cache + coalescing + per-destination frame batching
//!   in lc-net.
//!
//! Mid-run, a component owner spawns a new Counter instance: the
//! coherence broadcast invalidates every peer's cached entries, so the
//! next round misses and re-queries (the `invalidated` column).
//!
//! Everything reported derives from virtual time and counters, so the
//! report and the JSON summary are byte-identical across runs (ci.sh
//! runs the binary twice and diffs both). The non-batching variants
//! must also return the *same normalized offer sets* as the baseline —
//! the report asserts it; `cache_equiv.rs` pins it as a test.

use crate::{f2, format_table, human_bytes};
use lc_core::cohesion::CohesionConfig;
use lc_core::demo;
use lc_core::node::{NodeCmd, QueryResult};
use lc_core::testkit::{build_world, World};
use lc_core::{CacheConfig, ComponentQuery, NodeConfig, SpawnSink};
use lc_des::SimTime;
use lc_net::{HostId, Topology};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;

/// Network size: 8 sites x 8 hosts.
const N: usize = 64;
/// Query rounds before the invalidation event.
const ROUNDS: u32 = 5;
/// Identical queries issued in the *same tick* per origin per round.
const BURST: u32 = 3;
/// Front-end hosts that re-issue the lookup (never owners, never MRMs).
const ORIGINS: [HostId; 4] = [HostId(2), HostId(12), HostId(28), HostId(44)];
/// The owner that spawns mid-run, triggering the coherence broadcast.
const SPAWN_OWNER: HostId = HostId(23);

/// One variant's aggregate outcome.
pub struct VariantResult {
    /// Variant label.
    pub name: &'static str,
    /// Queries issued (same for every variant).
    pub queries: usize,
    /// `query.msgs` delta over the query phase / queries issued.
    pub msgs_per_query: f64,
    /// Mean first-offer latency over answered queries, ms.
    pub first_offer_ms: f64,
    /// Fraction of queries answered with at least one offer.
    pub hit_rate: f64,
    /// Cache hits / misses / coalesced joins (sim counters).
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub coalesced: u64,
    /// Entries dropped by coherence broadcasts, summed over nodes.
    pub invalidated: u64,
    /// lc-net frames assembled / header bytes saved by batching.
    pub batch_frames: u64,
    pub batch_saved: u64,
    /// Bytes received by the busiest host.
    pub hotspot_recv: u64,
    /// Normalized result sets, one per query, for equivalence checks:
    /// sorted `(node, component, version)` triples.
    pub result_sets: Vec<Vec<(u32, String, String)>>,
}

/// Both artefacts of one E12 run.
pub struct E12Output {
    /// Human-readable report.
    pub report: String,
    /// Machine-readable summary (sorted keys, stable formatting).
    pub json: String,
}

fn config(cache: Option<CacheConfig>) -> NodeConfig {
    NodeConfig {
        cohesion: CohesionConfig {
            fanout: 8,
            replicas: 2,
            report_period: SimTime::from_millis(500),
            timeout_intervals: 3,
        },
        query_timeout: SimTime::from_millis(800),
        require_signature: false,
        cache,
        ..Default::default()
    }
}

/// Run the workload under one cache configuration.
pub fn run_variant(name: &'static str, cache: Option<CacheConfig>, seed: u64) -> VariantResult {
    let behaviors = lc_core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    let mut w: World = build_world(
        Topology::campus(N / 8, 8),
        seed,
        config(cache),
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        |host| {
            if host.0 % 16 == 7 {
                vec![demo::counter_package()]
            } else {
                Vec::new()
            }
        },
    );
    // Soft-state convergence (reports + summaries), then baseline the
    // query-message counter so setup traffic is excluded.
    w.sim.run_until(SimTime::from_secs(2));
    let msgs_before = w.sim.metrics_ref().counter("query.msgs");

    let mut sinks: Vec<Rc<RefCell<QueryResult>>> = Vec::new();
    let round = |w: &mut World, sinks: &mut Vec<Rc<RefCell<QueryResult>>>| {
        for origin in ORIGINS {
            // Same-tick burst of identical queries: the singleflight
            // window this PR adds exists for exactly this shape.
            for _ in 0..BURST {
                let sink: Rc<RefCell<QueryResult>> = Rc::default();
                sinks.push(sink.clone());
                w.cmd(
                    origin,
                    NodeCmd::Query {
                        query: ComponentQuery::by_name("Counter", lc_pkg::Version::new(1, 0)),
                        sink,
                        first_wins: true,
                    },
                );
            }
            let next = w.sim.now() + SimTime::from_millis(150);
            w.sim.run_until(next);
        }
    };
    for _ in 0..ROUNDS {
        round(&mut w, &mut sinks);
    }

    // Coherence event: an owner spawns a new instance; with caching on,
    // the broadcast empties every peer's matching entries.
    let spawn: SpawnSink = Rc::default();
    w.cmd(
        SPAWN_OWNER,
        NodeCmd::SpawnLocal {
            component: "Counter".into(),
            min_version: lc_pkg::Version::new(1, 0),
            instance_name: None,
            sink: spawn,
        },
    );
    let settle = w.sim.now() + SimTime::from_millis(300);
    w.sim.run_until(settle);
    // The post-invalidation round must re-query the network.
    round(&mut w, &mut sinks);
    let drain = w.sim.now() + SimTime::from_secs(2);
    w.sim.run_until(drain);

    let msgs = w.sim.metrics_ref().counter("query.msgs") - msgs_before;
    let mut first_ms = Vec::new();
    let mut hits = 0usize;
    let mut result_sets = Vec::new();
    for s in &sinks {
        let r = s.borrow();
        if let Some(at) = r.first_offer_at {
            first_ms.push((at - r.started).as_secs_f64() * 1e3);
            hits += 1;
        }
        let mut set: Vec<(u32, String, String)> = r
            .offers
            .iter()
            .map(|o| (o.node.0, o.component.clone(), o.version.to_string()))
            .collect();
        set.sort();
        set.dedup();
        result_sets.push(set);
    }
    let invalidated = (0..N as u32)
        .filter_map(|h| w.node(HostId(h)).and_then(|n| n.cache_stats()))
        .map(|s| s.invalidated_entries)
        .sum();
    let hotspot =
        (0..N as u32).map(|h| w.net.host_traffic(HostId(h)).1).max().unwrap_or(0);
    let m = w.sim.metrics_ref();
    VariantResult {
        name,
        queries: sinks.len(),
        msgs_per_query: msgs as f64 / sinks.len() as f64,
        first_offer_ms: first_ms.iter().sum::<f64>() / first_ms.len().max(1) as f64,
        hit_rate: hits as f64 / sinks.len() as f64,
        cache_hits: m.counter("cache.hits"),
        cache_misses: m.counter("cache.misses"),
        coalesced: m.counter("cache.coalesced"),
        invalidated,
        batch_frames: m.counter("net.batch.frames"),
        batch_saved: m.counter("net.batch.saved_bytes"),
        hotspot_recv: hotspot,
        result_sets,
    }
}

/// Render the machine-readable summary: one JSON object, keys sorted,
/// floats at fixed precision — byte-stable across runs.
fn render_json(variants: &[VariantResult], reduction: f64, equivalent: bool) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"equivalent_result_sets\": {equivalent},");
    let _ = writeln!(j, "  \"experiment\": \"e12_cache_perf\",");
    let _ = writeln!(j, "  \"msgs_per_query_reduction\": {},", f2(reduction));
    let _ = writeln!(j, "  \"nodes\": {N},");
    let _ = writeln!(j, "  \"queries\": {},", variants[0].queries);
    let _ = writeln!(j, "  \"schema_version\": 1,");
    let _ = writeln!(j, "  \"variants\": [");
    for (i, v) in variants.iter().enumerate() {
        let comma = if i + 1 < variants.len() { "," } else { "" };
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"batch_frames\": {},", v.batch_frames);
        let _ = writeln!(j, "      \"batch_saved_bytes\": {},", v.batch_saved);
        let _ = writeln!(j, "      \"cache_hits\": {},", v.cache_hits);
        let _ = writeln!(j, "      \"cache_misses\": {},", v.cache_misses);
        let _ = writeln!(j, "      \"coalesced\": {},", v.coalesced);
        let _ = writeln!(j, "      \"first_offer_ms\": {},", f2(v.first_offer_ms));
        let _ = writeln!(j, "      \"hit_rate\": {},", f2(v.hit_rate));
        let _ = writeln!(j, "      \"hotspot_recv_bytes\": {},", v.hotspot_recv);
        let _ = writeln!(j, "      \"invalidated_entries\": {},", v.invalidated);
        let _ = writeln!(j, "      \"msgs_per_query\": {},", f2(v.msgs_per_query));
        let _ = writeln!(j, "      \"name\": \"{}\"", v.name);
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Run all four variants and render both artefacts.
pub fn run(seed: u64) -> E12Output {
    let variants = [
        run_variant("baseline", None, seed),
        run_variant(
            "cache",
            Some(CacheConfig { coalesce: false, ..CacheConfig::default() }),
            seed,
        ),
        run_variant("cache+coal", Some(CacheConfig::default()), seed),
        run_variant("full", Some(CacheConfig::full()), seed),
    ];

    // Equivalence: caching and coalescing change *cost*, not *answers*.
    // (Batching legitimately reshuffles first-wins timing, so `full` is
    // excluded from the set comparison.)
    let equivalent = variants[1..3]
        .iter()
        .all(|v| v.result_sets == variants[0].result_sets);
    let reduction = variants[0].msgs_per_query
        / variants[2].msgs_per_query.max(f64::MIN_POSITIVE);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "E12: registry query cache + coalescing + frame batching (seed {seed})"
    );
    let _ = writeln!(
        report,
        "{N} nodes (8 sites x 8), {} queries: {ROUNDS}+1 rounds x {} origins x burst {BURST}, \
         owner spawn between rounds {ROUNDS} and {}",
        variants[0].queries,
        ORIGINS.len(),
        ROUNDS + 1,
    );
    let rows: Vec<Vec<String>> = variants
        .iter()
        .map(|v| {
            vec![
                v.name.to_string(),
                f2(v.msgs_per_query),
                f2(v.first_offer_ms),
                f2(v.hit_rate * 100.0),
                v.cache_hits.to_string(),
                v.cache_misses.to_string(),
                v.coalesced.to_string(),
                v.invalidated.to_string(),
                v.batch_frames.to_string(),
                human_bytes(v.batch_saved),
                human_bytes(v.hotspot_recv),
            ]
        })
        .collect();
    report.push_str(&format_table(
        "cache / coalescing / batching sweep",
        &[
            "variant",
            "msgs/query",
            "first-offer ms",
            "answered %",
            "hits",
            "misses",
            "coalesced",
            "invalidated",
            "frames",
            "hdr saved",
            "hotspot recv",
        ],
        &rows,
    ));
    let _ = writeln!(
        report,
        "\nmsgs/query reduction (baseline vs cache+coal): {}x",
        f2(reduction)
    );
    let _ = writeln!(
        report,
        "normalized result sets identical to baseline (cache, cache+coal): {}",
        if equivalent { "yes" } else { "NO" },
    );

    E12Output { report, json: render_json(&variants, reduction, equivalent) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_is_deterministic_and_meets_reduction_floor() {
        let a = run(12);
        let b = run(12);
        assert_eq!(a.report, b.report);
        assert_eq!(a.json, b.json);
        // The committed BENCH_e12.json claims >= 2x; pin it here too.
        let line = a
            .json
            .lines()
            .find(|l| l.contains("msgs_per_query_reduction"))
            .expect("reduction line present");
        let v: f64 = line
            .trim()
            .trim_start_matches("\"msgs_per_query_reduction\": ")
            .trim_end_matches(',')
            .parse()
            .expect("reduction parses");
        assert!(v >= 2.0, "msgs/query reduction {v} < 2.0");
        assert!(a.json.contains("\"equivalent_result_sets\": true"));
    }
}
