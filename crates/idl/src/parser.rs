//! Recursive-descent parser for the IDL subset.

use crate::ast::*;
use crate::lexer::{LexError, Lexer, Token, TokenKind};

/// A parse failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IdlParseError {
    /// Explanation.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
}

impl std::fmt::Display for IdlParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IDL parse error at line {}: {}", self.line, self.msg)
    }
}
impl std::error::Error for IdlParseError {}

impl From<LexError> for IdlParseError {
    fn from(e: LexError) -> Self {
        IdlParseError { msg: e.msg, line: e.line }
    }
}

/// Parse a compilation unit.
pub fn parse(src: &str) -> Result<Spec, IdlParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let mut defs = Vec::new();
    while !p.at_eof() {
        defs.push(p.definition()?);
    }
    Ok(Spec { defs })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn cur(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at_eof(&self) -> bool {
        self.cur().kind == TokenKind::Eof
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, IdlParseError> {
        Err(IdlParseError { msg: msg.into(), line: self.cur().line })
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.cur().kind.clone();
        if !self.at_eof() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.cur().kind == kind {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), IdlParseError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.cur().kind))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(&self.cur().kind, TokenKind::Keyword(k) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, IdlParseError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => self.err(format!("expected {what} name, found {other:?}")),
        }
    }

    fn scoped_name(&mut self) -> Result<ScopedName, IdlParseError> {
        let mut parts = vec![self.ident("scoped")?];
        while self.eat(&TokenKind::Scope) {
            parts.push(self.ident("scoped")?);
        }
        Ok(ScopedName(parts))
    }

    fn definition(&mut self) -> Result<Definition, IdlParseError> {
        let def = if self.eat_kw("module") {
            let name = self.ident("module")?;
            self.expect(TokenKind::LBrace, "'{'")?;
            let mut defs = Vec::new();
            while !self.eat(&TokenKind::RBrace) {
                if self.at_eof() {
                    return self.err("unterminated module body");
                }
                defs.push(self.definition()?);
            }
            Definition::Module(ModuleDecl { name, defs })
        } else if self.eat_kw("interface") {
            Definition::Interface(self.interface()?)
        } else if self.eat_kw("struct") {
            let name = self.ident("struct")?;
            let fields = self.field_block()?;
            Definition::Struct(StructDecl { name, fields })
        } else if self.eat_kw("exception") {
            let name = self.ident("exception")?;
            let fields = self.field_block()?;
            Definition::Exception(ExceptionDecl { name, fields })
        } else if self.eat_kw("eventtype") {
            let name = self.ident("eventtype")?;
            let fields = self.field_block()?;
            Definition::Event(EventDecl { name, fields })
        } else if self.eat_kw("enum") {
            let name = self.ident("enum")?;
            self.expect(TokenKind::LBrace, "'{'")?;
            let mut items = Vec::new();
            loop {
                items.push(self.ident("enumerator")?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBrace, "'}'")?;
            Definition::Enum(EnumDecl { name, items })
        } else if self.eat_kw("typedef") {
            let ty = self.type_ref()?;
            let name = self.ident("typedef")?;
            Definition::Typedef(TypedefDecl { ty, name })
        } else {
            return self.err(format!("expected a definition, found {:?}", self.cur().kind));
        };
        self.expect(TokenKind::Semi, "';' after definition")?;
        Ok(def)
    }

    fn field_block(&mut self) -> Result<Vec<Field>, IdlParseError> {
        self.expect(TokenKind::LBrace, "'{'")?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.at_eof() {
                return self.err("unterminated block");
            }
            let ty = self.type_ref()?;
            let name = self.ident("field")?;
            self.expect(TokenKind::Semi, "';' after field")?;
            fields.push(Field { ty, name });
        }
        Ok(fields)
    }

    fn interface(&mut self) -> Result<InterfaceDecl, IdlParseError> {
        let name = self.ident("interface")?;
        let mut bases = Vec::new();
        if self.eat(&TokenKind::Colon) {
            loop {
                bases.push(self.scoped_name()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::LBrace, "'{'")?;
        let mut ops = Vec::new();
        let mut attrs = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.at_eof() {
                return self.err("unterminated interface body");
            }
            if self.eat_kw("readonly") {
                if !self.eat_kw("attribute") {
                    return self.err("'readonly' must be followed by 'attribute'");
                }
                let ty = self.type_ref()?;
                let name = self.ident("attribute")?;
                self.expect(TokenKind::Semi, "';'")?;
                attrs.push(AttrDecl { readonly: true, ty, name });
            } else if self.eat_kw("attribute") {
                let ty = self.type_ref()?;
                let name = self.ident("attribute")?;
                self.expect(TokenKind::Semi, "';'")?;
                attrs.push(AttrDecl { readonly: false, ty, name });
            } else {
                ops.push(self.operation()?);
            }
        }
        Ok(InterfaceDecl { name, bases, ops, attrs })
    }

    fn operation(&mut self) -> Result<OpDecl, IdlParseError> {
        let oneway = self.eat_kw("oneway");
        let ret = self.type_ref()?;
        let name = self.ident("operation")?;
        self.expect(TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let mode = if self.eat_kw("in") {
                    ParamMode::In
                } else if self.eat_kw("out") {
                    ParamMode::Out
                } else if self.eat_kw("inout") {
                    ParamMode::InOut
                } else {
                    return self.err("parameter must start with in/out/inout");
                };
                let ty = self.type_ref()?;
                let pname = self.ident("parameter")?;
                params.push(Param { mode, ty, name: pname });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen, "')'")?;
        }
        let mut raises = Vec::new();
        if self.eat_kw("raises") {
            self.expect(TokenKind::LParen, "'(' after raises")?;
            loop {
                raises.push(self.scoped_name()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen, "')'")?;
        }
        self.expect(TokenKind::Semi, "';' after operation")?;
        Ok(OpDecl { oneway, ret, name, params, raises })
    }

    fn type_ref(&mut self) -> Result<TypeRef, IdlParseError> {
        if self.eat_kw("void") {
            Ok(TypeRef::Void)
        } else if self.eat_kw("boolean") {
            Ok(TypeRef::Boolean)
        } else if self.eat_kw("octet") {
            Ok(TypeRef::Octet)
        } else if self.eat_kw("char") {
            Ok(TypeRef::Char)
        } else if self.eat_kw("float") {
            Ok(TypeRef::Float)
        } else if self.eat_kw("double") {
            Ok(TypeRef::Double)
        } else if self.eat_kw("string") {
            Ok(TypeRef::String)
        } else if self.eat_kw("unsigned") {
            if self.eat_kw("short") {
                Ok(TypeRef::Short { unsigned: true })
            } else if self.eat_kw("long") {
                if self.eat_kw("long") {
                    Ok(TypeRef::LongLong { unsigned: true })
                } else {
                    Ok(TypeRef::Long { unsigned: true })
                }
            } else {
                self.err("'unsigned' must be followed by short/long")
            }
        } else if self.eat_kw("short") {
            Ok(TypeRef::Short { unsigned: false })
        } else if self.eat_kw("long") {
            if self.eat_kw("long") {
                Ok(TypeRef::LongLong { unsigned: false })
            } else {
                Ok(TypeRef::Long { unsigned: false })
            }
        } else if self.eat_kw("sequence") {
            self.expect(TokenKind::Lt, "'<'")?;
            let inner = self.type_ref()?;
            self.expect(TokenKind::Gt, "'>'")?;
            Ok(TypeRef::Sequence(Box::new(inner)))
        } else if matches!(self.cur().kind, TokenKind::Ident(_)) {
            Ok(TypeRef::Named(self.scoped_name()?))
        } else {
            self.err(format!("expected a type, found {:?}", self.cur().kind))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_unit_parses() {
        let spec = parse(
            r#"
            // The CSCW display service (Fig. 2 of the paper).
            module cscw {
              typedef sequence<octet> Pixels;
              enum Color { red, green, blue };
              struct Rect { long x; long y; long w; long h; };
              exception OutOfBounds { string what; };
              eventtype Damage { Rect area; };
              interface Display {
                readonly attribute long width;
                attribute string title;
                void draw(in Rect area, in Pixels data) raises (OutOfBounds);
                oneway void invalidate(in Rect area);
              };
              interface SmartDisplay : Display {
                boolean batch(in sequence<Rect> areas);
              };
            };
            "#,
        )
        .unwrap();
        assert_eq!(spec.defs.len(), 1);
        let Definition::Module(m) = &spec.defs[0] else { panic!("module") };
        assert_eq!(m.defs.len(), 7);
        let Definition::Interface(d) = &m.defs[5] else { panic!("interface") };
        assert_eq!(d.name, "Display");
        assert_eq!(d.ops.len(), 2);
        assert_eq!(d.attrs.len(), 2);
        assert!(d.ops[1].oneway);
        assert_eq!(d.ops[0].raises.len(), 1);
        let Definition::Interface(sd) = &m.defs[6] else { panic!("interface") };
        assert_eq!(sd.bases[0].to_string(), "Display");
    }

    #[test]
    fn scoped_names() {
        let spec = parse("interface I { void f(in a::b::C x); };").unwrap();
        let Definition::Interface(i) = &spec.defs[0] else { panic!() };
        let TypeRef::Named(n) = &i.ops[0].params[0].ty else { panic!() };
        assert_eq!(n.to_string(), "a::b::C");
    }

    #[test]
    fn unsigned_types() {
        let spec =
            parse("struct S { unsigned short a; unsigned long b; unsigned long long c; long long d; };")
                .unwrap();
        let Definition::Struct(s) = &spec.defs[0] else { panic!() };
        assert_eq!(s.fields[0].ty, TypeRef::Short { unsigned: true });
        assert_eq!(s.fields[1].ty, TypeRef::Long { unsigned: true });
        assert_eq!(s.fields[2].ty, TypeRef::LongLong { unsigned: true });
        assert_eq!(s.fields[3].ty, TypeRef::LongLong { unsigned: false });
    }

    #[test]
    fn error_reporting() {
        let e = parse("interface {").unwrap_err();
        assert!(e.msg.contains("interface name"), "{e}");
        assert!(parse("module m { interface I {} }").is_err()); // missing ';'
        assert!(parse("interface I { void f(long x); };").is_err()); // missing mode
        assert!(parse("struct S { unsigned float x; };").is_err());
        assert!(parse("bogus").is_err());
    }

    #[test]
    fn empty_interface_and_params() {
        let spec = parse("interface Empty {};").unwrap();
        let Definition::Interface(i) = &spec.defs[0] else { panic!() };
        assert!(i.ops.is_empty());
        let spec2 = parse("interface I { void nop(); };").unwrap();
        let Definition::Interface(i2) = &spec2.defs[0] else { panic!() };
        assert!(i2.ops[0].params.is_empty());
    }
}
