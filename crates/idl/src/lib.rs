//! # lc-idl — mini-IDL compiler front-end
//!
//! CORBA-LC "has chosen to use IDL files for specifying component's types
//! and interfaces … This allows us to use CORBA 2 standard, mature IDL
//! compilers and tools" (§2.1.2 of the paper). This crate is that tool for
//! the reproduction: a lexer, parser and type checker for the IDL subset
//! the component model needs — modules, interfaces (with inheritance),
//! operations (including `oneway`), attributes, structs, enums, typedefs,
//! exceptions, and `eventtype` declarations for the publish/subscribe
//! ports.
//!
//! The output of [`compile`] is a [`Repository`]: resolved interface and
//! event metadata keyed by CORBA repository ids (`IDL:Scope/Name:1.0`),
//! which `lc-orb` uses for dispatch and `lc-core` uses to type-check port
//! connections (a `uses` port may only be wired to a `provides` port whose
//! interface is the same or a derived one).
//!
//! ```
//! let repo = lc_idl::compile(r#"
//!     module player {
//!       interface Stream { oneway void push(in string frame); };
//!       interface Decoder : Stream {
//!         long decode(in string chunk, out string pixels);
//!       };
//!       eventtype FrameReady { long frame_no; };
//!     };
//! "#).unwrap();
//! let dec = repo.interface("IDL:player/Decoder:1.0").unwrap();
//! assert_eq!(dec.ops.len(), 2); // push inherited, decode own
//! assert!(repo.is_a("IDL:player/Decoder:1.0", "IDL:player/Stream:1.0"));
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod types;

pub use ast::*;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse;
pub use types::{CompileError, EventMeta, InterfaceMeta, OpMeta, ParamMeta, Repository};

/// Parse and type-check an IDL source, producing the metadata repository.
pub fn compile(src: &str) -> Result<Repository, CompileError> {
    let spec = parse(src).map_err(CompileError::Parse)?;
    Repository::build(&spec)
}

#[cfg(test)]
mod proptests {
    use super::*;
    use lc_prop::{alphabet, check, Gen};
    use std::collections::BTreeSet;

    fn ident(g: &mut Gen) -> String {
        loop {
            let mut s = g.string_of(alphabet::LOWER, 1..2);
            s.push_str(&g.string_of(alphabet::LOWER_IDENT, 0..9));
            if !lexer::KEYWORDS.contains(&s.as_str()) {
                return s;
            }
        }
    }

    /// Any generated flat interface compiles and its ops round-trip.
    #[test]
    fn generated_interfaces_compile() {
        check("generated_interfaces_compile", |g| {
            let iface = ident(g);
            let ops: BTreeSet<String> =
                (0..g.gen_range(0..6usize)).map(|_| ident(g)).collect();
            let body: String = ops
                .iter()
                .map(|o| format!("void {o}(in long a, out string b);"))
                .collect();
            let src = format!("interface {iface} {{ {body} }};");
            let repo = compile(&src).unwrap();
            let id = format!("IDL:{iface}:1.0");
            let meta = repo.interface(&id).unwrap();
            assert_eq!(meta.ops.len(), ops.len());
            for o in &ops {
                assert!(meta.op(o).is_some());
            }
        });
    }

    /// Duplicate operation names must be rejected.
    #[test]
    fn duplicate_ops_rejected() {
        check("duplicate_ops_rejected", |g| {
            let name = ident(g);
            let src = format!("interface i {{ void {name}(); void {name}(); }};");
            assert!(compile(&src).is_err());
        });
    }
}
