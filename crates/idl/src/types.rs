//! Type checking and the interface metadata repository.
//!
//! [`Repository::build`] walks a parsed [`Spec`], resolves every named
//! type, enforces the CORBA rules the subset needs (no duplicate names per
//! scope, no inheritance cycles, `oneway` constraints, `raises` must name
//! exceptions) and produces flattened per-interface operation tables under
//! CORBA repository ids (`IDL:scope/Name:1.0`).

use crate::ast::*;
use crate::parser::IdlParseError;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

/// Compilation failure: parse error or semantic error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// Lex/parse failure.
    Parse(IdlParseError),
    /// Semantic failure with a message naming the offending item.
    Semantic(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Semantic(m) => write!(f, "IDL semantic error: {m}"),
        }
    }
}
impl std::error::Error for CompileError {}

fn sem<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError::Semantic(msg.into()))
}

/// A fully resolved type: every name replaced by a repository id, every
/// typedef expanded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ResolvedType {
    /// `void`.
    Void,
    /// `boolean`.
    Boolean,
    /// `octet`.
    Octet,
    /// `char`.
    Char,
    /// 16-bit integer.
    Short {
        /// Unsigned?
        unsigned: bool,
    },
    /// 32-bit integer.
    Long {
        /// Unsigned?
        unsigned: bool,
    },
    /// 64-bit integer.
    LongLong {
        /// Unsigned?
        unsigned: bool,
    },
    /// 32-bit float.
    Float,
    /// 64-bit float.
    Double,
    /// UTF-8 string.
    String,
    /// Homogeneous sequence.
    Sequence(Box<ResolvedType>),
    /// Struct by repository id.
    Struct(String),
    /// Enum by repository id.
    Enum(String),
    /// Object reference typed by an interface repository id.
    Object(String),
}

/// A resolved operation parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParamMeta {
    /// Passing mode.
    pub mode: ParamMode,
    /// Resolved type.
    pub ty: ResolvedType,
    /// Name.
    pub name: String,
}

/// A resolved operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpMeta {
    /// Operation name (unique within the interface, bases included).
    pub name: String,
    /// Fire-and-forget?
    pub oneway: bool,
    /// Resolved return type.
    pub ret: ResolvedType,
    /// Parameters.
    pub params: Vec<ParamMeta>,
    /// Repository ids of declared exceptions.
    pub raises: Vec<String>,
    /// Repository id of the interface that declared this operation
    /// (differs from the owning interface for inherited operations).
    pub declared_in: String,
}

/// A resolved struct/exception/event field.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldMeta {
    /// Resolved type.
    pub ty: ResolvedType,
    /// Name.
    pub name: String,
}

/// A resolved interface: flattened operation table plus base list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InterfaceMeta {
    /// Repository id, e.g. `IDL:cscw/Display:1.0`.
    pub id: String,
    /// Unqualified name.
    pub name: String,
    /// Direct base interface ids.
    pub bases: Vec<String>,
    /// All operations: inherited first (base order), then own. Attribute
    /// accessors appear as `_get_name` / `_set_name`.
    pub ops: Vec<OpMeta>,
}

impl InterfaceMeta {
    /// Find an operation by name.
    pub fn op(&self, name: &str) -> Option<&OpMeta> {
        self.ops.iter().find(|o| o.name == name)
    }
}

/// A resolved event type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventMeta {
    /// Repository id, e.g. `IDL:cscw/Damage:1.0`.
    pub id: String,
    /// Unqualified name.
    pub name: String,
    /// Payload fields.
    pub fields: Vec<FieldMeta>,
}

/// A resolved struct type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StructMeta {
    /// Repository id.
    pub id: String,
    /// Unqualified name.
    pub name: String,
    /// Fields.
    pub fields: Vec<FieldMeta>,
}

/// A resolved enum type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EnumMeta {
    /// Repository id.
    pub id: String,
    /// Unqualified name.
    pub name: String,
    /// Enumerators.
    pub items: Vec<String>,
}

/// A resolved exception type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExceptionMeta {
    /// Repository id.
    pub id: String,
    /// Unqualified name.
    pub name: String,
    /// Members.
    pub fields: Vec<FieldMeta>,
}

/// What kind of thing a scoped name denotes (pre-resolution index).
#[derive(Clone, Debug)]
enum RawEntry {
    Interface(InterfaceDecl),
    Struct(StructDecl),
    Enum(EnumDecl),
    Typedef(TypedefDecl),
    Exception(ExceptionDecl),
    Event(EventDecl),
}

/// The compiled metadata repository for one or more IDL units.
#[derive(Clone, Debug, Default)]
pub struct Repository {
    interfaces: BTreeMap<String, InterfaceMeta>,
    events: BTreeMap<String, EventMeta>,
    structs: BTreeMap<String, StructMeta>,
    enums: BTreeMap<String, EnumMeta>,
    exceptions: BTreeMap<String, ExceptionMeta>,
}

/// Compose a repository id from a scope path and a name.
pub fn repo_id(scope: &[String], name: &str) -> String {
    if scope.is_empty() {
        format!("IDL:{name}:1.0")
    } else {
        format!("IDL:{}/{name}:1.0", scope.join("/"))
    }
}

impl Repository {
    /// Type-check `spec` and build the repository.
    pub fn build(spec: &Spec) -> Result<Self, CompileError> {
        // Pass 1: index every definition by (scope, name).
        let mut index: BTreeMap<(Vec<String>, String), RawEntry> = BTreeMap::new();
        collect(&spec.defs, &mut Vec::new(), &mut index)?;

        let resolver = Resolver { index: &index };

        let mut repo = Repository::default();

        // Pass 2: resolve non-interface types first (interfaces reference
        // them), then interfaces (which may reference each other freely).
        for ((scope, name), entry) in &index {
            let id = repo_id(scope, name);
            match entry {
                RawEntry::Struct(s) => {
                    let fields = resolver.fields(&s.fields, scope, &format!("struct {name}"))?;
                    repo.structs.insert(
                        id.clone(),
                        StructMeta { id: id.clone(), name: name.clone(), fields },
                    );
                }
                RawEntry::Enum(e) => {
                    let mut seen = BTreeSet::new();
                    for it in &e.items {
                        if !seen.insert(it) {
                            return sem(format!("enum {name}: duplicate enumerator '{it}'"));
                        }
                    }
                    repo.enums.insert(
                        id.clone(),
                        EnumMeta { id: id.clone(), name: name.clone(), items: e.items.clone() },
                    );
                }
                RawEntry::Exception(x) => {
                    let fields =
                        resolver.fields(&x.fields, scope, &format!("exception {name}"))?;
                    repo.exceptions.insert(
                        id.clone(),
                        ExceptionMeta { id: id.clone(), name: name.clone(), fields },
                    );
                }
                RawEntry::Event(ev) => {
                    let fields =
                        resolver.fields(&ev.fields, scope, &format!("eventtype {name}"))?;
                    repo.events.insert(
                        id.clone(),
                        EventMeta { id: id.clone(), name: name.clone(), fields },
                    );
                }
                RawEntry::Interface(_) | RawEntry::Typedef(_) => {}
            }
        }

        // Pass 3: interfaces, flattening inheritance (DFS with cycle check).
        let mut done: BTreeMap<String, InterfaceMeta> = BTreeMap::new();
        for ((scope, name), entry) in &index {
            if let RawEntry::Interface(decl) = entry {
                flatten_interface(decl, scope, name, &resolver, &mut Vec::new(), &mut done)?;
            }
        }
        repo.interfaces = done;

        Ok(repo)
    }

    /// Merge another repository into this one (multi-file compilation).
    ///
    /// Colliding ids must be identical definitions; otherwise an error.
    pub fn merge(&mut self, other: Repository) -> Result<(), CompileError> {
        merge_map(&mut self.interfaces, other.interfaces, "interface")?;
        merge_map(&mut self.events, other.events, "eventtype")?;
        merge_map(&mut self.structs, other.structs, "struct")?;
        merge_map(&mut self.enums, other.enums, "enum")?;
        merge_map(&mut self.exceptions, other.exceptions, "exception")?;
        Ok(())
    }

    /// Look up an interface by repository id.
    pub fn interface(&self, id: &str) -> Option<&InterfaceMeta> {
        self.interfaces.get(id)
    }

    /// Look up an event type by repository id.
    pub fn event(&self, id: &str) -> Option<&EventMeta> {
        self.events.get(id)
    }

    /// Look up a struct by repository id.
    pub fn struct_(&self, id: &str) -> Option<&StructMeta> {
        self.structs.get(id)
    }

    /// Look up an enum by repository id.
    pub fn enum_(&self, id: &str) -> Option<&EnumMeta> {
        self.enums.get(id)
    }

    /// Look up an exception by repository id.
    pub fn exception(&self, id: &str) -> Option<&ExceptionMeta> {
        self.exceptions.get(id)
    }

    /// All interface ids, sorted.
    pub fn interface_ids(&self) -> impl Iterator<Item = &str> {
        self.interfaces.keys().map(String::as_str)
    }

    /// Does `derived` equal or transitively inherit from `base`?
    pub fn is_a(&self, derived: &str, base: &str) -> bool {
        if derived == base {
            return true;
        }
        let Some(meta) = self.interfaces.get(derived) else { return false };
        meta.bases.iter().any(|b| self.is_a(b, base))
    }
}

fn merge_map<V: PartialEq + std::fmt::Debug>(
    dst: &mut BTreeMap<String, V>,
    src: BTreeMap<String, V>,
    what: &str,
) -> Result<(), CompileError> {
    for (k, v) in src {
        match dst.entry(k) {
            Entry::Vacant(e) => {
                e.insert(v);
            }
            Entry::Occupied(e) => {
                if *e.get() != v {
                    return sem(format!("conflicting {what} definition for '{}'", e.key()));
                }
            }
        }
    }
    Ok(())
}

fn collect(
    defs: &[Definition],
    scope: &mut Vec<String>,
    index: &mut BTreeMap<(Vec<String>, String), RawEntry>,
) -> Result<(), CompileError> {
    for def in defs {
        if let Definition::Module(m) = def {
            scope.push(m.name.clone());
            collect(&m.defs, scope, index)?;
            scope.pop();
            continue;
        }
        let name = def.name().to_owned();
        let entry = match def {
            Definition::Interface(d) => RawEntry::Interface(d.clone()),
            Definition::Struct(d) => RawEntry::Struct(d.clone()),
            Definition::Enum(d) => RawEntry::Enum(d.clone()),
            Definition::Typedef(d) => RawEntry::Typedef(d.clone()),
            Definition::Exception(d) => RawEntry::Exception(d.clone()),
            Definition::Event(d) => RawEntry::Event(d.clone()),
            Definition::Module(_) => unreachable!(),
        };
        let key = (scope.clone(), name.clone());
        if index.insert(key, entry).is_some() {
            return sem(format!(
                "duplicate definition of '{name}' in scope '{}'",
                scope.join("::")
            ));
        }
    }
    Ok(())
}

struct Resolver<'a> {
    index: &'a BTreeMap<(Vec<String>, String), RawEntry>,
}

impl<'a> Resolver<'a> {
    /// Find a scoped name starting from `scope` and walking outward
    /// (simplified CORBA name lookup).
    fn lookup(&self, name: &ScopedName, scope: &[String]) -> Option<(Vec<String>, &RawEntry)> {
        let mut prefix = scope.to_vec();
        loop {
            // Try prefix + name.0 — the first n-1 segments extend the
            // scope, the last is the definition name.
            let mut full = prefix.clone();
            full.extend_from_slice(&name.0[..name.0.len() - 1]);
            let key = (full.clone(), name.leaf().to_owned());
            if let Some(e) = self.index.get(&key) {
                return Some((full, e));
            }
            prefix.pop()?;
        }
    }

    fn resolve(
        &self,
        ty: &TypeRef,
        scope: &[String],
        what: &str,
    ) -> Result<ResolvedType, CompileError> {
        Ok(match ty {
            TypeRef::Void => ResolvedType::Void,
            TypeRef::Boolean => ResolvedType::Boolean,
            TypeRef::Octet => ResolvedType::Octet,
            TypeRef::Char => ResolvedType::Char,
            TypeRef::Short { unsigned } => ResolvedType::Short { unsigned: *unsigned },
            TypeRef::Long { unsigned } => ResolvedType::Long { unsigned: *unsigned },
            TypeRef::LongLong { unsigned } => ResolvedType::LongLong { unsigned: *unsigned },
            TypeRef::Float => ResolvedType::Float,
            TypeRef::Double => ResolvedType::Double,
            TypeRef::String => ResolvedType::String,
            TypeRef::Sequence(inner) => {
                ResolvedType::Sequence(Box::new(self.resolve(inner, scope, what)?))
            }
            TypeRef::Named(n) => {
                let Some((found_scope, entry)) = self.lookup(n, scope) else {
                    return sem(format!("{what}: unknown type '{n}'"));
                };
                let id = repo_id(&found_scope, n.leaf());
                match entry {
                    RawEntry::Struct(_) => ResolvedType::Struct(id),
                    RawEntry::Enum(_) => ResolvedType::Enum(id),
                    RawEntry::Interface(_) => ResolvedType::Object(id),
                    RawEntry::Typedef(td) => {
                        // Expand the alias in the scope where it was found.
                        self.resolve(&td.ty, &found_scope, what)?
                    }
                    RawEntry::Exception(_) => {
                        return sem(format!("{what}: exception '{n}' used as a type"));
                    }
                    RawEntry::Event(_) => {
                        return sem(format!(
                            "{what}: eventtype '{n}' used as a data type (events travel \
                             through event ports, not operations)"
                        ));
                    }
                }
            }
        })
    }

    fn fields(
        &self,
        fields: &[Field],
        scope: &[String],
        what: &str,
    ) -> Result<Vec<FieldMeta>, CompileError> {
        let mut out = Vec::with_capacity(fields.len());
        let mut seen = BTreeSet::new();
        for f in fields {
            if !seen.insert(&f.name) {
                return sem(format!("{what}: duplicate field '{}'", f.name));
            }
            let ty = self.resolve(&f.ty, scope, what)?;
            if ty == ResolvedType::Void {
                return sem(format!("{what}: field '{}' cannot be void", f.name));
            }
            out.push(FieldMeta { ty, name: f.name.clone() });
        }
        Ok(out)
    }
}

fn flatten_interface(
    decl: &InterfaceDecl,
    scope: &[String],
    name: &str,
    resolver: &Resolver<'_>,
    in_progress: &mut Vec<String>,
    done: &mut BTreeMap<String, InterfaceMeta>,
) -> Result<InterfaceMeta, CompileError> {
    let id = repo_id(scope, name);
    if let Some(meta) = done.get(&id) {
        return Ok(meta.clone());
    }
    if in_progress.contains(&id) {
        return sem(format!("inheritance cycle involving interface '{id}'"));
    }
    in_progress.push(id.clone());

    let what = format!("interface {name}");
    let mut ops: Vec<OpMeta> = Vec::new();
    let mut base_ids = Vec::new();

    for base in &decl.bases {
        let Some((bscope, bentry)) = resolver.lookup(base, scope) else {
            return sem(format!("{what}: unknown base interface '{base}'"));
        };
        let RawEntry::Interface(bdecl) = bentry else {
            return sem(format!("{what}: base '{base}' is not an interface"));
        };
        let bmeta =
            flatten_interface(bdecl, &bscope, base.leaf(), resolver, in_progress, done)?;
        base_ids.push(bmeta.id.clone());
        for op in &bmeta.ops {
            if let Some(existing) = ops.iter().find(|o| o.name == op.name) {
                // Diamond inheritance of the *same* declaration is fine.
                if existing.declared_in != op.declared_in {
                    return sem(format!(
                        "{what}: operation '{}' inherited from both '{}' and '{}'",
                        op.name, existing.declared_in, op.declared_in
                    ));
                }
            } else {
                ops.push(op.clone());
            }
        }
    }

    // Attribute accessors, then own operations.
    let mut own: Vec<OpDecl> = Vec::new();
    for attr in &decl.attrs {
        own.push(OpDecl {
            oneway: false,
            ret: attr.ty.clone(),
            name: format!("_get_{}", attr.name),
            params: vec![],
            raises: vec![],
        });
        if !attr.readonly {
            own.push(OpDecl {
                oneway: false,
                ret: TypeRef::Void,
                name: format!("_set_{}", attr.name),
                params: vec![Param {
                    mode: ParamMode::In,
                    ty: attr.ty.clone(),
                    name: "value".into(),
                }],
                raises: vec![],
            });
        }
    }
    own.extend(decl.ops.iter().cloned());

    for op in &own {
        if ops.iter().any(|o| o.name == op.name) {
            return sem(format!("{what}: duplicate operation '{}'", op.name));
        }
        let ret = resolver.resolve(&op.ret, scope, &what)?;
        let mut params = Vec::with_capacity(op.params.len());
        let mut seen = BTreeSet::new();
        for p in &op.params {
            if !seen.insert(&p.name) {
                return sem(format!("{what}.{}: duplicate parameter '{}'", op.name, p.name));
            }
            let ty = resolver.resolve(&p.ty, scope, &what)?;
            if ty == ResolvedType::Void {
                return sem(format!("{what}.{}: parameter '{}' cannot be void", op.name, p.name));
            }
            params.push(ParamMeta { mode: p.mode, ty, name: p.name.clone() });
        }
        if op.oneway {
            if ret != ResolvedType::Void {
                return sem(format!("{what}.{}: oneway operations must return void", op.name));
            }
            if params.iter().any(|p| p.mode != ParamMode::In) {
                return sem(format!(
                    "{what}.{}: oneway operations may only have 'in' parameters",
                    op.name
                ));
            }
            if !op.raises.is_empty() {
                return sem(format!("{what}.{}: oneway operations cannot raise", op.name));
            }
        }
        let mut raises = Vec::with_capacity(op.raises.len());
        for r in &op.raises {
            let Some((rscope, rentry)) = resolver.lookup(r, scope) else {
                return sem(format!("{what}.{}: unknown exception '{r}'", op.name));
            };
            if !matches!(rentry, RawEntry::Exception(_)) {
                return sem(format!("{what}.{}: '{r}' is not an exception", op.name));
            }
            raises.push(repo_id(&rscope, r.leaf()));
        }
        ops.push(OpMeta {
            name: op.name.clone(),
            oneway: op.oneway,
            ret,
            params,
            raises,
            declared_in: id.clone(),
        });
    }

    in_progress.pop();
    let meta =
        InterfaceMeta { id: id.clone(), name: name.to_owned(), bases: base_ids, ops };
    done.insert(id, meta.clone());
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn repo_ids_and_lookup() {
        let repo = compile(
            r#"module a { module b { interface X { void f(); }; };
               interface Y {}; };"#,
        )
        .unwrap();
        assert!(repo.interface("IDL:a/b/X:1.0").is_some());
        assert!(repo.interface("IDL:a/Y:1.0").is_some());
        assert!(repo.interface("IDL:X:1.0").is_none());
    }

    #[test]
    fn inheritance_flattens_and_is_a() {
        let repo = compile(
            r#"interface A { void fa(); };
               interface B : A { void fb(); };
               interface C : B { void fc(); };"#,
        )
        .unwrap();
        let c = repo.interface("IDL:C:1.0").unwrap();
        assert_eq!(c.ops.len(), 3);
        assert_eq!(c.op("fa").unwrap().declared_in, "IDL:A:1.0");
        assert!(repo.is_a("IDL:C:1.0", "IDL:A:1.0"));
        assert!(repo.is_a("IDL:C:1.0", "IDL:C:1.0"));
        assert!(!repo.is_a("IDL:A:1.0", "IDL:C:1.0"));
        assert!(!repo.is_a("IDL:nope:1.0", "IDL:A:1.0"));
    }

    #[test]
    fn diamond_inheritance_allowed() {
        let repo = compile(
            r#"interface Root { void f(); };
               interface L : Root {};
               interface R : Root {};
               interface D : L, R {};"#,
        )
        .unwrap();
        assert_eq!(repo.interface("IDL:D:1.0").unwrap().ops.len(), 1);
    }

    #[test]
    fn conflicting_inherited_ops_rejected() {
        let err = compile(
            r#"interface A { void f(); };
               interface B { void f(); };
               interface C : A, B {};"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("inherited from both"), "{err}");
    }

    #[test]
    fn inheritance_cycle_rejected() {
        // Forward references make a cycle expressible only through
        // mutual recursion; lookup is order-independent so this parses.
        let err = compile(
            r#"interface A : B {};
               interface B : A {};"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn attributes_become_accessors() {
        let repo = compile(
            "interface I { readonly attribute long size; attribute string name; };",
        )
        .unwrap();
        let i = repo.interface("IDL:I:1.0").unwrap();
        assert!(i.op("_get_size").is_some());
        assert!(i.op("_set_size").is_none());
        assert!(i.op("_get_name").is_some());
        let set = i.op("_set_name").unwrap();
        assert_eq!(set.params.len(), 1);
        assert_eq!(set.params[0].ty, ResolvedType::String);
    }

    #[test]
    fn oneway_constraints() {
        assert!(compile("interface I { oneway long f(); };").is_err());
        assert!(compile("interface I { oneway void f(out long x); };").is_err());
        assert!(
            compile("exception E {}; interface I { oneway void f() raises (E); };").is_err()
        );
        assert!(compile("interface I { oneway void f(in long x); };").is_ok());
    }

    #[test]
    fn typedefs_expand() {
        let repo = compile(
            r#"typedef sequence<octet> Blob;
               typedef Blob Blob2;
               interface I { void f(in Blob2 data); };"#,
        )
        .unwrap();
        let f = repo.interface("IDL:I:1.0").unwrap().op("f").unwrap();
        assert_eq!(
            f.params[0].ty,
            ResolvedType::Sequence(Box::new(ResolvedType::Octet))
        );
    }

    #[test]
    fn scoped_resolution_walks_outward() {
        let repo = compile(
            r#"struct Global { long x; };
               module m {
                 struct Inner { long y; };
                 interface I { void f(in Global g, in Inner i); };
               };"#,
        )
        .unwrap();
        let f = repo.interface("IDL:m/I:1.0").unwrap().op("f").unwrap();
        assert_eq!(f.params[0].ty, ResolvedType::Struct("IDL:Global:1.0".into()));
        assert_eq!(f.params[1].ty, ResolvedType::Struct("IDL:m/Inner:1.0".into()));
    }

    #[test]
    fn shadowing_prefers_inner_scope() {
        let repo = compile(
            r#"struct T { long outer; };
               module m {
                 struct T { long inner; };
                 interface I { void f(in T t); };
               };"#,
        )
        .unwrap();
        let f = repo.interface("IDL:m/I:1.0").unwrap().op("f").unwrap();
        assert_eq!(f.params[0].ty, ResolvedType::Struct("IDL:m/T:1.0".into()));
    }

    #[test]
    fn semantic_errors() {
        assert!(compile("interface I { void f(in Missing x); };").is_err());
        assert!(compile("struct S { long a; long a; };").is_err());
        assert!(compile("enum E { a, a };").is_err());
        assert!(compile("interface I { void f(in long x, in long x); };").is_err());
        assert!(compile("interface I {}; interface I {};").is_err());
        assert!(compile("exception E {}; interface I { void f(in E e); };").is_err());
        assert!(compile("eventtype Ev { long x; }; interface I { void f(in Ev e); };").is_err());
        assert!(compile("interface I { void f() raises (NotThere); };").is_err());
        assert!(compile("struct S { long x; }; interface I { void f() raises (S); };").is_err());
        assert!(compile("interface I : NotThere {};").is_err());
        assert!(compile("struct S {}; interface I : S {};").is_err());
    }

    #[test]
    fn object_references_resolve() {
        let repo = compile(
            r#"interface Display { void draw(); };
               interface App { void attach(in Display d); };"#,
        )
        .unwrap();
        let f = repo.interface("IDL:App:1.0").unwrap().op("attach").unwrap();
        assert_eq!(f.params[0].ty, ResolvedType::Object("IDL:Display:1.0".into()));
    }

    #[test]
    fn merge_repositories() {
        let mut a = compile("interface A {};").unwrap();
        let b = compile("interface B {};").unwrap();
        a.merge(b).unwrap();
        assert!(a.interface("IDL:A:1.0").is_some());
        assert!(a.interface("IDL:B:1.0").is_some());
        // identical duplicate is fine
        let b2 = compile("interface B {};").unwrap();
        a.merge(b2).unwrap();
        // conflicting duplicate is not
        let b3 = compile("interface B { void f(); };").unwrap();
        assert!(a.merge(b3).is_err());
    }

    #[test]
    fn events_resolved() {
        let repo = compile("module m { struct P { long x; }; eventtype Moved { P pos; }; };")
            .unwrap();
        let ev = repo.event("IDL:m/Moved:1.0").unwrap();
        assert_eq!(ev.fields[0].ty, ResolvedType::Struct("IDL:m/P:1.0".into()));
    }
}
