//! Tokenizer for the IDL subset.

/// Keywords recognized by the lexer.
///
/// `eventtype` is the CORBA-LC addition for declaring event kinds used by
/// publish/subscribe ports; everything else is standard CORBA 2.x IDL.
pub const KEYWORDS: &[&str] = &[
    "module", "interface", "struct", "enum", "typedef", "exception", "eventtype", "attribute",
    "readonly", "oneway", "in", "out", "inout", "raises", "void", "boolean", "octet", "char",
    "short", "long", "unsigned", "float", "double", "string", "sequence", "unsigned",
];

/// Kind of a token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier (not a keyword).
    Ident(String),
    /// Keyword (member of [`KEYWORDS`]).
    Keyword(&'static str),
    /// Integer literal (only used in enum/version contexts).
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `::`
    Scope,
    /// End of input.
    Eof,
}

/// A token plus its 1-based source line (for error messages).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number where the token starts.
    pub line: u32,
}

/// A lexical error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Explanation.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IDL lex error at line {}: {}", self.line, self.msg)
    }
}
impl std::error::Error for LexError {}

/// The tokenizer. Construct with [`Lexer::new`], then [`Lexer::tokenize`].
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    /// New lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    /// Tokenize the whole input (appends an [`TokenKind::Eof`] token).
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let line = self.line;
            let Some(c) = self.peek() else {
                out.push(Token { kind: TokenKind::Eof, line });
                return Ok(out);
            };
            let kind = match c {
                b'{' => self.take(TokenKind::LBrace),
                b'}' => self.take(TokenKind::RBrace),
                b'(' => self.take(TokenKind::LParen),
                b')' => self.take(TokenKind::RParen),
                b'<' => self.take(TokenKind::Lt),
                b'>' => self.take(TokenKind::Gt),
                b';' => self.take(TokenKind::Semi),
                b',' => self.take(TokenKind::Comma),
                b':' => {
                    self.pos += 1;
                    if self.peek() == Some(b':') {
                        self.pos += 1;
                        TokenKind::Scope
                    } else {
                        TokenKind::Colon
                    }
                }
                b'0'..=b'9' => self.number()?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.word(),
                other => {
                    return Err(LexError {
                        msg: format!("unexpected character '{}'", other as char),
                        line,
                    });
                }
            };
            out.push(Token { kind, line });
        }
    }

    fn take(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b' ' | b'\t' | b'\r') => self.pos += 1,
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    let start_line = self.line;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            None => {
                                return Err(LexError {
                                    msg: "unterminated block comment".into(),
                                    line: start_line,
                                });
                            }
                            Some(b'\n') => {
                                self.line += 1;
                                self.pos += 1;
                            }
                            Some(b'*') if self.src.get(self.pos + 1) == Some(&b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                        }
                    }
                }
                Some(b'#') => {
                    // Preprocessor-style lines (#include, #pragma) skipped.
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]);
        text.parse::<u64>()
            .map(TokenKind::Int)
            .map_err(|_| LexError { msg: format!("integer '{text}' out of range"), line: self.line })
    }

    fn word(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        if let Some(kw) = KEYWORDS.iter().find(|k| **k == text) {
            TokenKind::Keyword(kw)
        } else {
            TokenKind::Ident(text)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_interface() {
        let ks = kinds("interface Foo : Bar { oneway void f(in long x); };");
        assert_eq!(ks[0], TokenKind::Keyword("interface"));
        assert_eq!(ks[1], TokenKind::Ident("Foo".into()));
        assert_eq!(ks[2], TokenKind::Colon);
        assert!(ks.contains(&TokenKind::Keyword("oneway")));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let ks = kinds("// line\n/* block\nspanning */ #include <x.idl>\nmodule m {};");
        assert_eq!(ks[0], TokenKind::Keyword("module"));
    }

    #[test]
    fn scope_token() {
        let ks = kinds("a::b : c");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Scope,
                TokenKind::Ident("b".into()),
                TokenKind::Colon,
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = Lexer::new("module\n\nfoo").tokenize().unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn errors() {
        assert!(Lexer::new("@").tokenize().is_err());
        assert!(Lexer::new("/* unterminated").tokenize().is_err());
        assert!(Lexer::new("99999999999999999999999999").tokenize().is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
    }
}
