//! Abstract syntax tree for the IDL subset.

/// A type expression as written in source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeRef {
    /// `void` (operation return position only).
    Void,
    /// `boolean`.
    Boolean,
    /// `octet`.
    Octet,
    /// `char`.
    Char,
    /// `short` / `unsigned short`.
    Short { unsigned: bool },
    /// `long` / `unsigned long`.
    Long { unsigned: bool },
    /// `long long` / `unsigned long long`.
    LongLong { unsigned: bool },
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// `string`.
    String,
    /// `sequence<T>`.
    Sequence(Box<TypeRef>),
    /// A named (scoped) type, e.g. `Frame` or `player::Frame`.
    Named(ScopedName),
}

/// A possibly scoped name: `a::b::c` is `["a", "b", "c"]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ScopedName(pub Vec<String>);

impl ScopedName {
    /// The unqualified last segment (empty for the empty name).
    pub fn leaf(&self) -> &str {
        self.0.last().map_or("", String::as_str)
    }
}

impl std::fmt::Display for ScopedName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0.join("::"))
    }
}

/// Parameter passing mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParamMode {
    /// `in` — sent with the request.
    In,
    /// `out` — returned with the reply.
    Out,
    /// `inout` — both.
    InOut,
}

/// One operation parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Param {
    /// Passing mode.
    pub mode: ParamMode,
    /// Declared type.
    pub ty: TypeRef,
    /// Name.
    pub name: String,
}

/// An operation declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpDecl {
    /// `oneway` operations must return void and have only `in` params.
    pub oneway: bool,
    /// Return type.
    pub ret: TypeRef,
    /// Operation name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Names of exceptions this operation `raises`.
    pub raises: Vec<ScopedName>,
}

/// An attribute declaration (sugar for get/set operations).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttrDecl {
    /// `readonly` attributes generate only a getter.
    pub readonly: bool,
    /// Attribute type.
    pub ty: TypeRef,
    /// Attribute name.
    pub name: String,
}

/// An interface declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InterfaceDecl {
    /// Interface name.
    pub name: String,
    /// Base interfaces.
    pub bases: Vec<ScopedName>,
    /// Operations.
    pub ops: Vec<OpDecl>,
    /// Attributes.
    pub attrs: Vec<AttrDecl>,
}

/// A struct field or eventtype field.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Field {
    /// Field type.
    pub ty: TypeRef,
    /// Field name.
    pub name: String,
}

/// A struct declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StructDecl {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
}

/// An enum declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EnumDecl {
    /// Enum name.
    pub name: String,
    /// Enumerator names in declaration order.
    pub items: Vec<String>,
}

/// A typedef declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypedefDecl {
    /// Aliased type.
    pub ty: TypeRef,
    /// New name.
    pub name: String,
}

/// An exception declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExceptionDecl {
    /// Exception name.
    pub name: String,
    /// Exception members.
    pub fields: Vec<Field>,
}

/// An event type declaration (CORBA-LC publish/subscribe payload).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventDecl {
    /// Event type name.
    pub name: String,
    /// Payload fields.
    pub fields: Vec<Field>,
}

/// Any top-level (or module-level) definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Definition {
    /// `module name { … };`
    Module(ModuleDecl),
    /// `interface … ;`
    Interface(InterfaceDecl),
    /// `struct … ;`
    Struct(StructDecl),
    /// `enum … ;`
    Enum(EnumDecl),
    /// `typedef … ;`
    Typedef(TypedefDecl),
    /// `exception … ;`
    Exception(ExceptionDecl),
    /// `eventtype … ;`
    Event(EventDecl),
}

/// A module: a named scope of definitions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModuleDecl {
    /// Module name.
    pub name: String,
    /// Contained definitions.
    pub defs: Vec<Definition>,
}

/// A complete IDL compilation unit.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Spec {
    /// Top-level definitions.
    pub defs: Vec<Definition>,
}

impl Definition {
    /// The definition's unqualified name.
    pub fn name(&self) -> &str {
        match self {
            Definition::Module(d) => &d.name,
            Definition::Interface(d) => &d.name,
            Definition::Struct(d) => &d.name,
            Definition::Enum(d) => &d.name,
            Definition::Typedef(d) => &d.name,
            Definition::Exception(d) => &d.name,
            Definition::Event(d) => &d.name,
        }
    }
}
