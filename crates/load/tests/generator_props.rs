//! Property tests for the open-loop arrival generator: a stream is a
//! pure function of its configuration (reproducible), strictly monotone
//! in virtual time, dense in its indices, and its driver-split slices
//! partition it exactly — no arrival lost, duplicated, or reordered
//! across shape × seed × rate.

use lc_des::SimTime;
use lc_load::{Arrival, ArrivalShape, ArrivalStream, StreamConfig, ZipfKeys};
use lc_prop::check;

/// One of the three shapes, with parameters drawn from the generator.
fn gen_shape(g: &mut lc_prop::Gen, horizon: SimTime) -> ArrivalShape {
    match g.gen_range(0..3u64) {
        0 => ArrivalShape::Steady,
        1 => ArrivalShape::Diurnal {
            period: SimTime::from_millis(g.gen_range(20..200u64)),
            depth: g.gen_f64(),
        },
        _ => ArrivalShape::Flash {
            at: SimTime::from_nanos(g.gen_range(0..horizon.as_nanos().max(1))),
            width: SimTime::from_millis(g.gen_range(10..100u64)),
            magnitude: 1.0 + g.gen_f64() * 4.0,
        },
    }
}

fn gen_config(g: &mut lc_prop::Gen) -> StreamConfig {
    let horizon = SimTime::from_millis(g.gen_range(50..400u64));
    StreamConfig {
        shape: gen_shape(g, horizon),
        rate_per_sec: 200.0 + g.gen_f64() * 9_800.0,
        seed: g.next_u64(),
        horizon,
        users: 1 + g.gen_range(0..1_000_000u64),
        keys: ZipfKeys::new(1 + g.gen_range(0..256u64) as usize, g.gen_f64() * 2.0),
    }
}

#[test]
fn stream_is_reproducible_and_monotone() {
    check("arrival_repro_monotone", |g| {
        let cfg = gen_config(g);
        let a: Vec<Arrival> = ArrivalStream::new(cfg.clone()).collect();
        let b: Vec<Arrival> = ArrivalStream::new(cfg.clone()).collect();
        // Reproducible: the stream is a pure function of its config.
        assert_eq!(a, b, "same config produced different streams");

        let mut prev: Option<SimTime> = None;
        for (i, arr) in a.iter().enumerate() {
            // Strictly monotone virtual time, bounded by the horizon.
            if let Some(p) = prev {
                assert!(
                    arr.at > p,
                    "arrival {i} at {:?} not after its predecessor at {p:?}",
                    arr.at
                );
            }
            prev = Some(arr.at);
            assert!(arr.at < cfg.horizon, "arrival {i} at {:?} past horizon", arr.at);
            // Dense indices: position i carries index i.
            assert_eq!(arr.index, i as u64, "index gap at position {i}");
            // Draws stay inside their domains.
            assert!(arr.user < cfg.users, "user {} out of range", arr.user);
            assert!(arr.key < cfg.keys.len() as u64, "key {} out of range", arr.key);
        }
    });
}

#[test]
fn split_slices_partition_the_stream() {
    check("arrival_split_conservation", |g| {
        let cfg = gen_config(g);
        let full: Vec<Arrival> = ArrivalStream::new(cfg.clone()).collect();
        let count = 1 + g.gen_range(0..8u64) as usize;

        // Conservation: merging the slices by index recovers the full
        // stream exactly — every arrival lands in exactly one slice.
        let mut merged: Vec<Arrival> = (0..count)
            .flat_map(|i| ArrivalStream::split(cfg.clone(), i, count))
            .collect();
        merged.sort_by_key(|a| a.index);
        assert_eq!(merged, full, "split slices do not partition the stream");

        // Each slice sees exactly its residue class.
        for i in 0..count {
            for a in ArrivalStream::split(cfg.clone(), i, count) {
                assert_eq!(
                    a.index % count as u64,
                    i as u64,
                    "slice {i}/{count} leaked index {}",
                    a.index
                );
            }
        }
    });
}

#[test]
fn rate_tracks_intensity_integral() {
    check("arrival_rate_tracks_integral", |g| {
        // With a fat horizon and a steady shape, the emitted count
        // concentrates around rate × horizon (law of large numbers; the
        // 25% tolerance is ~10σ at the smallest rate drawn here).
        let rate = 2_000.0 + g.gen_f64() * 8_000.0;
        let horizon = SimTime::from_secs(1);
        let cfg = StreamConfig {
            shape: ArrivalShape::Steady,
            rate_per_sec: rate,
            seed: g.next_u64(),
            horizon,
            users: 100,
            keys: ZipfKeys::new(16, 1.0),
        };
        let n = ArrivalStream::new(cfg).count() as f64;
        let expect = rate * horizon.as_secs_f64();
        assert!(
            (n - expect).abs() < expect * 0.25,
            "steady stream emitted {n}, expected ~{expect}"
        );
    });
}
