//! # lc-load — open-loop heavy-traffic workload engine
//!
//! Generates *open-loop* request arrivals: the offered load is a
//! property of the arrival process, not of the system's response time,
//! so an overloaded service keeps receiving traffic at the configured
//! rate instead of being throttled by its own latency (the classic
//! closed-loop measurement bug — see "Open Versus Closed: A Cautionary
//! Tale", NSDI'06).
//!
//! The engine is split along the DES boundary:
//!
//! * [`arrival`] — pure, seeded arrival-stream generation. A
//!   [`arrival::ArrivalStream`] is an iterator of [`arrival::Arrival`]s
//!   fully determined by `(shape, rate, seed, horizon)`: Lewis–Shedler
//!   thinning over a confined RNG stream yields Poisson-like arrivals
//!   whose intensity follows the configured [`arrival::ArrivalShape`]
//!   (steady, diurnal wave, flash crowd). Every arrival carries a
//!   zipf-skewed key for hot-spot routing studies.
//! * [`driver`] — a [`lc_des::Actor`] that converts pre-scheduled
//!   arrivals into `NodeCmd::Invoke` traffic against a front-end node,
//!   periodically re-queries the registry, and spreads keys over the
//!   replica set the query returns.
//! * [`stats`] — percentile/knee helpers for capacity reports.
//!
//! Determinism contract: two streams built from equal configs yield
//! byte-equal arrival sequences; splitting a stream over `k` drivers by
//! `index % k` conserves every arrival exactly once (property-tested in
//! `tests/generator_props.rs`).

pub mod arrival;
pub mod driver;
pub mod stats;

pub use arrival::{Arrival, ArrivalShape, ArrivalStream, StreamConfig, ZipfKeys};
pub use driver::{DriverArrival, DriverConfig, DriverStats, LoadDriver, QueryTick};
pub use stats::{knee, percentile};
