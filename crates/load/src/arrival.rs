//! Seeded open-loop arrival processes.
//!
//! A non-homogeneous Poisson process with intensity `λ(t)` is sampled
//! by Lewis–Shedler thinning: candidate gaps are drawn from the
//! homogeneous process at `λmax` via inverse-CDF, then each candidate
//! is kept with probability `λ(t)/λmax`. All randomness comes from one
//! confined [`SimRng`] stream and the *draw order is fixed per
//! candidate* (gap, accept, user, key), so the emitted sequence is a
//! pure function of the configuration — rejected candidates consume
//! the same number of draws as accepted ones.
//!
//! This module is the only place in the crate that seeds an RNG
//! (enforced by lc-lint rule D4).

use lc_des::{SimRng, SimTime};

/// Shape of the arrival intensity `λ(t)` over the run horizon.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalShape {
    /// Constant intensity: `λ(t) = rate`.
    Steady,
    /// Diurnal wave: a triangle wave dips the intensity by up to
    /// `depth` (0..=1) per `period` — `λ(t) = rate·(1 − depth·tri(t))`
    /// where `tri` is 1 at period boundaries and 0 mid-period, so each
    /// period peaks at `rate` in the middle ("midday") and bottoms out
    /// at `rate·(1−depth)` at the edges ("night"). A triangle instead
    /// of a sinusoid keeps the arithmetic exactly portable.
    Diurnal {
        /// Wave period.
        period: SimTime,
        /// Fractional dip at period boundaries, clamped to [0, 1].
        depth: f64,
    },
    /// Flash crowd: intensity jumps to `rate·magnitude` inside the
    /// window `[at, at+width)` and is `rate` elsewhere.
    Flash {
        /// Window start.
        at: SimTime,
        /// Window length.
        width: SimTime,
        /// Intensity multiplier inside the window (≥ 1).
        magnitude: f64,
    },
}

impl ArrivalShape {
    /// `λ(t)` in arrivals/second for base `rate`.
    fn lambda(&self, rate: f64, t: SimTime) -> f64 {
        match *self {
            ArrivalShape::Steady => rate,
            ArrivalShape::Diurnal { period, depth } => {
                let depth = depth.clamp(0.0, 1.0);
                let p = period.as_nanos().max(1);
                let phase = (t.as_nanos() % p) as f64 / p as f64;
                let tri = (2.0 * phase - 1.0).abs();
                rate * (1.0 - depth * tri)
            }
            ArrivalShape::Flash { at, width, magnitude } => {
                if t >= at && t < at + width {
                    rate * magnitude.max(1.0)
                } else {
                    rate
                }
            }
        }
    }

    /// Upper bound on `λ(t)` (the thinning envelope).
    fn lambda_max(&self, rate: f64) -> f64 {
        match *self {
            ArrivalShape::Steady | ArrivalShape::Diurnal { .. } => rate,
            ArrivalShape::Flash { magnitude, .. } => rate * magnitude.max(1.0),
        }
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalShape::Steady => "steady",
            ArrivalShape::Diurnal { .. } => "diurnal",
            ArrivalShape::Flash { .. } => "flash",
        }
    }
}

/// Zipf-skewed key sampler: key `i` (0-based rank) has weight
/// `1/(i+1)^s`, drawn by inverse-CDF over the normalized harmonic
/// cumulative table. `s = 0` degenerates to uniform.
#[derive(Clone, Debug)]
pub struct ZipfKeys {
    cdf: Vec<f64>,
}

impl ZipfKeys {
    /// A sampler over `n ≥ 1` keys with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> ZipfKeys {
        let n = n.max(1);
        let s = s.max(0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfKeys { cdf }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when only one key exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw one key rank in `0..len()`.
    pub fn draw(&self, rng: &mut SimRng) -> u64 {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1) as u64
    }
}

/// One open-loop arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival instant (strictly increasing within a stream).
    pub at: SimTime,
    /// Position in the stream, 0-based (dense: no gaps, no repeats).
    pub index: u64,
    /// Simulated user id in `0..users`.
    pub user: u64,
    /// Zipf-skewed key rank (hot-spot routing).
    pub key: u64,
}

/// Full configuration of one arrival stream.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Intensity shape.
    pub shape: ArrivalShape,
    /// Base intensity in arrivals/second (must be finite and > 0).
    pub rate_per_sec: f64,
    /// Stream seed (confined: the stream owns its RNG).
    pub seed: u64,
    /// Arrivals at or past the horizon are never emitted.
    pub horizon: SimTime,
    /// Simulated user population (ids drawn uniformly).
    pub users: u64,
    /// Key skew.
    pub keys: ZipfKeys,
}

/// Iterator of [`Arrival`]s, fully determined by its [`StreamConfig`].
#[derive(Clone, Debug)]
pub struct ArrivalStream {
    cfg: StreamConfig,
    rng: SimRng,
    t: SimTime,
    index: u64,
    done: bool,
}

impl ArrivalStream {
    /// A stream positioned at virtual time zero.
    pub fn new(cfg: StreamConfig) -> ArrivalStream {
        assert!(
            cfg.rate_per_sec.is_finite() && cfg.rate_per_sec > 0.0,
            "arrival rate must be finite and positive"
        );
        let rng = SimRng::seed_from_u64(cfg.seed);
        ArrivalStream { cfg, rng, t: SimTime::ZERO, index: 0, done: false }
    }

    /// The `index % count == index_of_this_driver` slice of the stream:
    /// how one logical workload is fanned over `count` front-end
    /// drivers. The slices of a config partition the full stream —
    /// every arrival lands in exactly one slice (property-tested).
    pub fn split(cfg: StreamConfig, index: usize, count: usize) -> impl Iterator<Item = Arrival> {
        assert!(count > 0 && index < count, "split index out of range");
        let count = count as u64;
        let index = index as u64;
        ArrivalStream::new(cfg).filter(move |a| a.index % count == index)
    }
}

impl Iterator for ArrivalStream {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        if self.done {
            return None;
        }
        let lmax = self.cfg.shape.lambda_max(self.cfg.rate_per_sec);
        loop {
            // Inverse-CDF exponential gap at the envelope rate; the 1 ns
            // floor keeps arrival times strictly increasing.
            let u = self.rng.gen_f64();
            let gap_s = -(1.0 - u).ln() / lmax;
            let gap = SimTime::from_secs_f64(gap_s).max(SimTime::from_nanos(1));
            self.t += gap;
            if self.t >= self.cfg.horizon {
                self.done = true;
                return None;
            }
            // Fixed draw order per candidate — see module docs.
            let accept = self.rng.gen_f64() * lmax < self.cfg.shape.lambda(self.cfg.rate_per_sec, self.t);
            let user = self.rng.gen_range(0..self.cfg.users.max(1));
            let key = self.cfg.keys.draw(&mut self.rng);
            if accept {
                let a = Arrival { at: self.t, index: self.index, user, key };
                self.index += 1;
                return Some(a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shape: ArrivalShape) -> StreamConfig {
        StreamConfig {
            shape,
            rate_per_sec: 5_000.0,
            seed: 7,
            horizon: SimTime::from_millis(500),
            users: 1_000,
            keys: ZipfKeys::new(64, 1.0),
        }
    }

    #[test]
    fn steady_rate_close_to_nominal() {
        let n = ArrivalStream::new(cfg(ArrivalShape::Steady)).count() as f64;
        let expect = 5_000.0 * 0.5;
        assert!((n - expect).abs() < expect * 0.1, "got {n}, expected ~{expect}");
    }

    #[test]
    fn flash_window_concentrates_arrivals() {
        let shape = ArrivalShape::Flash {
            at: SimTime::from_millis(200),
            width: SimTime::from_millis(100),
            magnitude: 4.0,
        };
        let arrivals: Vec<_> = ArrivalStream::new(cfg(shape)).collect();
        let inside = arrivals
            .iter()
            .filter(|a| a.at >= SimTime::from_millis(200) && a.at < SimTime::from_millis(300))
            .count() as f64;
        let before = arrivals.iter().filter(|a| a.at < SimTime::from_millis(100)).count() as f64;
        assert!(inside > before * 2.5, "flash window {inside} vs baseline {before}");
    }

    #[test]
    fn zipf_rank_zero_is_hottest() {
        let mut rng = SimRng::seed_from_u64(3);
        let keys = ZipfKeys::new(16, 1.2);
        let mut counts = [0u64; 16];
        for _ in 0..10_000 {
            counts[keys.draw(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[8] * 3, "skew missing: {counts:?}");
    }
}
