//! The load-driver actor: open-loop arrivals in, `NodeCmd` traffic out.
//!
//! A [`LoadDriver`] models one front-end ingress point. The harness
//! pre-schedules each [`crate::Arrival`] of its stream slice as a
//! [`DriverArrival`] message; the driver turns every arrival into one
//! `NodeCmd::Invoke` against its front-end node — *without waiting for
//! previous replies* (open loop). Per-arrival keys route over the
//! replica set learned from periodic registry queries, so a hot
//! component that gets replicated under overload automatically spreads
//! subsequent keys across the new instances.

use lc_core::{ComponentQuery, NodeCmd, QueryResult};
use lc_des::{Actor, ActorId, AnyMsg, AnyMsgExt, Ctx, SimTime};
use lc_orb::{ObjectRef, OrbError, Value};
use std::cell::RefCell;
use std::rc::Rc;

use crate::arrival::Arrival;

/// One pre-scheduled arrival, addressed to a driver actor.
pub struct DriverArrival(pub Arrival);

/// Periodic replica-discovery tick (self-rearming once the harness
/// schedules the first one).
pub struct QueryTick;

/// Static configuration of one driver.
#[derive(Clone)]
pub struct DriverConfig {
    /// The front-end node actor receiving this driver's commands.
    pub node: ActorId,
    /// Component name re-queried for replica discovery.
    pub component: String,
    /// Operation invoked per arrival.
    pub op: String,
    /// Arguments passed with every invocation.
    pub args: Vec<Value>,
    /// Target used until the first query returns running instances.
    pub initial_target: ObjectRef,
    /// Replica re-query period; `None` disables discovery (all traffic
    /// stays on `initial_target`).
    pub requery: Option<SimTime>,
}

type Call = (SimTime, lc_core::InvokeSink);

/// The driver actor. After the run, the harness inspects it through
/// [`lc_des::Sim::actor_as`] and calls [`LoadDriver::stats`].
pub struct LoadDriver {
    cfg: DriverConfig,
    replicas: Vec<ObjectRef>,
    pending_query: Option<(SimTime, lc_core::QuerySink)>,
    calls: Vec<Call>,
    first_offer_ms: Vec<f64>,
    queries_shed: u64,
    queries_done: u64,
}

/// Everything a capacity experiment needs from one driver, harvested
/// after the run.
#[derive(Clone, Debug, Default)]
pub struct DriverStats {
    /// Invocations sent.
    pub sent: u64,
    /// Successful replies.
    pub ok: u64,
    /// Replies refused by admission control.
    pub overload: u64,
    /// Client-side deadline expiries.
    pub timeout: u64,
    /// Any other error reply.
    pub other_err: u64,
    /// Calls with no reply at harvest time.
    pub unresolved: u64,
    /// Reply latency of every successful call, milliseconds, send order.
    pub ok_latency_ms: Vec<f64>,
    /// First-offer latency of every finished discovery query, ms.
    pub first_offer_ms: Vec<f64>,
    /// Discovery queries shed by registry admission control.
    pub queries_shed: u64,
    /// Replica targets known at harvest.
    pub replicas: usize,
}

impl LoadDriver {
    /// A driver with no traffic sent yet.
    pub fn new(cfg: DriverConfig) -> LoadDriver {
        LoadDriver {
            cfg,
            replicas: Vec::new(),
            pending_query: None,
            calls: Vec::new(),
            first_offer_ms: Vec::new(),
            queries_shed: 0,
            queries_done: 0,
        }
    }

    fn on_arrival(&mut self, ctx: &mut Ctx<'_>, a: Arrival) {
        let target = if self.replicas.is_empty() {
            self.cfg.initial_target.clone()
        } else {
            self.replicas[(a.key % self.replicas.len() as u64) as usize].clone()
        };
        let sink: lc_core::InvokeSink = Rc::new(RefCell::new(Vec::new()));
        self.calls.push((ctx.now(), sink.clone()));
        ctx.send_in(
            SimTime::ZERO,
            self.cfg.node,
            NodeCmd::Invoke {
                target,
                op: self.cfg.op.clone(),
                args: self.cfg.args.clone(),
                oneway: false,
                sink: Some(sink),
            },
        );
    }

    /// Fold the previous discovery query's outcome into the replica
    /// set. Offers are harvested even from an unfinished query — the
    /// registry syncs collect sinks as offers stream in.
    fn harvest_query(&mut self) {
        let Some((issued, sink)) = self.pending_query.take() else { return };
        let r: &QueryResult = &sink.borrow();
        if r.shed {
            self.queries_shed += 1;
            return;
        }
        if r.done {
            self.queries_done += 1;
        }
        if let Some(t) = r.first_offer_at {
            self.first_offer_ms.push(t.saturating_sub(issued).as_secs_f64() * 1e3);
        }
        let mut replicas: Vec<ObjectRef> = r
            .offers
            .iter()
            .filter_map(|o| o.running_instance.clone())
            .collect();
        replicas.sort_by_key(|a| (a.key.host, a.key.oid));
        replicas.dedup_by(|a, b| a.key.host == b.key.host && a.key.oid == b.key.oid);
        if !replicas.is_empty() {
            self.replicas = replicas;
        }
    }

    fn on_query_tick(&mut self, ctx: &mut Ctx<'_>) {
        self.harvest_query();
        let sink: lc_core::QuerySink = Rc::new(RefCell::new(QueryResult::default()));
        self.pending_query = Some((ctx.now(), sink.clone()));
        let query = ComponentQuery {
            name: Some(self.cfg.component.clone()),
            ..ComponentQuery::default()
        };
        ctx.send_in(
            SimTime::ZERO,
            self.cfg.node,
            NodeCmd::Query { query, sink, first_wins: false },
        );
        if let Some(period) = self.cfg.requery {
            ctx.timer_in(period, QueryTick);
        }
    }

    /// Harvest the end-of-run statistics.
    pub fn stats(&mut self) -> DriverStats {
        self.harvest_query();
        let mut s = DriverStats {
            sent: self.calls.len() as u64,
            first_offer_ms: self.first_offer_ms.clone(),
            queries_shed: self.queries_shed,
            replicas: self.replicas.len(),
            ..DriverStats::default()
        };
        for (sent_at, sink) in &self.calls {
            let replies = sink.borrow();
            match replies.first() {
                None => s.unresolved += 1,
                Some((at, Ok(_))) => {
                    s.ok += 1;
                    s.ok_latency_ms.push(at.saturating_sub(*sent_at).as_secs_f64() * 1e3);
                }
                Some((_, Err(OrbError::Overload))) => s.overload += 1,
                Some((_, Err(OrbError::Timeout))) => s.timeout += 1,
                Some((_, Err(_))) => s.other_err += 1,
            }
        }
        s
    }

    /// Replica targets currently routed to (inspection).
    pub fn replicas(&self) -> &[ObjectRef] {
        &self.replicas
    }

    /// Finished discovery queries so far.
    pub fn queries_done(&self) -> u64 {
        self.queries_done
    }
}

impl Actor for LoadDriver {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMsg) {
        let msg = match msg.downcast_msg::<DriverArrival>() {
            Ok(DriverArrival(a)) => return self.on_arrival(ctx, a),
            Err(m) => m,
        };
        if msg.downcast_msg::<QueryTick>().is_ok() {
            self.on_query_tick(ctx);
        }
    }
}
