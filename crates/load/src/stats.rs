//! Small numeric helpers for capacity reports.

/// Nearest-rank percentile of an *unsorted* sample set (the slice is
/// copied and sorted internally). `p` in `[0, 100]`. Returns 0.0 for an
/// empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.saturating_sub(1).min(v.len() - 1)]
}

/// The capacity knee of a goodput-vs-offered-load curve: the point of
/// maximum goodput (first such point on ties, so the answer is
/// deterministic). Returns `(offered, goodput)`; `(0, 0)` for an empty
/// curve.
pub fn knee(curve: &[(f64, f64)]) -> (f64, f64) {
    let mut best = (0.0, 0.0);
    for &(offered, goodput) in curve {
        if goodput > best.1 {
            best = (offered, goodput);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn knee_picks_first_max() {
        let curve = [(1.0, 10.0), (2.0, 20.0), (3.0, 20.0), (4.0, 5.0)];
        assert_eq!(knee(&curve), (2.0, 20.0));
        assert_eq!(knee(&[]), (0.0, 0.0));
    }
}
