//! # lc-cscw — CSCW components for CORBA-LC (Figure 2 of the paper)
//!
//! §3.1: "Collaborative work applications allow a group of users to share
//! and manipulate a set of data (usually multi-media) in a synchronous or
//! asynchronous way regardless of user location." The paper motivates
//! CORBA-LC with synchronous CSCW — shared whiteboards, video, thin PDA
//! clients — and Figure 2 shows the component shape: an Application
//! manages GUI-part components, "each GUI component is in charge of a
//! portion of the window", and every GUI part *uses* the local `Display`
//! component "providing painting functions". GUI parts can be local or
//! remote, so "all components required by the application can be remote,
//! thus allowing the use of thin clients such as PDAs".
//!
//! This crate provides those components as real CORBA-LC packages:
//!
//! * [`DisplayServant`] — the host-bound display (mobility **fixed**: you
//!   cannot ship a user's screen elsewhere),
//! * [`GuiPartServant`] — a portion of the shared window; draws strokes
//!   through its `display` uses-port and records delivery latency,
//! * [`WhiteboardAppServant`] — the application-as-component: emits
//!   `Stroke` events that fan out to every participant's GUI part,
//! * [`VideoDecoderServant`] — the paper's §2.4.3 example ("a component
//!   decoding a MPEG video stream would work much faster if it is
//!   installed locally"): consumes encoded chunks, burns CPU, paints
//!   decoded frames to a display.

use lc_core::behavior::BehaviorRegistry;
use lc_core::AssemblyDescriptor;
use lc_orb::{Invocation, ObjectRef, OrbError, Servant, Value};
use lc_pkg::{
    ComponentDescriptor, Mobility, Package, Platform, QosSpec, SigningKey, TrustStore, Version,
};
use std::rc::Rc;

/// The CSCW IDL (Fig. 2 vocabulary).
pub const CSCW_IDL: &str = r#"
    module cscw {
      struct Rect { long x; long y; long w; long h; };
      interface Display {
        void draw(in Rect area, in sequence<octet> pixels);
        unsigned long long pixels_drawn();
      };
      interface GuiPart {
        void assign(in Rect area);
      };
      interface Board {
        void user_stroke(in long x0, in long y0, in long x1, in long y1);
      };
      interface VideoSink {
        oneway void push_chunk(in sequence<octet> encoded);
        unsigned long long frames();
      };
      eventtype Stroke { long x0; long y0; long x1; long y1; unsigned long long sent_ns; };
    };
"#;

/// Compile the CSCW IDL.
pub fn cscw_idl() -> lc_idl::Repository {
    match lc_idl::compile(CSCW_IDL) {
        Ok(repo) => repo,
        Err(e) => panic!("cscw IDL must compile: {e:?}"),
    }
}

/// Build a `cscw::Rect` value.
pub fn rect(x: i32, y: i32, w: i32, h: i32) -> Value {
    Value::Struct {
        id: "IDL:cscw/Rect:1.0".into(),
        fields: vec![Value::Long(x), Value::Long(y), Value::Long(w), Value::Long(h)],
    }
}

// ===================== servants =====================================

/// The host's display: paints pixels, costs CPU proportional to area.
pub struct DisplayServant {
    /// Total pixels (bytes) painted.
    pub pixels_drawn: u64,
    /// Draw calls served.
    pub draws: u64,
    /// CPU cost per KiB painted (reference CPU).
    pub cost_per_kib: lc_des::SimTime,
}

impl Default for DisplayServant {
    fn default() -> Self {
        DisplayServant {
            pixels_drawn: 0,
            draws: 0,
            cost_per_kib: lc_des::SimTime::from_micros(50),
        }
    }
}

impl Servant for DisplayServant {
    fn interface_id(&self) -> &str {
        "IDL:cscw/Display:1.0"
    }
    fn dispatch(&mut self, inv: &mut Invocation<'_>) -> Result<(), OrbError> {
        match inv.op {
            "draw" => {
                let bytes = match &inv.args[1] {
                    Value::Sequence(px) => px.len() as u64,
                    _ => 0,
                };
                self.pixels_drawn += bytes;
                self.draws += 1;
                inv.set_cpu_cost(self.cost_per_kib.mul_f64(bytes as f64 / 1024.0));
                Ok(())
            }
            "pixels_drawn" => {
                inv.set_ret(Value::ULongLong(self.pixels_drawn));
                Ok(())
            }
            "_get_state" => {
                inv.set_ret(Value::ULongLong(self.pixels_drawn));
                Ok(())
            }
            "_set_state" => {
                if let Value::ULongLong(v) = inv.args[0] {
                    self.pixels_drawn = v;
                }
                Ok(())
            }
            op => Err(OrbError::BadOperation(op.to_owned())),
        }
    }
}

/// One participant's view: a portion of the shared window.
pub struct GuiPartServant {
    /// Connected display provider.
    pub display: Option<ObjectRef>,
    /// Assigned window area (x, y, w, h).
    pub area: (i32, i32, i32, i32),
    /// Strokes received through the event channel.
    pub strokes_seen: u64,
    /// Stroke delivery latencies in milliseconds (emit → delivery).
    pub stroke_latency_ms: Vec<f64>,
}

impl Default for GuiPartServant {
    fn default() -> Self {
        GuiPartServant {
            display: None,
            area: (0, 0, 640, 480),
            strokes_seen: 0,
            stroke_latency_ms: Vec::new(),
        }
    }
}

impl Servant for GuiPartServant {
    fn interface_id(&self) -> &str {
        "IDL:cscw/GuiPart:1.0"
    }
    fn dispatch(&mut self, inv: &mut Invocation<'_>) -> Result<(), OrbError> {
        match inv.op {
            "assign" => {
                if let Value::Struct { fields, .. } = &inv.args[0] {
                    self.area = (
                        fields[0].as_long().unwrap_or(0),
                        fields[1].as_long().unwrap_or(0),
                        fields[2].as_long().unwrap_or(0),
                        fields[3].as_long().unwrap_or(0),
                    );
                }
                Ok(())
            }
            "_connect_display" => {
                self.display = inv.args[0].as_objref().cloned();
                Ok(())
            }
            "_push_strokes" => {
                self.strokes_seen += 1;
                if let Value::Struct { fields, .. } = &inv.args[0] {
                    if let Some(sent_ns) = fields.get(4).and_then(Value::as_u64) {
                        let lat_ns = inv.now.as_nanos().saturating_sub(sent_ns);
                        self.stroke_latency_ms.push(lat_ns as f64 / 1e6);
                    }
                    // Repaint the stroke's bounding box through the
                    // display port (64 bytes of pixels per stroke).
                    if let Some(display) = &self.display {
                        inv.call_oneway(
                            display.clone(),
                            "draw",
                            vec![rect(0, 0, 8, 8), Value::blob(&[0u8; 64])],
                        );
                    }
                }
                Ok(())
            }
            "_reply" => Ok(()),
            "_get_state" => {
                inv.set_ret(Value::ULongLong(self.strokes_seen));
                Ok(())
            }
            "_set_state" => {
                if let Value::ULongLong(v) = inv.args[0] {
                    self.strokes_seen = v;
                }
                Ok(())
            }
            op => Err(OrbError::BadOperation(op.to_owned())),
        }
    }
}

/// The whiteboard application component (the assembly bootstrap).
#[derive(Default)]
pub struct WhiteboardAppServant {
    /// Strokes drawn by the local user.
    pub strokes_sent: u64,
}

impl Servant for WhiteboardAppServant {
    fn interface_id(&self) -> &str {
        "IDL:cscw/Board:1.0"
    }
    fn dispatch(&mut self, inv: &mut Invocation<'_>) -> Result<(), OrbError> {
        match inv.op {
            "user_stroke" => {
                self.strokes_sent += 1;
                let mut fields: Vec<Value> = inv.args.to_vec();
                fields.push(Value::ULongLong(inv.now.as_nanos()));
                inv.emit(
                    "strokes",
                    Value::Struct { id: "IDL:cscw/Stroke:1.0".into(), fields },
                );
                Ok(())
            }
            "_get_state" => {
                inv.set_ret(Value::ULongLong(self.strokes_sent));
                Ok(())
            }
            "_set_state" => {
                if let Value::ULongLong(v) = inv.args[0] {
                    self.strokes_sent = v;
                }
                Ok(())
            }
            op => Err(OrbError::BadOperation(op.to_owned())),
        }
    }
}

/// The video decoder of the paper's migration example.
pub struct VideoDecoderServant {
    /// Connected display.
    pub display: Option<ObjectRef>,
    /// Frames decoded.
    pub frames: u64,
    /// CPU cost to decode one KiB of encoded input.
    pub decode_cost_per_kib: lc_des::SimTime,
    /// Decoded frames are this many times larger than the encoded chunk
    /// (painting cost scales with the *decoded* size).
    pub expansion: usize,
}

impl Default for VideoDecoderServant {
    fn default() -> Self {
        VideoDecoderServant {
            display: None,
            frames: 0,
            decode_cost_per_kib: lc_des::SimTime::from_micros(100),
            expansion: 8,
        }
    }
}

impl Servant for VideoDecoderServant {
    fn interface_id(&self) -> &str {
        "IDL:cscw/VideoSink:1.0"
    }
    fn dispatch(&mut self, inv: &mut Invocation<'_>) -> Result<(), OrbError> {
        match inv.op {
            "push_chunk" => {
                let encoded = match &inv.args[0] {
                    Value::Sequence(b) => b.len(),
                    _ => 0,
                };
                self.frames += 1;
                inv.set_cpu_cost(self.decode_cost_per_kib.mul_f64(encoded as f64 / 1024.0));
                if let Some(display) = &self.display {
                    // Decoded pixels: expansion × encoded size, drawn
                    // through the display port.
                    let decoded = (encoded * self.expansion).min(16 * 1024);
                    inv.call_oneway(
                        display.clone(),
                        "draw",
                        vec![rect(0, 0, 320, 200), Value::blob(&vec![0u8; decoded])],
                    );
                }
                Ok(())
            }
            "frames" => {
                inv.set_ret(Value::ULongLong(self.frames));
                Ok(())
            }
            "_connect_display" => {
                self.display = inv.args[0].as_objref().cloned();
                Ok(())
            }
            "_reply" => Ok(()),
            "_get_state" => {
                inv.set_ret(Value::ULongLong(self.frames));
                Ok(())
            }
            "_set_state" => {
                if let Value::ULongLong(v) = inv.args[0] {
                    self.frames = v;
                }
                Ok(())
            }
            op => Err(OrbError::BadOperation(op.to_owned())),
        }
    }
}

// ===================== packaging ====================================

/// CSCW vendor key.
pub fn cscw_key() -> SigningKey {
    SigningKey::new("cscw-vendor", b"cscw-secret")
}

/// Trust store accepting the CSCW vendor.
pub fn cscw_trust() -> TrustStore {
    let mut t = TrustStore::new();
    t.trust("cscw-vendor", b"cscw-secret");
    t
}

/// Register all CSCW behaviours.
pub fn register_cscw_behaviors(reg: &BehaviorRegistry) {
    reg.register("cscw_display", || Box::<DisplayServant>::default());
    reg.register("cscw_gui", || Box::<GuiPartServant>::default());
    reg.register("cscw_board", || Box::<WhiteboardAppServant>::default());
    reg.register("cscw_video", || Box::<VideoDecoderServant>::default());
}

fn seal(mut pkg: Package) -> Rc<Vec<u8>> {
    pkg.seal(&cscw_key());
    Rc::new(pkg.to_bytes())
}

/// Package: the Display (host-bound → mobility fixed).
pub fn display_package() -> Rc<Vec<u8>> {
    let mut desc = ComponentDescriptor::new("CscwDisplay", Version::new(1, 0), "cscw-vendor")
        .provides("graphics", "IDL:cscw/Display:1.0");
    desc.mobility = Mobility::Fixed;
    desc.qos = QosSpec { cpu_min: 0.02, cpu_max: 0.3, memory: 1 << 20, bandwidth_min: 0.0 };
    seal(
        Package::new(desc)
            .with_idl("cscw.idl", CSCW_IDL)
            .with_binary(Platform::reference(), "cscw_display", &[0xD1; 8 * 1024])
            .with_binary(Platform::pda(), "cscw_display", &[0xD2; 2 * 1024]),
    )
}

/// Package: the GUI part (mobile; uses Display; consumes Stroke).
pub fn gui_package() -> Rc<Vec<u8>> {
    let mut desc = ComponentDescriptor::new("CscwGuiPart", Version::new(1, 0), "cscw-vendor")
        .provides("widget", "IDL:cscw/GuiPart:1.0")
        .uses("display", "IDL:cscw/Display:1.0")
        .consumes("strokes", "IDL:cscw/Stroke:1.0");
    desc.qos = QosSpec { cpu_min: 0.05, cpu_max: 0.3, memory: 2 << 20, bandwidth_min: 0.0 };
    seal(
        Package::new(desc)
            .with_idl("cscw.idl", CSCW_IDL)
            .with_binary(Platform::reference(), "cscw_gui", &[0x91; 24 * 1024]),
    )
}

/// Package: the whiteboard application (emits Stroke).
pub fn whiteboard_package() -> Rc<Vec<u8>> {
    let mut desc = ComponentDescriptor::new("Whiteboard", Version::new(1, 0), "cscw-vendor")
        .provides("board", "IDL:cscw/Board:1.0")
        .emits("strokes", "IDL:cscw/Stroke:1.0");
    desc.qos = QosSpec { cpu_min: 0.05, cpu_max: 0.2, memory: 2 << 20, bandwidth_min: 0.0 };
    seal(
        Package::new(desc)
            .with_idl("cscw.idl", CSCW_IDL)
            .with_binary(Platform::reference(), "cscw_board", &[0xB0; 16 * 1024]),
    )
}

/// Package: the video decoder, with a parameterizable binary size (E6
/// sweeps the fetch cost against the stream volume).
pub fn video_decoder_package_sized(binary_kib: usize) -> Rc<Vec<u8>> {
    let mut desc = ComponentDescriptor::new("VideoDecoder", Version::new(1, 0), "cscw-vendor")
        .provides("sink", "IDL:cscw/VideoSink:1.0")
        .uses("display", "IDL:cscw/Display:1.0");
    desc.qos = QosSpec { cpu_min: 0.2, cpu_max: 0.8, memory: 8 << 20, bandwidth_min: 125_000.0 };
    // Incompressible payload so the package really costs its size.
    let mut x = 0xDEADBEEFu32;
    let payload: Vec<u8> = (0..binary_kib * 1024)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            (x >> 24) as u8
        })
        .collect();
    seal(
        Package::new(desc)
            .with_idl("cscw.idl", CSCW_IDL)
            .with_binary(Platform::reference(), "cscw_video", &payload),
    )
}

/// Default video decoder package (512 KiB binary).
pub fn video_decoder_package() -> Rc<Vec<u8>> {
    video_decoder_package_sized(512)
}

/// The Fig. 2 whiteboard assembly: one application plus `participants`
/// GUI parts, each subscribed to the application's stroke events.
/// Display wiring is per-participant (each GUI part must use the display
/// on *its user's* host), so displays are connected by the session setup
/// code, not by the assembly.
pub fn whiteboard_assembly(participants: usize) -> AssemblyDescriptor {
    let mut a = AssemblyDescriptor::new("whiteboard-session")
        .instance("board", "Whiteboard", Version::new(1, 0));
    for i in 0..participants {
        a = a
            .instance(&format!("gui{i}"), "CscwGuiPart", Version::new(1, 0))
            .subscribe(&format!("gui{i}"), "strokes", "board", "strokes");
    }
    a
}

#[cfg(test)]
mod tests;
