//! CSCW scenario tests: the Fig. 2 whiteboard session and the PDA thin
//! client, running on the full simulated stack.

use super::*;
use lc_core::node::NodeCmd;
use lc_core::testkit::{build_world, fast_cohesion, World};
use lc_core::{NodeConfig, PlacementStrategy};
use lc_des::SimTime;
use lc_net::{HostCfg, HostId, Topology};
use std::rc::Rc;
use std::sync::Arc;

fn settle(world: &mut World, ms: u64) {
    let deadline = world.sim.now() + SimTime::from_millis(ms);
    world.sim.run_until(deadline);
}

/// Build a world where every host has the CSCW packages "on disk" (their
/// displays are firmware; the apps were shipped by the vendor).
fn cscw_world(topo: Topology, seed: u64) -> World {
    let behaviors = lc_core::BehaviorRegistry::new();
    register_cscw_behaviors(&behaviors);
    build_world(
        topo,
        seed,
        NodeConfig { cohesion: fast_cohesion(), ..Default::default() },
        behaviors,
        cscw_trust(),
        Arc::new(cscw_idl()),
        |_| vec![display_package(), gui_package(), whiteboard_package()],
    )
}

/// Spawn a named instance on a host and return its reference.
fn spawn(world: &mut World, host: HostId, component: &str, name: &str) -> lc_orb::ObjectRef {
    let sink: lc_core::SpawnSink = Rc::default();
    world.cmd(
        host,
        NodeCmd::SpawnLocal {
            component: component.into(),
            min_version: lc_pkg::Version::new(1, 0),
            instance_name: Some(name.into()),
            sink: sink.clone(),
        },
    );
    settle(world, 10);
    let r = sink.borrow().clone().expect("spawn completed");
    r.unwrap_or_else(|e| panic!("spawn {component} on {host}: {e}"))
}

#[test]
fn whiteboard_session_fans_strokes_to_all_participants() {
    // Fig. 2: the board on host 0; participants on hosts 1..4, each with
    // a local display their GUI part paints to.
    let mut world = cscw_world(Topology::lan(5), 21);
    settle(&mut world, 10);
    let board = spawn(&mut world, HostId(0), "Whiteboard", "board");
    let mut guis = Vec::new();
    for i in 1..5u32 {
        let display = spawn(&mut world, HostId(i), "CscwDisplay", &format!("disp{i}"));
        let gui = spawn(&mut world, HostId(i), "CscwGuiPart", &format!("gui{i}"));
        // Wire the GUI part to its local display…
        world.cmd(
            HostId(i),
            NodeCmd::Invoke {
                target: gui.clone(),
                op: "_connect_display".into(),
                args: vec![lc_orb::Value::ObjRef(display)],
                oneway: true,
                sink: None,
            },
        );
        // …and subscribe it to the board's strokes.
        world.cmd(
            HostId(i),
            NodeCmd::Subscribe {
                producer: board.clone(),
                port: "strokes".into(),
                consumer: gui.clone(),
                delivery_op: "_push_strokes".into(),
            },
        );
        guis.push((HostId(i), gui));
    }
    settle(&mut world, 100);

    // The user draws 10 strokes.
    for k in 0..10 {
        world.cmd(
            HostId(0),
            NodeCmd::Invoke {
                target: board.clone(),
                op: "user_stroke".into(),
                args: vec![
                    lc_orb::Value::Long(k),
                    lc_orb::Value::Long(k),
                    lc_orb::Value::Long(k + 5),
                    lc_orb::Value::Long(k + 5),
                ],
                oneway: true,
                sink: None,
            },
        );
        settle(&mut world, 30);
    }
    settle(&mut world, 300);

    // Every participant saw every stroke, with LAN-scale latency, and
    // painted through its local display.
    for (host, gui) in &guis {
        let node = world.node(*host).unwrap();
        let gid = node.registry.named(&format!("gui{}", host.0)).unwrap().id;
        let servant: &GuiPartServant = node.servant_of(gid).unwrap();
        assert_eq!(servant.strokes_seen, 10, "participant on {host}");
        assert_eq!(servant.stroke_latency_ms.len(), 10);
        let mean: f64 =
            servant.stroke_latency_ms.iter().sum::<f64>() / servant.stroke_latency_ms.len() as f64;
        assert!(mean < 5.0, "LAN stroke latency should be ms-scale, got {mean}ms");
        let did = node.registry.named(&format!("disp{}", host.0)).unwrap().id;
        let display: &DisplayServant = node.servant_of(did).unwrap();
        assert_eq!(display.draws, 10);
        let _ = gui;
    }
}

#[test]
fn pda_thin_client_uses_remote_gui_with_local_display() {
    // R8: a PDA joins the session; its GUI part cannot run on the PDA
    // (QoS does not fit) so it runs on the server, using the PDA's
    // display remotely — "they can use all components remotely".
    let mut topo = Topology::new();
    let s = topo.add_site("office");
    let server = topo.add_host(HostCfg::new(s).server());
    let pda = topo.add_host(HostCfg::new(s).pda());
    let mut world = cscw_world(topo, 22);
    settle(&mut world, 10);

    // The PDA's display is local firmware.
    let pda_display = spawn(&mut world, pda, "CscwDisplay", "pda-screen");
    // The GUI part must not be admitted on the PDA…
    let fail: lc_core::SpawnSink = Rc::default();
    world.cmd(
        pda,
        NodeCmd::SpawnLocal {
            component: "CscwGuiPart".into(),
            min_version: lc_pkg::Version::new(1, 0),
            instance_name: None,
            sink: fail.clone(),
        },
    );
    settle(&mut world, 10);
    assert!(fail.borrow().clone().unwrap().is_err(), "PDA must not admit the GUI part");

    // …so it is spawned on the server and wired to the PDA's display.
    let gui = spawn(&mut world, server, "CscwGuiPart", "pda-gui");
    world.cmd(
        server,
        NodeCmd::Invoke {
            target: gui.clone(),
            op: "_connect_display".into(),
            args: vec![lc_orb::Value::ObjRef(pda_display)],
            oneway: true,
            sink: None,
        },
    );
    let board = spawn(&mut world, server, "Whiteboard", "board");
    world.cmd(
        server,
        NodeCmd::Subscribe {
            producer: board.clone(),
            port: "strokes".into(),
            consumer: gui,
            delivery_op: "_push_strokes".into(),
        },
    );
    settle(&mut world, 100);

    for _ in 0..5 {
        world.cmd(
            server,
            NodeCmd::Invoke {
                target: board.clone(),
                op: "user_stroke".into(),
                args: vec![
                    lc_orb::Value::Long(0),
                    lc_orb::Value::Long(0),
                    lc_orb::Value::Long(1),
                    lc_orb::Value::Long(1),
                ],
                oneway: true,
                sink: None,
            },
        );
        settle(&mut world, 100);
    }
    settle(&mut world, 500);

    // The PDA's screen received the paints across the network.
    let node = world.node(pda).unwrap();
    let did = node.registry.named("pda-screen").unwrap().id;
    let screen: &DisplayServant = node.servant_of(did).unwrap();
    assert_eq!(screen.draws, 5, "PDA screen painted remotely");
}

#[test]
fn whiteboard_assembly_deploys_with_runtime_placement() {
    let mut world = cscw_world(Topology::lan(6), 23);
    settle(&mut world, 800);
    let assembly = whiteboard_assembly(4);
    assembly.validate().unwrap();
    let sink: lc_core::AssemblySink = Rc::default();
    world.cmd(
        HostId(0),
        NodeCmd::StartAssembly {
            assembly,
            strategy: PlacementStrategy::RuntimeLoadAware,
            sink: sink.clone(),
        },
    );
    settle(&mut world, 3000);
    let results = sink.borrow();
    assert_eq!(results.len(), 5);
    for (name, r) in results.iter() {
        assert!(r.is_ok(), "{name}: {r:?}");
    }
}

#[test]
fn video_decoder_paints_through_connected_display() {
    let mut world = cscw_world(Topology::lan(2), 24);
    // video package is not preinstalled; push it.
    world.cmd(HostId(1), NodeCmd::Install(video_decoder_package_sized(16)));
    settle(&mut world, 50);
    let display = spawn(&mut world, HostId(1), "CscwDisplay", "screen");
    let decoder = spawn(&mut world, HostId(1), "VideoDecoder", "dec");
    world.cmd(
        HostId(1),
        NodeCmd::Invoke {
            target: decoder.clone(),
            op: "_connect_display".into(),
            args: vec![lc_orb::Value::ObjRef(display)],
            oneway: true,
            sink: None,
        },
    );
    settle(&mut world, 50);
    // Stream 20 chunks of 2 KiB from host 0.
    for _ in 0..20 {
        world.cmd(
            HostId(0),
            NodeCmd::Invoke {
                target: decoder.clone(),
                op: "push_chunk".into(),
                args: vec![lc_orb::Value::blob(&vec![0xAB; 2048])],
                oneway: true,
                sink: None,
            },
        );
        settle(&mut world, 40);
    }
    settle(&mut world, 500);
    let node = world.node(HostId(1)).unwrap();
    let dec_id = node.registry.named("dec").unwrap().id;
    let dec: &VideoDecoderServant = node.servant_of(dec_id).unwrap();
    assert_eq!(dec.frames, 20);
    let scr_id = node.registry.named("screen").unwrap().id;
    let scr: &DisplayServant = node.servant_of(scr_id).unwrap();
    assert_eq!(scr.draws, 20);
    assert!(scr.pixels_drawn >= 20 * 16 * 1024 / 2, "decoded frames painted");
}

#[test]
fn assembly_descriptor_typechecks_against_cscw_idl() {
    let idl = cscw_idl();
    let mut descs = std::collections::BTreeMap::new();
    for pkg_bytes in [gui_package(), whiteboard_package(), display_package()] {
        let pkg = lc_pkg::Package::from_bytes(&pkg_bytes).unwrap();
        descs.insert(pkg.descriptor.name.clone(), pkg.descriptor);
    }
    whiteboard_assembly(3).typecheck(&descs, &idl).unwrap();
}
