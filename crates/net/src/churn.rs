//! Churn injection: a continuous crash/recovery process over the hosts.
//!
//! The paper requires the cohesion protocol to "support spurious node
//! failures and node disconnections (and re-connections) gracefully"
//! (§2.4.3). This driver turns that sentence into a workload: each host
//! independently alternates between UP periods (exponentially distributed
//! with mean `mean_uptime`) and DOWN periods (mean `mean_downtime`).
//!
//! The driver only toggles fabric reachability ([`Net::set_host_up`]) and
//! invokes callbacks; the component layer above decides what a crash does
//! to the node process (kill the actor, lose soft state, etc.).

use crate::{HostId, Net};
use lc_des::{Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Parameters of the crash/recovery process.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Mean time a host stays up before crashing.
    pub mean_uptime: SimTime,
    /// Mean time a host stays down before recovering.
    pub mean_downtime: SimTime,
    /// Hosts subject to churn (others are stable).
    pub victims: Vec<HostId>,
    /// Stop injecting after this time (hosts recover but no new crashes).
    pub until: SimTime,
}

/// A churn callback: `(simulation, affected host)`.
pub type ChurnHook = Box<dyn FnMut(&mut Sim, HostId)>;

/// Callbacks fired when churn changes a host's state.
///
/// `on_crash` runs immediately after the fabric marks the host down;
/// `on_recover` immediately after it is marked up again.
pub struct ChurnHooks {
    /// Called with `(sim, host)` when the host crashes.
    pub on_crash: ChurnHook,
    /// Called with `(sim, host)` when the host recovers.
    pub on_recover: ChurnHook,
}

impl Default for ChurnHooks {
    fn default() -> Self {
        ChurnHooks { on_crash: Box::new(|_, _| {}), on_recover: Box::new(|_, _| {}) }
    }
}

/// Drives the churn process by scheduling control events on the [`Sim`].
pub struct ChurnDriver {
    net: Net,
    cfg: ChurnConfig,
    hooks: Rc<RefCell<ChurnHooks>>,
}

impl ChurnDriver {
    /// Create a driver; call [`ChurnDriver::install`] to arm it.
    pub fn new(net: Net, cfg: ChurnConfig, hooks: ChurnHooks) -> Self {
        Self::with_shared_hooks(net, cfg, Rc::new(RefCell::new(hooks)))
    }

    /// Like [`ChurnDriver::new`] but sharing `hooks` with another driver
    /// (e.g. a `FaultPlan` crash schedule installed by
    /// `Net::install_drivers`).
    pub(crate) fn with_shared_hooks(
        net: Net,
        cfg: ChurnConfig,
        hooks: Rc<RefCell<ChurnHooks>>,
    ) -> Self {
        assert!(cfg.mean_uptime > SimTime::ZERO, "mean uptime must be positive");
        assert!(cfg.mean_downtime > SimTime::ZERO, "mean downtime must be positive");
        ChurnDriver { net, cfg, hooks }
    }

    /// Schedule the first crash for every victim host.
    pub fn install(&self, sim: &mut Sim) {
        for &h in &self.cfg.victims {
            let first = exponential(sim, self.cfg.mean_uptime);
            schedule_crash(
                sim,
                self.net.clone(),
                self.cfg.clone(),
                self.hooks.clone(),
                h,
                first,
            );
        }
    }
}

/// Draw an exponentially distributed delay with the given mean.
fn exponential(sim: &mut Sim, mean: SimTime) -> SimTime {
    let u: f64 = sim.rng().gen_range(f64::EPSILON..1.0);
    mean.mul_f64(-u.ln())
}

fn schedule_crash(
    sim: &mut Sim,
    net: Net,
    cfg: ChurnConfig,
    hooks: Rc<RefCell<ChurnHooks>>,
    h: HostId,
    delay: SimTime,
) {
    if sim.now() + delay > cfg.until {
        return;
    }
    sim.control_in(delay, move |sim| {
        net.set_host_up(h, false);
        sim.metrics().incr("churn.crashes");
        (hooks.borrow_mut().on_crash)(sim, h);
        let down_for = exponential(sim, cfg.mean_downtime);
        schedule_recovery(sim, net, cfg, hooks, h, down_for);
    });
}

fn schedule_recovery(
    sim: &mut Sim,
    net: Net,
    cfg: ChurnConfig,
    hooks: Rc<RefCell<ChurnHooks>>,
    h: HostId,
    delay: SimTime,
) {
    sim.control_in(delay, move |sim| {
        net.set_host_up(h, true);
        sim.metrics().incr("churn.recoveries");
        (hooks.borrow_mut().on_recover)(sim, h);
        let up_for = exponential(sim, cfg.mean_uptime);
        schedule_crash(sim, net, cfg, hooks, h, up_for);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn churn_crashes_and_recovers() {
        let topo = Topology::lan(10);
        let net = Net::builder(topo).build();
        let victims = net.host_ids();
        let crashes = Arc::new(AtomicU32::new(0));
        let recoveries = Arc::new(AtomicU32::new(0));
        let (c2, r2) = (crashes.clone(), recoveries.clone());
        let mut sim = Sim::new(99);
        let driver = ChurnDriver::new(
            net.clone(),
            ChurnConfig {
                mean_uptime: SimTime::from_secs(10),
                mean_downtime: SimTime::from_secs(2),
                victims,
                until: SimTime::from_secs(120),
            },
            ChurnHooks {
                on_crash: Box::new(move |_, _| {
                    c2.fetch_add(1, Ordering::Relaxed);
                }),
                on_recover: Box::new(move |_, _| {
                    r2.fetch_add(1, Ordering::Relaxed);
                }),
            },
        );
        driver.install(&mut sim);
        sim.run_until(SimTime::from_secs(200));
        let c = crashes.load(Ordering::Relaxed);
        let r = recoveries.load(Ordering::Relaxed);
        // 10 hosts, 120s of injection, ~12s cycle → on the order of 100
        // crash events; the bound is loose on purpose.
        assert!(c > 20, "expected plenty of crashes, got {c}");
        // every crash recovers (injection stops at 120s, run to 200s)
        assert_eq!(c, r);
        assert_eq!(sim.metrics_ref().counter("churn.crashes"), c as u64);
        // everyone is back up at the end
        for h in net.host_ids() {
            assert!(net.is_up(h));
        }
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        fn run(seed: u64) -> u64 {
            let net = Net::builder(Topology::lan(5)).build();
            let mut sim = Sim::new(seed);
            ChurnDriver::new(
                net.clone(),
                ChurnConfig {
                    mean_uptime: SimTime::from_secs(5),
                    mean_downtime: SimTime::from_secs(1),
                    victims: net.host_ids(),
                    until: SimTime::from_secs(60),
                },
                ChurnHooks::default(),
            )
            .install(&mut sim);
            sim.run_until(SimTime::from_secs(100));
            sim.metrics_ref().counter("churn.crashes")
        }
        assert_eq!(run(4), run(4));
    }
}
