//! # lc-net — simulated network fabric
//!
//! The CORBA-LC deployment model runs on "a potentially large number of
//! hosts" connected by "possibly long and slow communication lines" (§2.3,
//! §2.4.3 of the paper). This crate models that substrate on top of the
//! [`lc_des`] kernel:
//!
//! * a [`Topology`] of **hosts** grouped into **sites** (a site ≈ one LAN;
//!   inter-site links are the slow WAN lines the paper worries about),
//! * a latency + bandwidth cost model with FIFO serialization at each
//!   host's uplink and downlink,
//! * **fault injection**: hosts crash and recover ([`Net::set_host_up`]),
//!   sites can be partitioned from each other, [`churn`] drives a
//!   continuous crash/recovery process, and a seeded [`FaultPlan`]
//!   injects message-level faults (loss, jitter, duplication,
//!   reordering, timed partitions, scheduled crashes) — see [`fault`],
//! * byte/message accounting split into intra-site and inter-site traffic
//!   (the quantity the paper's "reduces network load and exploits
//!   locality" claim is about).
//!
//! The fabric is shared state (`Rc<RefCell<…>>`): host actors hold a
//! [`Net`] handle and call [`Net::send`] from inside their event handlers;
//! the fabric computes the delivery time and schedules a [`NetMsg`] for the
//! destination host's bound actor.

pub mod churn;
pub mod fault;
pub mod topology;

pub use churn::{ChurnConfig, ChurnDriver, ChurnHooks};
pub use fault::{CrashWindow, FaultPlan, LinkFaults, PartitionWindow};
pub use topology::{DeviceClass, HostCfg, HostId, LinkClass, SiteId, Topology};

use fault::Verdict;
use lc_des::{ActorId, AnyMsg, Ctx, Sim, SimTime};
use lc_trace::{TraceContext, Tracer};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A message as delivered by the fabric to a host's actor.
///
/// Host actors downcast the [`AnyMsg`] they receive in
/// [`lc_des::Actor::handle`] to `NetMsg` and then downcast
/// [`NetMsg::payload`] to their own protocol type.
pub struct NetMsg {
    /// Sending host.
    pub from: HostId,
    /// Receiving host.
    pub to: HostId,
    /// Size on the wire in bytes (headers included by the caller).
    pub size: u64,
    /// Trace context stamped into the frame header by [`Net::send`]:
    /// the message span receivers parent their handler spans under.
    /// `None` when tracing is off or the send was outside any trace.
    pub trace: Option<TraceContext>,
    /// The protocol payload.
    pub payload: AnyMsg,
}

/// Why a send was dropped instead of delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// The sending host is down.
    SenderDown,
    /// The destination host is down at send time.
    ReceiverDown,
    /// Sender and receiver are in different partition groups.
    Partitioned,
    /// Destination host has no bound actor (host exists but no node
    /// process is listening — e.g. during restart).
    Unbound,
}

struct HostState {
    cfg: HostCfg,
    up: bool,
    bound: Option<ActorId>,
    /// Partition group; hosts can talk iff groups match.
    group: u8,
    /// Time the uplink/downlink becomes free (FIFO serialization).
    up_free: SimTime,
    down_free: SimTime,
    bytes_sent: u64,
    bytes_recv: u64,
}

struct NetInner {
    topo: Topology,
    hosts: Vec<HostState>,
    /// Message-level fault schedule; `None` draws zero fault randomness.
    fault: Option<FaultPlan>,
    /// Churn process armed by [`Net::install_drivers`].
    churn: Option<ChurnConfig>,
    /// Span sink shared by everything on this fabric (disabled by
    /// default: every tracing operation is then a no-op).
    tracer: Tracer,
    /// Open per-sender batch windows ([`Net::batch_begin`]): destination
    /// → queued messages, flushed as one frame per link by
    /// [`Net::batch_flush`]. Deterministic: BTreeMap iteration order.
    batches: BTreeMap<HostId, BTreeMap<HostId, Vec<QueuedMsg>>>,
}

/// One message parked in an open batch window.
struct QueuedMsg {
    /// Wire size the message would have paid unbatched (own header).
    size: u64,
    /// Trace context current at enqueue time (the send site's span).
    parent: Option<TraceContext>,
    /// Payload factory: each call mints a fresh boxed copy, so frame
    /// duplication by the fault fabric can re-deliver every message.
    make: Box<dyn Fn() -> AnyMsg>,
}

/// Bytes each non-first message of a batched frame saves: it rides
/// behind the frame header with a short length prefix instead of its
/// own full transport header.
pub const BATCH_SAVED_PER_MSG: u64 = 20;

/// A fully planned point-to-point transmission (shared by [`Net::send`]
/// and the batched-frame path).
enum Planned {
    Deliver {
        target: ActorId,
        deliver_at: SimTime,
        class: LinkClass,
        delayed: bool,
        dup_at: Option<SimTime>,
    },
    Lost {
        would_arrive: SimTime,
        class: LinkClass,
        severed: bool,
    },
}

/// Fluent constructor for [`Net`]: topology, fault plan and churn config
/// in one chain.
///
/// ```ignore
/// let net = Net::builder(Topology::lan(8))
///     .fault_plan(FaultPlan::seeded(7).default_link(LinkFaults::none().drop_p(0.01)))
///     .churn(ChurnConfig { … })
///     .build();
/// ```
pub struct NetBuilder {
    topo: Topology,
    fault: Option<FaultPlan>,
    churn: Option<ChurnConfig>,
    tracer: Option<Tracer>,
}

/// Handle to the shared network fabric. Cheap to clone.
#[derive(Clone)]
pub struct Net {
    inner: Rc<RefCell<NetInner>>,
}

impl NetBuilder {
    /// Inject message-level faults according to `plan`.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Configure a churn process (armed by [`Net::install_drivers`]).
    pub fn churn(mut self, cfg: ChurnConfig) -> Self {
        self.churn = Some(cfg);
        self
    }

    /// Attach a span sink: [`Net::send`] records message spans into it
    /// and everything holding a [`Net`] handle reaches it via
    /// [`Net::tracer`]. Without this call the fabric carries a disabled
    /// tracer and no tracing state changes at all.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Build the fabric. All hosts start up and unbound.
    pub fn build(self) -> Net {
        let hosts = self
            .topo
            .hosts()
            .iter()
            .map(|cfg| HostState {
                cfg: cfg.clone(),
                up: true,
                bound: None,
                group: 0,
                up_free: SimTime::ZERO,
                down_free: SimTime::ZERO,
                bytes_sent: 0,
                bytes_recv: 0,
            })
            .collect();
        Net {
            inner: Rc::new(RefCell::new(NetInner {
                topo: self.topo,
                hosts,
                fault: self.fault,
                churn: self.churn,
                tracer: self.tracer.unwrap_or_default(),
                batches: BTreeMap::new(),
            })),
        }
    }
}

impl Net {
    /// Start building a fabric for `topo`.
    pub fn builder(topo: Topology) -> NetBuilder {
        NetBuilder { topo, fault: None, churn: None, tracer: None }
    }

    /// The fabric's span sink (a disabled tracer unless
    /// [`NetBuilder::tracer`] attached one). Cheap to clone.
    pub fn tracer(&self) -> Tracer {
        self.inner.borrow().tracer.clone()
    }

    /// Arm everything the fabric config scheduled on the simulation:
    /// the fault plan's crash windows and, if configured, the churn
    /// process. Both report node state changes through the same
    /// `hooks`, so the layer above handles scheduled and random
    /// crashes identically. Call once, before `sim.run*`.
    pub fn install_drivers(&self, sim: &mut Sim, hooks: ChurnHooks) {
        let hooks = Rc::new(RefCell::new(hooks));
        let crashes: Vec<CrashWindow> = self
            .inner
            .borrow()
            .fault
            .as_ref()
            .map(|p| p.crashes().to_vec())
            .unwrap_or_default();
        for cw in crashes {
            let (net, h) = (self.clone(), hooks.clone());
            sim.control_in(cw.down_at.saturating_sub(sim.now()), move |sim| {
                net.set_host_up(cw.host, false);
                sim.metrics().incr("net.fault.crashes");
                (h.borrow_mut().on_crash)(sim, cw.host);
            });
            if let Some(up_at) = cw.up_at {
                let (net, h) = (self.clone(), hooks.clone());
                sim.control_in(up_at.saturating_sub(sim.now()), move |sim| {
                    net.set_host_up(cw.host, true);
                    sim.metrics().incr("net.fault.restarts");
                    (h.borrow_mut().on_recover)(sim, cw.host);
                });
            }
        }
        let churn = self.inner.borrow().churn.clone();
        if let Some(cfg) = churn {
            ChurnDriver::with_shared_hooks(self.clone(), cfg, hooks).install(sim);
        }
    }

    /// Number of hosts in the topology.
    pub fn host_count(&self) -> usize {
        self.inner.borrow().hosts.len()
    }

    /// All host ids.
    pub fn host_ids(&self) -> Vec<HostId> {
        (0..self.host_count() as u32).map(HostId).collect()
    }

    /// The site a host belongs to.
    pub fn site_of(&self, h: HostId) -> SiteId {
        self.inner.borrow().hosts[h.0 as usize].cfg.site
    }

    /// The host's static configuration.
    pub fn host_cfg(&self, h: HostId) -> HostCfg {
        self.inner.borrow().hosts[h.0 as usize].cfg.clone()
    }

    /// Bind the DES actor that receives this host's traffic.
    pub fn bind(&self, h: HostId, actor: ActorId) {
        self.inner.borrow_mut().hosts[h.0 as usize].bound = Some(actor);
    }

    /// The actor currently bound to a host, if any.
    pub fn bound_actor(&self, h: HostId) -> Option<ActorId> {
        self.inner.borrow().hosts[h.0 as usize].bound
    }

    /// Mark a host up or down. Going down clears nothing else: the layer
    /// above decides whether to kill/respawn the bound actor.
    pub fn set_host_up(&self, h: HostId, up: bool) {
        self.inner.borrow_mut().hosts[h.0 as usize].up = up;
    }

    /// Is the host currently up?
    pub fn is_up(&self, h: HostId) -> bool {
        self.inner.borrow().hosts[h.0 as usize].up
    }

    /// Put a host into partition group `g`; hosts communicate only within
    /// their group. Group 0 is the default connected component.
    pub fn set_partition_group(&self, h: HostId, g: u8) {
        self.inner.borrow_mut().hosts[h.0 as usize].group = g;
    }

    /// Heal all partitions (everyone back to group 0).
    pub fn heal_partitions(&self) {
        for h in self.inner.borrow_mut().hosts.iter_mut() {
            h.group = 0;
        }
    }

    /// Bytes sent / received by a host so far.
    pub fn host_traffic(&self, h: HostId) -> (u64, u64) {
        let inner = self.inner.borrow();
        let hs = &inner.hosts[h.0 as usize];
        (hs.bytes_sent, hs.bytes_recv)
    }

    /// The hottest receiver so far: `(host, bytes received)`, lowest id
    /// on ties. The hotspot metric of the registry experiments — a
    /// single-leader registry concentrates query traffic here.
    pub fn max_recv(&self) -> (HostId, u64) {
        let inner = self.inner.borrow();
        let mut best = (HostId(0), 0u64);
        for (i, h) in inner.hosts.iter().enumerate() {
            if h.bytes_recv > best.1 {
                best = (HostId(i as u32), h.bytes_recv);
            }
        }
        best
    }

    /// Would a message from `a` to `b` currently be deliverable?
    pub fn reachable(&self, a: HostId, b: HostId) -> bool {
        let inner = self.inner.borrow();
        let (ha, hb) = (&inner.hosts[a.0 as usize], &inner.hosts[b.0 as usize]);
        ha.up && hb.up && ha.group == hb.group
    }

    /// One-way latency between two hosts' sites (no load, no serialization).
    pub fn base_latency(&self, a: HostId, b: HostId) -> SimTime {
        let inner = self.inner.borrow();
        inner
            .topo
            .latency(inner.hosts[a.0 as usize].cfg.site, inner.hosts[b.0 as usize].cfg.site)
    }

    /// Send `size` bytes of `payload` from host `from` to host `to`.
    ///
    /// On success schedules a [`NetMsg`] for the destination's bound actor
    /// and returns the delivery time. Records metrics under `net.*`.
    ///
    /// Fail-fast `Err(DropReason)` covers conditions a real ORB detects
    /// at connect time (host down, unbound, explicit partition group).
    /// Faults injected by a [`FaultPlan`] are *silent*: the sender still
    /// pays uplink serialization and gets `Ok(would-have-arrived)` while
    /// nothing (loss, active partition window) or two copies
    /// (duplication) reach the receiver — recovery is the caller's job.
    pub fn send<M: std::any::Any + Clone>(
        &self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        to: HostId,
        size: u64,
        payload: M,
    ) -> Result<SimTime, DropReason> {
        if from != to && self.batch_open(from) {
            return self.enqueue_batched(ctx, from, to, size, payload);
        }
        let now = ctx.now();
        let planned = self.plan(ctx, from, to, size)?;

        ctx.metrics().incr("net.msgs");
        ctx.metrics().add("net.bytes", size);
        // Message span: the hop is fully planned, so its interval
        // [send, delivery] is known right now. Only sends that happen
        // inside a traced operation get one — the span parents under
        // the tracer's current context and its id rides in the frame.
        let tracer = self.inner.borrow().tracer.clone();
        let span = |end: SimTime| -> Option<TraceContext> {
            let parent = tracer.current()?;
            let sp = tracer.complete(from.0, "net.msg", Some(parent), now, end)?;
            tracer.set_attr(sp, "to", &to.0.to_string());
            tracer.set_attr(sp, "bytes", &size.to_string());
            Some(sp)
        };
        match planned {
            Planned::Lost { would_arrive, class, severed } => {
                // The sender transmitted: traffic counts, delivery doesn't.
                Self::count_class_bytes(ctx, class, size);
                ctx.metrics().incr("net.fault.dropped");
                if severed {
                    ctx.metrics().incr("net.fault.severed");
                }
                if let Some(sp) = span(would_arrive) {
                    tracer.set_attr(sp, "lost", if severed { "severed" } else { "dropped" });
                }
                Ok(would_arrive)
            }
            Planned::Deliver { target, deliver_at, class, delayed, dup_at } => {
                Self::count_class_bytes(ctx, class, size);
                if delayed {
                    ctx.metrics().incr("net.fault.delayed");
                }
                let sp = span(deliver_at);
                if let Some(dup_at) = dup_at {
                    ctx.metrics().incr("net.fault.duplicated");
                    if let Some(sp) = sp {
                        tracer.set_attr(sp, "duplicated", "true");
                    }
                    ctx.send_in(
                        dup_at.saturating_sub(now),
                        target,
                        NetMsg { from, to, size, trace: sp, payload: Box::new(payload.clone()) },
                    );
                }
                ctx.send_in(
                    deliver_at.saturating_sub(now),
                    target,
                    NetMsg { from, to, size, trace: sp, payload: Box::new(payload) },
                );
                Ok(deliver_at)
            }
        }
    }

    /// Plan one point-to-point transmission of `size` bytes: fail-fast
    /// checks, FIFO serialization at both ends, propagation latency and
    /// the fault plan's verdict. Mutates link FIFO state and traffic
    /// accounting — call exactly once per wire transmission.
    fn plan(
        &self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        to: HostId,
        size: u64,
    ) -> Result<Planned, DropReason> {
        let now = ctx.now();
        let mut guard = self.inner.borrow_mut();
        {
            let inner = &mut *guard;
            if !inner.hosts[from.0 as usize].up {
                ctx.metrics().incr("net.drop.sender_down");
                return Err(DropReason::SenderDown);
            }
            if !inner.hosts[to.0 as usize].up {
                ctx.metrics().incr("net.drop.receiver_down");
                return Err(DropReason::ReceiverDown);
            }
            if inner.hosts[from.0 as usize].group != inner.hosts[to.0 as usize].group {
                ctx.metrics().incr("net.drop.partitioned");
                return Err(DropReason::Partitioned);
            }
            let Some(target) = inner.hosts[to.0 as usize].bound else {
                ctx.metrics().incr("net.drop.unbound");
                return Err(DropReason::Unbound);
            };

            let from_site = inner.hosts[from.0 as usize].cfg.site;
            let to_site = inner.hosts[to.0 as usize].cfg.site;
            let class = if from == to {
                LinkClass::Loopback
            } else {
                inner.topo.link_class(from_site, to_site)
            };
            let latency = inner.topo.latency(from_site, to_site);

            let planned = if from == to {
                // Loopback: no serialization, no injected faults, a fixed
                // tiny in-host hop.
                inner.hosts[from.0 as usize].bytes_sent += size;
                inner.hosts[to.0 as usize].bytes_recv += size;
                Planned::Deliver {
                    target,
                    deliver_at: now + Topology::LOOPBACK_LATENCY,
                    class,
                    delayed: false,
                    dup_at: None,
                }
            } else {
                // Uplink FIFO serialization at the sender (paid even when
                // the fabric then loses the message)…
                let up_bw = inner.hosts[from.0 as usize].cfg.up_bw;
                let tx = bw_delay(size, up_bw);
                let start = now.max(inner.hosts[from.0 as usize].up_free);
                let up_done = start + tx;
                inner.hosts[from.0 as usize].up_free = up_done;
                inner.hosts[from.0 as usize].bytes_sent += size;
                // …propagation…
                let arrived = up_done + latency;
                let verdict = match inner.fault.as_mut() {
                    None => Verdict::Deliver { extra: SimTime::ZERO, duplicate: None },
                    Some(plan) => plan.decide(from, to, now),
                };
                match verdict {
                    Verdict::Dropped | Verdict::Severed => Planned::Lost {
                        would_arrive: arrived,
                        class,
                        severed: matches!(verdict, Verdict::Severed),
                    },
                    Verdict::Deliver { extra, duplicate } => {
                        // …downlink FIFO serialization at the receiver;
                        // jitter/reorder delay lands *after* the FIFO so a
                        // held-back message really is overtaken.
                        let down_bw = inner.hosts[to.0 as usize].cfg.down_bw;
                        let rx = bw_delay(size, down_bw);
                        let start_rx = arrived.max(inner.hosts[to.0 as usize].down_free);
                        let done = start_rx + rx;
                        inner.hosts[to.0 as usize].down_free = done;
                        inner.hosts[to.0 as usize].bytes_recv += size;
                        let dup_at = duplicate.map(|dup_extra| {
                            inner.hosts[to.0 as usize].bytes_recv += size;
                            done + dup_extra
                        });
                        Planned::Deliver {
                            target,
                            deliver_at: done + extra,
                            class,
                            delayed: extra > SimTime::ZERO,
                            dup_at,
                        }
                    }
                }
            };
            Ok(planned)
        }
    }

    /// Per-link-class traffic accounting, shared by the immediate and
    /// batched send paths.
    fn count_class_bytes(ctx: &mut Ctx<'_>, class: LinkClass, size: u64) {
        match class {
            LinkClass::Loopback => ctx.metrics().add("net.bytes.loopback", size),
            LinkClass::IntraSite => ctx.metrics().add("net.bytes.intra", size),
            LinkClass::InterSite => ctx.metrics().add("net.bytes.inter", size),
        }
    }

    fn batch_open(&self, from: HostId) -> bool {
        self.inner.borrow().batches.contains_key(&from)
    }

    /// Open a batching window for `from`: until [`Net::batch_flush`],
    /// non-loopback sends from this host are queued instead of
    /// transmitted, then shipped as one frame per destination.
    pub fn batch_begin(&self, from: HostId) {
        self.inner.borrow_mut().batches.entry(from).or_default();
    }

    /// Queue one message inside an open batch window. Fail-fast checks
    /// still apply immediately (a real ORB notices a dead peer at
    /// connect time, batched or not); the FIFO/fault work is deferred
    /// to the flush. Returns an optimistic delivery estimate.
    fn enqueue_batched<M: std::any::Any + Clone>(
        &self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        to: HostId,
        size: u64,
        payload: M,
    ) -> Result<SimTime, DropReason> {
        let now = ctx.now();
        let mut inner = self.inner.borrow_mut();
        if !inner.hosts[from.0 as usize].up {
            drop(inner);
            ctx.metrics().incr("net.drop.sender_down");
            return Err(DropReason::SenderDown);
        }
        if !inner.hosts[to.0 as usize].up {
            drop(inner);
            ctx.metrics().incr("net.drop.receiver_down");
            return Err(DropReason::ReceiverDown);
        }
        if inner.hosts[from.0 as usize].group != inner.hosts[to.0 as usize].group {
            drop(inner);
            ctx.metrics().incr("net.drop.partitioned");
            return Err(DropReason::Partitioned);
        }
        if inner.hosts[to.0 as usize].bound.is_none() {
            drop(inner);
            ctx.metrics().incr("net.drop.unbound");
            return Err(DropReason::Unbound);
        }
        let from_site = inner.hosts[from.0 as usize].cfg.site;
        let to_site = inner.hosts[to.0 as usize].cfg.site;
        let latency = inner.topo.latency(from_site, to_site);
        let parent = inner.tracer.current();
        let queue = inner
            .batches
            .entry(from)
            .or_default()
            .entry(to)
            .or_default();
        queue.push(QueuedMsg {
            size,
            parent,
            make: Box::new(move || Box::new(payload.clone()) as AnyMsg),
        });
        ctx.metrics().incr("net.batch.msgs");
        Ok(now + latency)
    }

    /// Close the batch window for `from` and transmit every queued
    /// message, one frame per destination (destinations in `HostId`
    /// order). A frame of `k` messages pays a single header: its wire
    /// size is the payload sum minus `(k-1) *` [`BATCH_SAVED_PER_MSG`],
    /// and the fault plan issues ONE verdict for the whole frame.
    /// Returns the number of frames transmitted.
    pub fn batch_flush(&self, ctx: &mut Ctx<'_>, from: HostId) -> usize {
        let Some(dests) = self.inner.borrow_mut().batches.remove(&from) else {
            return 0;
        };
        let now = ctx.now();
        let tracer = self.inner.borrow().tracer.clone();
        let mut frames = 0;
        for (to, msgs) in dests {
            if msgs.is_empty() {
                continue;
            }
            let k = msgs.len() as u64;
            let payload_bytes: u64 = msgs.iter().map(|m| m.size).sum();
            let saved = (k - 1) * BATCH_SAVED_PER_MSG;
            let frame_size = payload_bytes.saturating_sub(saved).max(1);
            let Ok(planned) = self.plan(ctx, from, to, frame_size) else {
                // The link died between enqueue and flush: the whole
                // frame is undeliverable, counted once per message.
                ctx.metrics().add("net.batch.flush_failed", k);
                continue;
            };
            frames += 1;
            ctx.metrics().incr("net.msgs");
            ctx.metrics().incr("net.batch.frames");
            ctx.metrics().add("net.bytes", frame_size);
            ctx.metrics().add("net.batch.saved_bytes", saved);
            let span_for = |m: &QueuedMsg, end: SimTime| -> Option<TraceContext> {
                let parent = m.parent?;
                let sp = tracer.complete(from.0, "net.msg", Some(parent), now, end)?;
                tracer.set_attr(sp, "to", &to.0.to_string());
                tracer.set_attr(sp, "bytes", &m.size.to_string());
                tracer.set_attr(sp, "batched", "true");
                Some(sp)
            };
            match planned {
                Planned::Lost { would_arrive, class, severed } => {
                    Self::count_class_bytes(ctx, class, frame_size);
                    ctx.metrics().incr("net.fault.dropped");
                    if severed {
                        ctx.metrics().incr("net.fault.severed");
                    }
                    for m in &msgs {
                        if let Some(sp) = span_for(m, would_arrive) {
                            tracer.set_attr(sp, "lost", if severed { "severed" } else { "dropped" });
                        }
                    }
                }
                Planned::Deliver { target, deliver_at, class, delayed, dup_at } => {
                    Self::count_class_bytes(ctx, class, frame_size);
                    if delayed {
                        ctx.metrics().incr("net.fault.delayed");
                    }
                    if dup_at.is_some() {
                        ctx.metrics().incr("net.fault.duplicated");
                    }
                    for m in &msgs {
                        let sp = span_for(m, deliver_at);
                        if let Some(dup_at) = dup_at {
                            if let Some(sp) = sp {
                                tracer.set_attr(sp, "duplicated", "true");
                            }
                            ctx.send_in(
                                dup_at.saturating_sub(now),
                                target,
                                NetMsg { from, to, size: m.size, trace: sp, payload: (m.make)() },
                            );
                        }
                        ctx.send_in(
                            deliver_at.saturating_sub(now),
                            target,
                            NetMsg { from, to, size: m.size, trace: sp, payload: (m.make)() },
                        );
                    }
                }
            }
        }
        frames
    }

    /// Multicast: each receiver gets its own copy, but the per-copy cost is
    /// the shared uplink FIFO (models the paper's interest in
    /// multicast-based cohesion protocols). Returns how many copies were
    /// deliverable.
    pub fn multicast<M: std::any::Any + Clone>(
        &self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        tos: &[HostId],
        size: u64,
        payload: M,
    ) -> usize {
        let mut delivered = 0;
        for &to in tos {
            if to == from {
                continue;
            }
            if self.send(ctx, from, to, size, payload.clone()).is_ok() {
                delivered += 1;
            }
        }
        ctx.metrics().incr("net.multicasts");
        delivered
    }
}

/// Serialization delay of `size` bytes at `bw` bytes/sec.
fn bw_delay(size: u64, bw: f64) -> SimTime {
    debug_assert!(bw > 0.0);
    SimTime::from_secs_f64(size as f64 / bw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_des::{Actor, AnyMsgExt, Sim};

    /// Actor that records arrival times of NetMsgs.
    struct Sink {
        arrivals: Vec<(SimTime, u64)>,
    }
    impl Actor for Sink {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMsg) {
            let m = msg.downcast_msg::<NetMsg>().expect("NetMsg");
            self.arrivals.push((ctx.now(), m.size));
        }
    }

    /// Actor that sends `copies` messages when poked.
    struct Pusher {
        net: Net,
        from: HostId,
        to: HostId,
        size: u64,
        copies: u32,
    }
    struct Go;
    impl Actor for Pusher {
        fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMsg) {
            for _ in 0..self.copies {
                let _ = self.net.send(ctx, self.from, self.to, self.size, ());
            }
        }
    }

    fn two_host_net(up_bw: f64, down_bw: f64, latency_ms: u64) -> (Net, HostId, HostId) {
        let mut topo = Topology::new();
        let s0 = topo.add_site("a");
        let s1 = topo.add_site("b");
        topo.set_inter_site_latency(SimTime::from_millis(latency_ms));
        let h0 = topo.add_host(HostCfg::new(s0).bw(up_bw, down_bw));
        let h1 = topo.add_host(HostCfg::new(s1).bw(up_bw, down_bw));
        (Net::builder(topo).build(), h0, h1)
    }

    fn two_host_net_with(
        plan: FaultPlan,
        up_bw: f64,
        down_bw: f64,
        latency_ms: u64,
    ) -> (Net, HostId, HostId) {
        let mut topo = Topology::new();
        let s0 = topo.add_site("a");
        let s1 = topo.add_site("b");
        topo.set_inter_site_latency(SimTime::from_millis(latency_ms));
        let h0 = topo.add_host(HostCfg::new(s0).bw(up_bw, down_bw));
        let h1 = topo.add_host(HostCfg::new(s1).bw(up_bw, down_bw));
        (Net::builder(topo).fault_plan(plan).build(), h0, h1)
    }

    #[test]
    fn latency_plus_serialization() {
        // 1000 bytes at 1e6 B/s = 1ms tx + 1ms rx + 10ms latency.
        let (net, h0, h1) = two_host_net(1e6, 1e6, 10);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(Pusher { net: net.clone(), from: h0, to: h1, size: 1000, copies: 1 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        let arr = &sim.actor_as::<Sink>(sink).unwrap().arrivals;
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].0, SimTime::from_millis(12));
    }

    #[test]
    fn fifo_uplink_serializes_bursts() {
        // Two 1000-byte messages: second waits for the first's uplink slot.
        let (net, h0, h1) = two_host_net(1e6, 1e9, 10);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(Pusher { net: net.clone(), from: h0, to: h1, size: 1000, copies: 2 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        let arr = &sim.actor_as::<Sink>(sink).unwrap().arrivals;
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].0.saturating_sub(arr[0].0), SimTime::from_millis(1));
    }

    #[test]
    fn loopback_is_cheap_and_classified() {
        let (net, h0, _h1) = two_host_net(1e6, 1e6, 10);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h0, sink);
        struct SelfSend {
            net: Net,
            h: HostId,
        }
        impl Actor for SelfSend {
            fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMsg) {
                if msg.downcast_msg::<Go>().is_ok() {
                    self.net.send(ctx, self.h, self.h, 1_000_000, ()).unwrap();
                }
            }
        }
        // Rebind: the self-sender is the host actor and receives its own msg.
        let actor = sim.spawn(SelfSend { net: net.clone(), h: h0 });
        net.bind(h0, actor);
        sim.send_in(SimTime::ZERO, actor, Go);
        sim.run();
        assert_eq!(sim.metrics_ref().counter("net.bytes.loopback"), 1_000_000);
        // 1 MB over loopback arrives in the fixed loopback latency.
        assert_eq!(sim.now(), Topology::LOOPBACK_LATENCY);
    }

    #[test]
    fn down_hosts_drop_traffic() {
        let (net, h0, h1) = two_host_net(1e6, 1e6, 1);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(Pusher { net: net.clone(), from: h0, to: h1, size: 10, copies: 1 });
        net.bind(h0, pusher);
        net.set_host_up(h1, false);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        assert!(sim.actor_as::<Sink>(sink).unwrap().arrivals.is_empty());
        assert_eq!(sim.metrics_ref().counter("net.drop.receiver_down"), 1);
        assert!(!net.reachable(h0, h1));
        net.set_host_up(h1, true);
        assert!(net.reachable(h0, h1));
    }

    #[test]
    fn partitions_isolate_groups() {
        let (net, h0, h1) = two_host_net(1e6, 1e6, 1);
        net.set_partition_group(h1, 1);
        assert!(!net.reachable(h0, h1));
        net.heal_partitions();
        assert!(net.reachable(h0, h1));
    }

    #[test]
    fn traffic_accounting_by_class() {
        let mut topo = Topology::new();
        let s0 = topo.add_site("a");
        let h0 = topo.add_host(HostCfg::new(s0));
        let h1 = topo.add_host(HostCfg::new(s0));
        let net = Net::builder(topo).build();
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(Pusher { net: net.clone(), from: h0, to: h1, size: 500, copies: 1 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        assert_eq!(sim.metrics_ref().counter("net.bytes.intra"), 500);
        assert_eq!(sim.metrics_ref().counter("net.bytes.inter"), 0);
        assert_eq!(net.host_traffic(h0).0, 500);
        assert_eq!(net.host_traffic(h1).1, 500);
        assert_eq!(net.max_recv(), (h1, 500));
    }

    #[test]
    fn unbound_host_drops() {
        let (net, h0, h1) = two_host_net(1e6, 1e6, 1);
        let mut sim = Sim::new(1);
        let pusher =
            sim.spawn(Pusher { net: net.clone(), from: h0, to: h1, size: 10, copies: 1 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        assert_eq!(sim.metrics_ref().counter("net.drop.unbound"), 1);
    }

    #[test]
    fn multicast_reaches_all_up_receivers() {
        let mut topo = Topology::new();
        let s = topo.add_site("lan");
        let sender = topo.add_host(HostCfg::new(s));
        let rcv: Vec<HostId> = (0..5).map(|_| topo.add_host(HostCfg::new(s))).collect();
        let net = Net::builder(topo).build();
        let mut sim = Sim::new(1);
        let sinks: Vec<_> = rcv
            .iter()
            .map(|&h| {
                let a = sim.spawn(Sink { arrivals: vec![] });
                net.bind(h, a);
                a
            })
            .collect();
        net.set_host_up(rcv[2], false);

        struct Mc {
            net: Net,
            from: HostId,
            tos: Vec<HostId>,
        }
        impl Actor for Mc {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMsg) {
                let n = self.net.multicast(ctx, self.from, &self.tos, 100, 7u32);
                assert_eq!(n, 4);
            }
        }
        let mc = sim.spawn(Mc { net: net.clone(), from: sender, tos: rcv.clone() });
        net.bind(sender, mc);
        sim.send_in(SimTime::ZERO, mc, Go);
        sim.run();
        for (i, s) in sinks.iter().enumerate() {
            let n = sim.actor_as::<Sink>(*s).unwrap().arrivals.len();
            assert_eq!(n, if i == 2 { 0 } else { 1 });
        }
    }

    #[test]
    fn traced_send_records_message_span_and_stamps_frame() {
        let tracer = Tracer::new();
        let net = Net::builder(Topology::lan(2)).tracer(tracer.clone()).build();

        struct TracedSink {
            got: Option<Option<TraceContext>>,
        }
        impl Actor for TracedSink {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: AnyMsg) {
                let m = msg.downcast_msg::<NetMsg>().expect("NetMsg");
                self.got = Some(m.trace);
            }
        }
        struct TracedPusher {
            net: Net,
        }
        impl Actor for TracedPusher {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMsg) {
                let tr = self.net.tracer();
                let root = tr.root(0, "op", ctx.now());
                let prev = tr.set_current(root);
                let _ = self.net.send(ctx, HostId(0), HostId(1), 100, ());
                tr.set_current(prev);
                if let Some(root) = root {
                    tr.end(root, ctx.now());
                }
            }
        }

        let mut sim = Sim::new(1);
        let sink = sim.spawn(TracedSink { got: None });
        net.bind(HostId(1), sink);
        let p = sim.spawn(TracedPusher { net: net.clone() });
        net.bind(HostId(0), p);
        sim.send_in(SimTime::ZERO, p, Go);
        sim.run();

        let got = sim.actor_as::<TracedSink>(sink).unwrap().got.unwrap();
        let ctx = got.expect("frame carries the message-span context");
        let spans = tracer.spans();
        lc_trace::validate(&spans).unwrap();
        let msg = spans.iter().find(|s| s.id == ctx.span).unwrap();
        assert_eq!(msg.name, "net.msg");
        assert!(msg.end > msg.start, "hop takes network time");
        assert_eq!(msg.attr("to"), Some("1"));
        // untraced sends stamp nothing and record nothing
        let net2 = Net::builder(Topology::lan(2)).build();
        assert!(!net2.tracer().is_enabled());
    }

    /// Sends `copies` messages, recording the `Ok` results.
    struct FaultPusher {
        net: Net,
        from: HostId,
        to: HostId,
        copies: u32,
        oks: u32,
    }
    impl Actor for FaultPusher {
        fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMsg) {
            for _ in 0..self.copies {
                if self.net.send(ctx, self.from, self.to, 100, ()).is_ok() {
                    self.oks += 1;
                }
            }
        }
    }

    #[test]
    fn injected_loss_is_silent() {
        // drop_p = 1: nothing arrives, yet every send reports Ok.
        let plan = FaultPlan::seeded(5).default_link(LinkFaults::none().drop_p(1.0));
        let (net, h0, h1) = two_host_net_with(plan, 1e6, 1e6, 1);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(FaultPusher { net: net.clone(), from: h0, to: h1, copies: 10, oks: 0 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        assert_eq!(sim.actor_as::<FaultPusher>(pusher).unwrap().oks, 10);
        assert!(sim.actor_as::<Sink>(sink).unwrap().arrivals.is_empty());
        assert_eq!(sim.metrics_ref().counter("net.fault.dropped"), 10);
        // the sender transmitted: bytes counted out, none counted in
        assert_eq!(net.host_traffic(h0).0, 1000);
        assert_eq!(net.host_traffic(h1).1, 0);
    }

    #[test]
    fn injected_duplication_delivers_twice() {
        let plan = FaultPlan::seeded(5).default_link(LinkFaults::none().dup_p(1.0));
        let (net, h0, h1) = two_host_net_with(plan, 1e6, 1e6, 1);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(FaultPusher { net: net.clone(), from: h0, to: h1, copies: 3, oks: 0 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        assert_eq!(sim.actor_as::<Sink>(sink).unwrap().arrivals.len(), 6);
        assert_eq!(sim.metrics_ref().counter("net.fault.duplicated"), 3);
    }

    #[test]
    fn partition_window_cuts_then_heals() {
        // Window [0, 5ms): the first send is severed, a send at 5ms lands.
        let plan =
            FaultPlan::seeded(5).partition(SimTime::ZERO, SimTime::from_millis(5), &[HostId(1)]);
        let (net, h0, h1) = two_host_net_with(plan, 1e6, 1e6, 1);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(FaultPusher { net: net.clone(), from: h0, to: h1, copies: 1, oks: 0 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.send_in(SimTime::from_millis(5), pusher, Go);
        sim.run();
        assert_eq!(sim.actor_as::<Sink>(sink).unwrap().arrivals.len(), 1);
        assert_eq!(sim.metrics_ref().counter("net.fault.severed"), 1);
    }

    #[test]
    fn jitter_delays_but_delivers() {
        let plan = FaultPlan::seeded(5)
            .default_link(LinkFaults::none().jitter(SimTime::from_millis(50)));
        let (net, h0, h1) = two_host_net_with(plan, 1e6, 1e6, 1);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(FaultPusher { net: net.clone(), from: h0, to: h1, copies: 1, oks: 0 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        let arr = &sim.actor_as::<Sink>(sink).unwrap().arrivals;
        assert_eq!(arr.len(), 1);
        // baseline delivery would be 0.1ms tx + 1ms + 0.1ms rx = 1.2ms
        assert!(arr[0].0 >= SimTime::from_micros(1200));
        assert_eq!(sim.metrics_ref().counter("net.fault.delayed"), 1);
    }

    #[test]
    fn crash_schedule_installs_and_restarts() {
        let plan = FaultPlan::seeded(5).crash(
            HostId(1),
            SimTime::from_secs(1),
            Some(SimTime::from_secs(2)),
        );
        let topo = Topology::lan(3);
        let net = Net::builder(topo).fault_plan(plan).build();
        let mut sim = Sim::new(1);
        net.install_drivers(&mut sim, ChurnHooks::default());
        sim.run_until(SimTime::from_millis(1500));
        assert!(!net.is_up(HostId(1)));
        sim.run_until(SimTime::from_secs(3));
        assert!(net.is_up(HostId(1)));
        assert_eq!(sim.metrics_ref().counter("net.fault.crashes"), 1);
        assert_eq!(sim.metrics_ref().counter("net.fault.restarts"), 1);
    }

    /// Opens a batch window, sends `size` bytes to each listed
    /// destination, flushes, and records how many frames went out.
    struct Batcher {
        net: Net,
        from: HostId,
        tos: Vec<HostId>,
        size: u64,
        frames: usize,
        errs: usize,
    }
    impl Actor for Batcher {
        fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMsg) {
            self.net.batch_begin(self.from);
            for &to in &self.tos {
                if self.net.send(ctx, self.from, to, self.size, ()).is_err() {
                    self.errs += 1;
                }
            }
            self.frames += self.net.batch_flush(ctx, self.from);
        }
    }

    #[test]
    fn batched_sends_share_one_frame() {
        // Three 100-byte messages to one destination: a single frame of
        // 300 - 2*BATCH_SAVED_PER_MSG bytes, all copies arriving together.
        let (net, h0, h1) = two_host_net(1e6, 1e6, 10);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let b = sim.spawn(Batcher {
            net: net.clone(),
            from: h0,
            tos: vec![h1, h1, h1],
            size: 100,
            frames: 0,
            errs: 0,
        });
        net.bind(h0, b);
        sim.send_in(SimTime::ZERO, b, Go);
        sim.run();
        let arr = &sim.actor_as::<Sink>(sink).unwrap().arrivals;
        assert_eq!(arr.len(), 3);
        assert!(arr.iter().all(|a| a.0 == arr[0].0), "frame arrives as one unit");
        assert_eq!(sim.actor_as::<Batcher>(b).unwrap().frames, 1);
        assert_eq!(sim.metrics_ref().counter("net.msgs"), 1);
        assert_eq!(sim.metrics_ref().counter("net.bytes"), 300 - 2 * BATCH_SAVED_PER_MSG);
        assert_eq!(sim.metrics_ref().counter("net.batch.msgs"), 3);
        assert_eq!(sim.metrics_ref().counter("net.batch.frames"), 1);
        assert_eq!(
            sim.metrics_ref().counter("net.batch.saved_bytes"),
            2 * BATCH_SAVED_PER_MSG
        );
    }

    #[test]
    fn batch_emits_one_frame_per_destination() {
        let mut topo = Topology::new();
        let s = topo.add_site("lan");
        let sender = topo.add_host(HostCfg::new(s));
        let r1 = topo.add_host(HostCfg::new(s));
        let r2 = topo.add_host(HostCfg::new(s));
        let net = Net::builder(topo).build();
        let mut sim = Sim::new(1);
        for &h in &[r1, r2] {
            let a = sim.spawn(Sink { arrivals: vec![] });
            net.bind(h, a);
        }
        let b = sim.spawn(Batcher {
            net: net.clone(),
            from: sender,
            tos: vec![r1, r2, r1],
            size: 100,
            frames: 0,
            errs: 0,
        });
        net.bind(sender, b);
        sim.send_in(SimTime::ZERO, b, Go);
        sim.run();
        assert_eq!(sim.actor_as::<Batcher>(b).unwrap().frames, 2);
        assert_eq!(sim.metrics_ref().counter("net.batch.frames"), 2);
        // r1's frame saved one header, r2's saved none.
        assert_eq!(
            sim.metrics_ref().counter("net.batch.saved_bytes"),
            BATCH_SAVED_PER_MSG
        );
    }

    #[test]
    fn batched_sends_still_fail_fast() {
        // A dead receiver is detected at enqueue time, not at flush.
        let (net, h0, h1) = two_host_net(1e6, 1e6, 1);
        net.set_host_up(h1, false);
        let mut sim = Sim::new(1);
        let b = sim.spawn(Batcher {
            net: net.clone(),
            from: h0,
            tos: vec![h1, h1],
            size: 10,
            frames: 0,
            errs: 0,
        });
        net.bind(h0, b);
        sim.send_in(SimTime::ZERO, b, Go);
        sim.run();
        assert_eq!(sim.actor_as::<Batcher>(b).unwrap().errs, 2);
        assert_eq!(sim.actor_as::<Batcher>(b).unwrap().frames, 0);
        assert_eq!(sim.metrics_ref().counter("net.drop.receiver_down"), 2);
    }

    #[test]
    fn fault_verdict_applies_to_whole_frame() {
        // drop_p = 1: one lost frame, one net.fault.dropped — not three.
        let plan = FaultPlan::seeded(5).default_link(LinkFaults::none().drop_p(1.0));
        let (net, h0, h1) = two_host_net_with(plan, 1e6, 1e6, 1);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let b = sim.spawn(Batcher {
            net: net.clone(),
            from: h0,
            tos: vec![h1, h1, h1],
            size: 100,
            frames: 0,
            errs: 0,
        });
        net.bind(h0, b);
        sim.send_in(SimTime::ZERO, b, Go);
        sim.run();
        assert!(sim.actor_as::<Sink>(sink).unwrap().arrivals.is_empty());
        assert_eq!(sim.metrics_ref().counter("net.fault.dropped"), 1);
    }

    #[test]
    fn flush_without_window_is_noop() {
        let (net, h0, _h1) = two_host_net(1e6, 1e6, 1);
        struct Flusher {
            net: Net,
            h: HostId,
        }
        impl Actor for Flusher {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMsg) {
                assert_eq!(self.net.batch_flush(ctx, self.h), 0);
            }
        }
        let mut sim = Sim::new(1);
        let f = sim.spawn(Flusher { net: net.clone(), h: h0 });
        net.bind(h0, f);
        sim.send_in(SimTime::ZERO, f, Go);
        sim.run();
        assert_eq!(sim.metrics_ref().counter("net.msgs"), 0);
    }

    #[test]
    fn builder_arms_churn_via_install_drivers() {
        let net = Net::builder(Topology::lan(4))
            .churn(ChurnConfig {
                mean_uptime: SimTime::from_secs(2),
                mean_downtime: SimTime::from_millis(500),
                victims: vec![HostId(0), HostId(1), HostId(2), HostId(3)],
                until: SimTime::from_secs(30),
            })
            .build();
        let mut sim = Sim::new(7);
        net.install_drivers(&mut sim, ChurnHooks::default());
        sim.run_until(SimTime::from_secs(60));
        assert!(sim.metrics_ref().counter("churn.crashes") > 0);
    }
}
