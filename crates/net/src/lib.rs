//! # lc-net — simulated network fabric
//!
//! The CORBA-LC deployment model runs on "a potentially large number of
//! hosts" connected by "possibly long and slow communication lines" (§2.3,
//! §2.4.3 of the paper). This crate models that substrate on top of the
//! [`lc_des`] kernel:
//!
//! * a [`Topology`] of **hosts** grouped into **sites** (a site ≈ one LAN;
//!   inter-site links are the slow WAN lines the paper worries about),
//! * a latency + bandwidth cost model with FIFO serialization at each
//!   host's uplink and downlink,
//! * **fault injection**: hosts crash and recover ([`Net::set_host_up`]),
//!   sites can be partitioned from each other, and [`churn`] drives a
//!   continuous crash/recovery process,
//! * byte/message accounting split into intra-site and inter-site traffic
//!   (the quantity the paper's "reduces network load and exploits
//!   locality" claim is about).
//!
//! The fabric is shared state (`Rc<RefCell<…>>`): host actors hold a
//! [`Net`] handle and call [`Net::send`] from inside their event handlers;
//! the fabric computes the delivery time and schedules a [`NetMsg`] for the
//! destination host's bound actor.

pub mod churn;
pub mod topology;

pub use churn::{ChurnConfig, ChurnDriver, ChurnHooks};
pub use topology::{DeviceClass, HostCfg, HostId, LinkClass, SiteId, Topology};

use lc_des::{ActorId, AnyMsg, Ctx, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// A message as delivered by the fabric to a host's actor.
///
/// Host actors downcast the [`AnyMsg`] they receive in
/// [`lc_des::Actor::handle`] to `NetMsg` and then downcast
/// [`NetMsg::payload`] to their own protocol type.
pub struct NetMsg {
    /// Sending host.
    pub from: HostId,
    /// Receiving host.
    pub to: HostId,
    /// Size on the wire in bytes (headers included by the caller).
    pub size: u64,
    /// The protocol payload.
    pub payload: AnyMsg,
}

/// Why a send was dropped instead of delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// The sending host is down.
    SenderDown,
    /// The destination host is down at send time.
    ReceiverDown,
    /// Sender and receiver are in different partition groups.
    Partitioned,
    /// Destination host has no bound actor (host exists but no node
    /// process is listening — e.g. during restart).
    Unbound,
}

struct HostState {
    cfg: HostCfg,
    up: bool,
    bound: Option<ActorId>,
    /// Partition group; hosts can talk iff groups match.
    group: u8,
    /// Time the uplink/downlink becomes free (FIFO serialization).
    up_free: SimTime,
    down_free: SimTime,
    bytes_sent: u64,
    bytes_recv: u64,
}

struct NetInner {
    topo: Topology,
    hosts: Vec<HostState>,
}

/// Handle to the shared network fabric. Cheap to clone.
#[derive(Clone)]
pub struct Net {
    inner: Rc<RefCell<NetInner>>,
}

impl Net {
    /// Build a fabric for `topo`. All hosts start up and unbound.
    pub fn new(topo: Topology) -> Self {
        let hosts = topo
            .hosts()
            .iter()
            .map(|cfg| HostState {
                cfg: cfg.clone(),
                up: true,
                bound: None,
                group: 0,
                up_free: SimTime::ZERO,
                down_free: SimTime::ZERO,
                bytes_sent: 0,
                bytes_recv: 0,
            })
            .collect();
        Net { inner: Rc::new(RefCell::new(NetInner { topo, hosts })) }
    }

    /// Number of hosts in the topology.
    pub fn host_count(&self) -> usize {
        self.inner.borrow().hosts.len()
    }

    /// All host ids.
    pub fn host_ids(&self) -> Vec<HostId> {
        (0..self.host_count() as u32).map(HostId).collect()
    }

    /// The site a host belongs to.
    pub fn site_of(&self, h: HostId) -> SiteId {
        self.inner.borrow().hosts[h.0 as usize].cfg.site
    }

    /// The host's static configuration.
    pub fn host_cfg(&self, h: HostId) -> HostCfg {
        self.inner.borrow().hosts[h.0 as usize].cfg.clone()
    }

    /// Bind the DES actor that receives this host's traffic.
    pub fn bind(&self, h: HostId, actor: ActorId) {
        self.inner.borrow_mut().hosts[h.0 as usize].bound = Some(actor);
    }

    /// The actor currently bound to a host, if any.
    pub fn bound_actor(&self, h: HostId) -> Option<ActorId> {
        self.inner.borrow().hosts[h.0 as usize].bound
    }

    /// Mark a host up or down. Going down clears nothing else: the layer
    /// above decides whether to kill/respawn the bound actor.
    pub fn set_host_up(&self, h: HostId, up: bool) {
        self.inner.borrow_mut().hosts[h.0 as usize].up = up;
    }

    /// Is the host currently up?
    pub fn is_up(&self, h: HostId) -> bool {
        self.inner.borrow().hosts[h.0 as usize].up
    }

    /// Put a host into partition group `g`; hosts communicate only within
    /// their group. Group 0 is the default connected component.
    pub fn set_partition_group(&self, h: HostId, g: u8) {
        self.inner.borrow_mut().hosts[h.0 as usize].group = g;
    }

    /// Heal all partitions (everyone back to group 0).
    pub fn heal_partitions(&self) {
        for h in self.inner.borrow_mut().hosts.iter_mut() {
            h.group = 0;
        }
    }

    /// Bytes sent / received by a host so far.
    pub fn host_traffic(&self, h: HostId) -> (u64, u64) {
        let inner = self.inner.borrow();
        let hs = &inner.hosts[h.0 as usize];
        (hs.bytes_sent, hs.bytes_recv)
    }

    /// Would a message from `a` to `b` currently be deliverable?
    pub fn reachable(&self, a: HostId, b: HostId) -> bool {
        let inner = self.inner.borrow();
        let (ha, hb) = (&inner.hosts[a.0 as usize], &inner.hosts[b.0 as usize]);
        ha.up && hb.up && ha.group == hb.group
    }

    /// One-way latency between two hosts' sites (no load, no serialization).
    pub fn base_latency(&self, a: HostId, b: HostId) -> SimTime {
        let inner = self.inner.borrow();
        inner
            .topo
            .latency(inner.hosts[a.0 as usize].cfg.site, inner.hosts[b.0 as usize].cfg.site)
    }

    /// Send `size` bytes of `payload` from host `from` to host `to`.
    ///
    /// On success schedules a [`NetMsg`] for the destination's bound actor
    /// and returns the delivery time. Records metrics under `net.*`.
    pub fn send<M: std::any::Any>(
        &self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        to: HostId,
        size: u64,
        payload: M,
    ) -> Result<SimTime, DropReason> {
        let now = ctx.now();
        let (target, deliver_at, class) = {
            let mut inner = self.inner.borrow_mut();
            if !inner.hosts[from.0 as usize].up {
                drop(inner);
                ctx.metrics().incr("net.drop.sender_down");
                return Err(DropReason::SenderDown);
            }
            if !inner.hosts[to.0 as usize].up {
                drop(inner);
                ctx.metrics().incr("net.drop.receiver_down");
                return Err(DropReason::ReceiverDown);
            }
            if inner.hosts[from.0 as usize].group != inner.hosts[to.0 as usize].group {
                drop(inner);
                ctx.metrics().incr("net.drop.partitioned");
                return Err(DropReason::Partitioned);
            }
            let Some(target) = inner.hosts[to.0 as usize].bound else {
                drop(inner);
                ctx.metrics().incr("net.drop.unbound");
                return Err(DropReason::Unbound);
            };

            let from_site = inner.hosts[from.0 as usize].cfg.site;
            let to_site = inner.hosts[to.0 as usize].cfg.site;
            let class = if from == to {
                LinkClass::Loopback
            } else {
                inner.topo.link_class(from_site, to_site)
            };
            let latency = inner.topo.latency(from_site, to_site);

            let deliver_at = if from == to {
                // Loopback: no serialization, a fixed tiny in-host hop.
                now + Topology::LOOPBACK_LATENCY
            } else {
                // Uplink FIFO serialization at the sender…
                let up_bw = inner.hosts[from.0 as usize].cfg.up_bw;
                let tx = bw_delay(size, up_bw);
                let start = now.max(inner.hosts[from.0 as usize].up_free);
                let up_done = start + tx;
                inner.hosts[from.0 as usize].up_free = up_done;
                // …propagation…
                let arrived = up_done + latency;
                // …downlink FIFO serialization at the receiver.
                let down_bw = inner.hosts[to.0 as usize].cfg.down_bw;
                let rx = bw_delay(size, down_bw);
                let start_rx = arrived.max(inner.hosts[to.0 as usize].down_free);
                let done = start_rx + rx;
                inner.hosts[to.0 as usize].down_free = done;
                done
            };

            inner.hosts[from.0 as usize].bytes_sent += size;
            inner.hosts[to.0 as usize].bytes_recv += size;
            (target, deliver_at, class)
        };

        ctx.metrics().incr("net.msgs");
        ctx.metrics().add("net.bytes", size);
        match class {
            LinkClass::Loopback => ctx.metrics().add("net.bytes.loopback", size),
            LinkClass::IntraSite => ctx.metrics().add("net.bytes.intra", size),
            LinkClass::InterSite => ctx.metrics().add("net.bytes.inter", size),
        }

        ctx.send_in(
            deliver_at.saturating_sub(now),
            target,
            NetMsg { from, to, size, payload: Box::new(payload) },
        );
        Ok(deliver_at)
    }

    /// Multicast: each receiver gets its own copy, but the per-copy cost is
    /// the shared uplink FIFO (models the paper's interest in
    /// multicast-based cohesion protocols). Returns how many copies were
    /// deliverable.
    pub fn multicast<M: std::any::Any + Clone>(
        &self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        tos: &[HostId],
        size: u64,
        payload: M,
    ) -> usize {
        let mut delivered = 0;
        for &to in tos {
            if to == from {
                continue;
            }
            if self.send(ctx, from, to, size, payload.clone()).is_ok() {
                delivered += 1;
            }
        }
        ctx.metrics().incr("net.multicasts");
        delivered
    }
}

/// Serialization delay of `size` bytes at `bw` bytes/sec.
fn bw_delay(size: u64, bw: f64) -> SimTime {
    debug_assert!(bw > 0.0);
    SimTime::from_secs_f64(size as f64 / bw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_des::{Actor, AnyMsgExt, Sim};

    /// Actor that records arrival times of NetMsgs.
    struct Sink {
        arrivals: Vec<(SimTime, u64)>,
    }
    impl Actor for Sink {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMsg) {
            let m = msg.downcast_msg::<NetMsg>().expect("NetMsg");
            self.arrivals.push((ctx.now(), m.size));
        }
    }

    /// Actor that sends `copies` messages when poked.
    struct Pusher {
        net: Net,
        from: HostId,
        to: HostId,
        size: u64,
        copies: u32,
    }
    struct Go;
    impl Actor for Pusher {
        fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMsg) {
            for _ in 0..self.copies {
                let _ = self.net.send(ctx, self.from, self.to, self.size, ());
            }
        }
    }

    fn two_host_net(up_bw: f64, down_bw: f64, latency_ms: u64) -> (Net, HostId, HostId) {
        let mut topo = Topology::new();
        let s0 = topo.add_site("a");
        let s1 = topo.add_site("b");
        topo.set_inter_site_latency(SimTime::from_millis(latency_ms));
        let h0 = topo.add_host(HostCfg::new(s0).bw(up_bw, down_bw));
        let h1 = topo.add_host(HostCfg::new(s1).bw(up_bw, down_bw));
        (Net::new(topo), h0, h1)
    }

    #[test]
    fn latency_plus_serialization() {
        // 1000 bytes at 1e6 B/s = 1ms tx + 1ms rx + 10ms latency.
        let (net, h0, h1) = two_host_net(1e6, 1e6, 10);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(Pusher { net: net.clone(), from: h0, to: h1, size: 1000, copies: 1 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        let arr = &sim.actor_as::<Sink>(sink).unwrap().arrivals;
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].0, SimTime::from_millis(12));
    }

    #[test]
    fn fifo_uplink_serializes_bursts() {
        // Two 1000-byte messages: second waits for the first's uplink slot.
        let (net, h0, h1) = two_host_net(1e6, 1e9, 10);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(Pusher { net: net.clone(), from: h0, to: h1, size: 1000, copies: 2 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        let arr = &sim.actor_as::<Sink>(sink).unwrap().arrivals;
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].0.saturating_sub(arr[0].0), SimTime::from_millis(1));
    }

    #[test]
    fn loopback_is_cheap_and_classified() {
        let (net, h0, _h1) = two_host_net(1e6, 1e6, 10);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h0, sink);
        struct SelfSend {
            net: Net,
            h: HostId,
        }
        impl Actor for SelfSend {
            fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMsg) {
                if msg.downcast_msg::<Go>().is_ok() {
                    self.net.send(ctx, self.h, self.h, 1_000_000, ()).unwrap();
                }
            }
        }
        // Rebind: the self-sender is the host actor and receives its own msg.
        let actor = sim.spawn(SelfSend { net: net.clone(), h: h0 });
        net.bind(h0, actor);
        sim.send_in(SimTime::ZERO, actor, Go);
        sim.run();
        assert_eq!(sim.metrics_ref().counter("net.bytes.loopback"), 1_000_000);
        // 1 MB over loopback arrives in the fixed loopback latency.
        assert_eq!(sim.now(), Topology::LOOPBACK_LATENCY);
    }

    #[test]
    fn down_hosts_drop_traffic() {
        let (net, h0, h1) = two_host_net(1e6, 1e6, 1);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(Pusher { net: net.clone(), from: h0, to: h1, size: 10, copies: 1 });
        net.bind(h0, pusher);
        net.set_host_up(h1, false);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        assert!(sim.actor_as::<Sink>(sink).unwrap().arrivals.is_empty());
        assert_eq!(sim.metrics_ref().counter("net.drop.receiver_down"), 1);
        assert!(!net.reachable(h0, h1));
        net.set_host_up(h1, true);
        assert!(net.reachable(h0, h1));
    }

    #[test]
    fn partitions_isolate_groups() {
        let (net, h0, h1) = two_host_net(1e6, 1e6, 1);
        net.set_partition_group(h1, 1);
        assert!(!net.reachable(h0, h1));
        net.heal_partitions();
        assert!(net.reachable(h0, h1));
    }

    #[test]
    fn traffic_accounting_by_class() {
        let mut topo = Topology::new();
        let s0 = topo.add_site("a");
        let h0 = topo.add_host(HostCfg::new(s0));
        let h1 = topo.add_host(HostCfg::new(s0));
        let net = Net::new(topo);
        let mut sim = Sim::new(1);
        let sink = sim.spawn(Sink { arrivals: vec![] });
        net.bind(h1, sink);
        let pusher =
            sim.spawn(Pusher { net: net.clone(), from: h0, to: h1, size: 500, copies: 1 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        assert_eq!(sim.metrics_ref().counter("net.bytes.intra"), 500);
        assert_eq!(sim.metrics_ref().counter("net.bytes.inter"), 0);
        assert_eq!(net.host_traffic(h0).0, 500);
        assert_eq!(net.host_traffic(h1).1, 500);
    }

    #[test]
    fn unbound_host_drops() {
        let (net, h0, h1) = two_host_net(1e6, 1e6, 1);
        let mut sim = Sim::new(1);
        let pusher =
            sim.spawn(Pusher { net: net.clone(), from: h0, to: h1, size: 10, copies: 1 });
        net.bind(h0, pusher);
        sim.send_in(SimTime::ZERO, pusher, Go);
        sim.run();
        assert_eq!(sim.metrics_ref().counter("net.drop.unbound"), 1);
    }

    #[test]
    fn multicast_reaches_all_up_receivers() {
        let mut topo = Topology::new();
        let s = topo.add_site("lan");
        let sender = topo.add_host(HostCfg::new(s));
        let rcv: Vec<HostId> = (0..5).map(|_| topo.add_host(HostCfg::new(s))).collect();
        let net = Net::new(topo);
        let mut sim = Sim::new(1);
        let sinks: Vec<_> = rcv
            .iter()
            .map(|&h| {
                let a = sim.spawn(Sink { arrivals: vec![] });
                net.bind(h, a);
                a
            })
            .collect();
        net.set_host_up(rcv[2], false);

        struct Mc {
            net: Net,
            from: HostId,
            tos: Vec<HostId>,
        }
        impl Actor for Mc {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMsg) {
                let n = self.net.multicast(ctx, self.from, &self.tos, 100, 7u32);
                assert_eq!(n, 4);
            }
        }
        let mc = sim.spawn(Mc { net: net.clone(), from: sender, tos: rcv.clone() });
        net.bind(sender, mc);
        sim.send_in(SimTime::ZERO, mc, Go);
        sim.run();
        for (i, s) in sinks.iter().enumerate() {
            let n = sim.actor_as::<Sink>(*s).unwrap().arrivals.len();
            assert_eq!(n, if i == 2 { 0 } else { 1 });
        }
    }
}
