//! Deterministic, seeded message-level fault injection.
//!
//! A [`FaultPlan`] describes what the network does to messages *after*
//! the sender has paid for them: per-link loss, delay jitter,
//! duplication, reordering, timed partitions, and scheduled node
//! crash/restart windows. The plan is threaded through `Net::send` by
//! [`crate::NetBuilder::fault_plan`] and composes with `churn.rs`
//! (random exponential crash/recover) — a plan's *scheduled* crashes and
//! the churn driver's *random* ones share the same `ChurnHooks`.
//!
//! Two properties matter for the experiments:
//!
//! 1. **Determinism.** The plan owns its *own* [`SimRng`], seeded
//!    independently of the simulation RNG. The same topology + plan +
//!    workload replays bit-identically, and a `Net` built *without* a
//!    plan draws zero fault randomness — experiment outputs at zero
//!    injected faults are byte-identical to a fault-free build.
//! 2. **Silent loss.** Fault drops are invisible to the sender:
//!    `Net::send` still returns `Ok(would-have-arrived)` and the sender
//!    still serializes the message onto its uplink (the bytes went out;
//!    the network lost them). Recovery is the caller's job — deadlines,
//!    retries and duplicate suppression live in `lc-orb`/`lc-core`, not
//!    here. This is distinct from the fail-fast `Err(DropReason)` path,
//!    which models conditions a real ORB can detect at connect time.

use crate::topology::HostId;
use lc_des::{SimRng, SimTime};
use std::collections::BTreeMap;

/// Per-link fault knobs. All-zero (the default) means a perfect link.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently lost in transit.
    pub drop_p: f64,
    /// Probability a message is delivered twice (the copy gets its own
    /// jitter draw, so the twins usually arrive apart).
    pub dup_p: f64,
    /// Max extra delivery delay, drawn uniformly from `[0, jitter]`.
    pub jitter: SimTime,
    /// Probability a message is held back by `reorder_window`, letting
    /// later traffic overtake it.
    pub reorder_p: f64,
    /// How long a reordered message is held.
    pub reorder_window: SimTime,
}

impl LinkFaults {
    /// A perfect link (no injected faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Set the silent-loss probability.
    pub fn drop_p(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Set the duplication probability.
    pub fn dup_p(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Set the max uniform extra delay.
    pub fn jitter(mut self, j: SimTime) -> Self {
        self.jitter = j;
        self
    }

    /// Set the reorder probability and hold-back window.
    pub fn reorder(mut self, p: f64, window: SimTime) -> Self {
        self.reorder_p = p;
        self.reorder_window = window;
        self
    }

    /// True when every knob is zero — lets `Net::send` skip RNG draws
    /// entirely so unaffected links stay deterministic w.r.t. a
    /// fault-free run.
    pub fn is_quiet(&self) -> bool {
        self.drop_p == 0.0
            && self.dup_p == 0.0
            && self.jitter == SimTime::ZERO
            && self.reorder_p == 0.0
    }
}

/// A timed symmetric network cut: while active, messages between the
/// isolated set and everyone else are severed (silently, like loss —
/// senders cannot tell a partition from congestion).
#[derive(Clone, Debug)]
pub struct PartitionWindow {
    /// Cut begins (inclusive).
    pub from: SimTime,
    /// Cut heals (exclusive).
    pub until: SimTime,
    /// Hosts on the minority side of the cut.
    pub isolated: Vec<HostId>,
}

/// A scheduled node outage, installed by `Net::install_drivers` as
/// control events (crash at `down_at`, optional restart at `up_at`).
#[derive(Clone, Copy, Debug)]
pub struct CrashWindow {
    /// Host to take down.
    pub host: HostId,
    /// When it crashes.
    pub down_at: SimTime,
    /// When it restarts (`None` = stays down).
    pub up_at: Option<SimTime>,
}

/// What the plan decided for one message.
pub(crate) enum Verdict {
    /// Deliver, possibly late, possibly twice.
    Deliver {
        /// Extra delay past the normal FIFO delivery time.
        extra: SimTime,
        /// `Some(extra delay)` for a duplicate copy.
        duplicate: Option<SimTime>,
    },
    /// Silently lost by the link's `drop_p`.
    Dropped,
    /// Silently cut by an active [`PartitionWindow`].
    Severed,
}

/// A deterministic, seeded schedule of message- and node-level faults.
///
/// Build fluently and hand to [`crate::NetBuilder::fault_plan`]:
///
/// ```ignore
/// let plan = FaultPlan::seeded(7)
///     .default_link(LinkFaults::none().drop_p(0.05).jitter(SimTime::from_millis(2)))
///     .link(HostId(0), HostId(1), LinkFaults::none().dup_p(0.5))
///     .partition(SimTime::from_secs(10), SimTime::from_secs(20), &[HostId(3)])
///     .crash(HostId(5), SimTime::from_secs(4), Some(SimTime::from_secs(9)));
/// let net = Net::builder(topo).fault_plan(plan).build();
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    rng: SimRng,
    default_link: LinkFaults,
    /// Directed per-link overrides, keyed `(from, to)`.
    links: BTreeMap<(HostId, HostId), LinkFaults>,
    partitions: Vec<PartitionWindow>,
    crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// A plan whose probabilistic draws replay deterministically from
    /// `seed` (independent of the simulation RNG).
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: SimRng::seed_from_u64(seed ^ 0xfa_017_fab),
            default_link: LinkFaults::default(),
            links: BTreeMap::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Faults applied to every link without an explicit override.
    pub fn default_link(mut self, faults: LinkFaults) -> Self {
        self.default_link = faults;
        self
    }

    /// Directed override for the `from → to` link.
    pub fn link(mut self, from: HostId, to: HostId, faults: LinkFaults) -> Self {
        self.links.insert((from, to), faults);
        self
    }

    /// Sever `isolated` from the rest of the network during `[from, until)`.
    pub fn partition(mut self, from: SimTime, until: SimTime, isolated: &[HostId]) -> Self {
        self.partitions.push(PartitionWindow { from, until, isolated: isolated.to_vec() });
        self
    }

    /// Crash `host` at `down_at`; restart at `up_at` if given.
    pub fn crash(mut self, host: HostId, down_at: SimTime, up_at: Option<SimTime>) -> Self {
        self.crashes.push(CrashWindow { host, down_at, up_at });
        self
    }

    /// The scheduled crash windows (armed by `Net::install_drivers`).
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// The faults governing the `from → to` link right now.
    pub fn link_faults(&self, from: HostId, to: HostId) -> LinkFaults {
        self.links.get(&(from, to)).copied().unwrap_or(self.default_link)
    }

    /// Is the `from → to` path cut by an active partition window?
    pub fn severed(&self, from: HostId, to: HostId, now: SimTime) -> bool {
        self.partitions.iter().any(|w| {
            now >= w.from
                && now < w.until
                && (w.isolated.contains(&from) != w.isolated.contains(&to))
        })
    }

    /// Judge one message on the `from → to` link. Draws from the plan's
    /// private RNG only when the link has non-zero knobs.
    pub(crate) fn decide(&mut self, from: HostId, to: HostId, now: SimTime) -> Verdict {
        if self.severed(from, to, now) {
            return Verdict::Severed;
        }
        let f = self.link_faults(from, to);
        if f.is_quiet() {
            return Verdict::Deliver { extra: SimTime::ZERO, duplicate: None };
        }
        if f.drop_p > 0.0 && self.rng.gen_f64() < f.drop_p {
            return Verdict::Dropped;
        }
        let mut extra = SimTime::ZERO;
        if f.jitter > SimTime::ZERO {
            extra += f.jitter.mul_f64(self.rng.gen_f64());
        }
        if f.reorder_p > 0.0 && self.rng.gen_f64() < f.reorder_p {
            extra += f.reorder_window;
        }
        let duplicate = if f.dup_p > 0.0 && self.rng.gen_f64() < f.dup_p {
            let mut dup_extra = SimTime::ZERO;
            if f.jitter > SimTime::ZERO {
                dup_extra += f.jitter.mul_f64(self.rng.gen_f64());
            }
            Some(dup_extra)
        } else {
            None
        };
        Verdict::Deliver { extra, duplicate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_overrides_and_default() {
        let plan = FaultPlan::seeded(1)
            .default_link(LinkFaults::none().drop_p(0.5))
            .link(HostId(0), HostId(1), LinkFaults::none());
        assert_eq!(plan.link_faults(HostId(0), HostId(1)), LinkFaults::none());
        // directed: the reverse path keeps the default
        assert_eq!(plan.link_faults(HostId(1), HostId(0)).drop_p, 0.5);
        assert_eq!(plan.link_faults(HostId(2), HostId(3)).drop_p, 0.5);
    }

    #[test]
    fn partition_windows_are_timed_and_symmetric() {
        let plan = FaultPlan::seeded(1).partition(
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            &[HostId(1), HostId(2)],
        );
        let (a, b, c) = (HostId(0), HostId(1), HostId(2));
        assert!(!plan.severed(a, b, SimTime::from_secs(5)));
        assert!(plan.severed(a, b, SimTime::from_secs(10)));
        assert!(plan.severed(b, a, SimTime::from_secs(15)));
        // both inside the isolated set: still connected
        assert!(!plan.severed(b, c, SimTime::from_secs(15)));
        assert!(!plan.severed(a, b, SimTime::from_secs(20)));
    }

    #[test]
    fn decide_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::seeded(seed).default_link(
                LinkFaults::none()
                    .drop_p(0.3)
                    .dup_p(0.2)
                    .jitter(SimTime::from_millis(5))
                    .reorder(0.1, SimTime::from_millis(20)),
            );
            (0..200)
                .map(|i| {
                    match plan.decide(HostId(0), HostId(1), SimTime::from_millis(i)) {
                        Verdict::Dropped => (0u64, 0u64, false),
                        Verdict::Severed => (1, 0, false),
                        Verdict::Deliver { extra, duplicate } => {
                            (2, extra.as_nanos(), duplicate.is_some())
                        }
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn quiet_links_draw_no_randomness() {
        let mut faulty = FaultPlan::seeded(9).link(
            HostId(0),
            HostId(1),
            LinkFaults::none().drop_p(1.0),
        );
        // quiet link first: must not advance the RNG
        assert!(matches!(
            faulty.decide(HostId(2), HostId(3), SimTime::ZERO),
            Verdict::Deliver { extra: SimTime::ZERO, duplicate: None }
        ));
        // the faulty link then sees the same stream as a fresh plan
        assert!(matches!(faulty.decide(HostId(0), HostId(1), SimTime::ZERO), Verdict::Dropped));
    }
}
