//! Network topology: hosts grouped into sites, with per-class link costs.
//!
//! A *site* models one LAN (an office, a lab, a campus building); hosts in
//! the same site talk over fast, low-latency links, while inter-site
//! traffic crosses the slow WAN lines the paper's packaging and migration
//! requirements are written for. Host configurations also carry the
//! *hardware static characteristics* the Resource Manager reflects
//! (CPU power, memory, device class), so the deployment planner can match
//! component hardware requirements against them.

use lc_des::SimTime;

/// Index of a host in the [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Index of a site (LAN) in the [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub u16);

/// Classification of a link for traffic accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkClass {
    /// Same host.
    Loopback,
    /// Same site (LAN).
    IntraSite,
    /// Different sites (WAN).
    InterSite,
}

/// Device class of a host — drives the "integration of tiny devices"
/// requirement (R8): a `Pda` has little memory, a slow CPU and usually a
/// slow last-hop link, and can only host components marked as fitting it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DeviceClass {
    /// Ordinary user workstation.
    #[default]
    Workstation,
    /// High-end server.
    Server,
    /// Personal digital assistant / handheld: tiny memory, slow CPU.
    Pda,
}

/// Static configuration of one host.
#[derive(Clone, Debug)]
pub struct HostCfg {
    /// Site (LAN) this host lives in.
    pub site: SiteId,
    /// Uplink bandwidth in bytes/second.
    pub up_bw: f64,
    /// Downlink bandwidth in bytes/second.
    pub down_bw: f64,
    /// Relative CPU power (1.0 = reference workstation).
    pub cpu_power: f64,
    /// Physical memory in bytes.
    pub memory: u64,
    /// Device class for placement matching.
    pub device: DeviceClass,
}

impl HostCfg {
    /// A reference workstation on `site`: 100 Mbit/s symmetric, 512 MiB.
    pub fn new(site: SiteId) -> Self {
        HostCfg {
            site,
            up_bw: 12_500_000.0,
            down_bw: 12_500_000.0,
            cpu_power: 1.0,
            memory: 512 << 20,
            device: DeviceClass::Workstation,
        }
    }

    /// Override both link bandwidths (bytes/second).
    pub fn bw(mut self, up: f64, down: f64) -> Self {
        assert!(up > 0.0 && down > 0.0, "bandwidth must be positive");
        self.up_bw = up;
        self.down_bw = down;
        self
    }

    /// Override CPU power.
    pub fn cpu(mut self, power: f64) -> Self {
        assert!(power > 0.0, "cpu power must be positive");
        self.cpu_power = power;
        self
    }

    /// Override memory size.
    pub fn mem(mut self, bytes: u64) -> Self {
        self.memory = bytes;
        self
    }

    /// Mark as a server-class host (4x CPU, 4 GiB, gigabit).
    pub fn server(mut self) -> Self {
        self.device = DeviceClass::Server;
        self.cpu_power = 4.0;
        self.memory = 4 << 30;
        self.up_bw = 125_000_000.0;
        self.down_bw = 125_000_000.0;
        self
    }

    /// Mark as a PDA-class host (1/10 CPU, 16 MiB, slow wireless link).
    pub fn pda(mut self) -> Self {
        self.device = DeviceClass::Pda;
        self.cpu_power = 0.1;
        self.memory = 16 << 20;
        self.up_bw = 16_000.0;
        self.down_bw = 64_000.0;
        self
    }
}

/// The static shape of the network.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    sites: Vec<String>,
    hosts: Vec<HostCfg>,
    intra_latency: SimTime,
    inter_latency: SimTime,
    /// Optional per-pair overrides keyed by (min, max) site index.
    overrides: Vec<((SiteId, SiteId), SimTime)>,
}

impl Topology {
    /// Fixed cost of a same-host message.
    pub const LOOPBACK_LATENCY: SimTime = SimTime::from_micros(2);

    /// Empty topology with LAN latency 0.2 ms and WAN latency 20 ms.
    pub fn new() -> Self {
        Topology {
            sites: Vec::new(),
            hosts: Vec::new(),
            intra_latency: SimTime::from_micros(200),
            inter_latency: SimTime::from_millis(20),
            overrides: Vec::new(),
        }
    }

    /// Add a named site and return its id.
    pub fn add_site(&mut self, name: &str) -> SiteId {
        assert!(self.sites.len() < u16::MAX as usize, "too many sites");
        self.sites.push(name.to_owned());
        SiteId((self.sites.len() - 1) as u16)
    }

    /// Add a host and return its id.
    pub fn add_host(&mut self, cfg: HostCfg) -> HostId {
        assert!((cfg.site.0 as usize) < self.sites.len(), "unknown site");
        self.hosts.push(cfg);
        HostId((self.hosts.len() - 1) as u32)
    }

    /// Site name.
    pub fn site_name(&self, s: SiteId) -> &str {
        &self.sites[s.0 as usize]
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// All host configurations, indexed by [`HostId`].
    pub fn hosts(&self) -> &[HostCfg] {
        &self.hosts
    }

    /// Set the default intra-site (LAN) latency.
    pub fn set_intra_site_latency(&mut self, l: SimTime) {
        self.intra_latency = l;
    }

    /// Set the default inter-site (WAN) latency.
    pub fn set_inter_site_latency(&mut self, l: SimTime) {
        self.inter_latency = l;
    }

    /// Override the latency between one specific pair of sites.
    pub fn set_site_pair_latency(&mut self, a: SiteId, b: SiteId, l: SimTime) {
        let key = (a.min(b), a.max(b));
        if let Some(e) = self.overrides.iter_mut().find(|(k, _)| *k == key) {
            e.1 = l;
        } else {
            self.overrides.push((key, l));
        }
    }

    /// One-way latency between two sites.
    pub fn latency(&self, a: SiteId, b: SiteId) -> SimTime {
        if a == b {
            return self.intra_latency;
        }
        let key = (a.min(b), a.max(b));
        self.overrides
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, l)| *l)
            .unwrap_or(self.inter_latency)
    }

    /// Link classification between two sites.
    pub fn link_class(&self, a: SiteId, b: SiteId) -> LinkClass {
        if a == b {
            LinkClass::IntraSite
        } else {
            LinkClass::InterSite
        }
    }

    // ---- canned topologies used by experiments -------------------------

    /// One LAN with `n` reference workstations.
    pub fn lan(n: usize) -> Self {
        let mut t = Topology::new();
        let s = t.add_site("lan0");
        for _ in 0..n {
            t.add_host(HostCfg::new(s));
        }
        t
    }

    /// `sites` LANs with `hosts_per_site` workstations each, one of which
    /// per site is a server.
    pub fn campus(sites: usize, hosts_per_site: usize) -> Self {
        let mut t = Topology::new();
        for i in 0..sites {
            let s = t.add_site(&format!("site{i}"));
            for j in 0..hosts_per_site {
                let cfg = if j == 0 { HostCfg::new(s).server() } else { HostCfg::new(s) };
                t.add_host(cfg);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_and_overrides() {
        let mut t = Topology::new();
        let a = t.add_site("a");
        let b = t.add_site("b");
        let c = t.add_site("c");
        assert_eq!(t.latency(a, a), SimTime::from_micros(200));
        assert_eq!(t.latency(a, b), SimTime::from_millis(20));
        t.set_site_pair_latency(b, a, SimTime::from_millis(5));
        assert_eq!(t.latency(a, b), SimTime::from_millis(5));
        assert_eq!(t.latency(b, a), SimTime::from_millis(5));
        assert_eq!(t.latency(a, c), SimTime::from_millis(20));
        t.set_site_pair_latency(a, b, SimTime::from_millis(7));
        assert_eq!(t.latency(a, b), SimTime::from_millis(7));
    }

    #[test]
    fn canned_topologies() {
        let lan = Topology::lan(8);
        assert_eq!(lan.hosts().len(), 8);
        assert_eq!(lan.site_count(), 1);
        let campus = Topology::campus(4, 4);
        assert_eq!(campus.hosts().len(), 16);
        assert_eq!(campus.site_count(), 4);
        // first host of each site is a server
        assert_eq!(campus.hosts()[0].device, DeviceClass::Server);
        assert_eq!(campus.hosts()[1].device, DeviceClass::Workstation);
        assert_eq!(campus.hosts()[4].device, DeviceClass::Server);
    }

    #[test]
    fn host_cfg_builders() {
        let mut t = Topology::new();
        let s = t.add_site("s");
        let pda = HostCfg::new(s).pda();
        assert_eq!(pda.device, DeviceClass::Pda);
        assert!(pda.cpu_power < 1.0);
        assert!(pda.memory < 64 << 20);
        let srv = HostCfg::new(s).server();
        assert!(srv.cpu_power > 1.0);
        let custom = HostCfg::new(s).bw(1.0, 2.0).cpu(3.0).mem(7);
        assert_eq!(custom.up_bw, 1.0);
        assert_eq!(custom.down_bw, 2.0);
        assert_eq!(custom.cpu_power, 3.0);
        assert_eq!(custom.memory, 7);
    }

    #[test]
    #[should_panic]
    fn host_needs_valid_site() {
        let mut t = Topology::new();
        t.add_host(HostCfg::new(SiteId(3)));
    }
}
