//! Serialization of the DOM back to XML text.
//!
//! Output is deterministic (attribute and child order preserved) and
//! minimal: no pretty-printing is inserted inside mixed content, so
//! `parse(to_string(e)) == e` holds for any tree whose text nodes are
//! trimmed and non-adjacent (the parser normalizes both properties).

use crate::dom::{Element, Node};

/// Serialize a document: XML declaration plus the root element.
pub fn to_string(root: &Element) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("<?xml version=\"1.0\"?>");
    write_element(root, &mut out);
    out
}

fn write_element(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        escape_into(v, true, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for child in &e.children {
        match child {
            Node::Element(c) => write_element(c, out),
            Node::Text(t) => escape_into(t, false, out),
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

/// Escape XML-special characters. Inside attribute values (`attr = true`)
/// quotes must also be escaped.
fn escape_into(s: &str, attr: bool, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            '\'' if attr => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn writes_and_escapes() {
        let e = Element::new("desc")
            .with_attr("title", "a \"quoted\" <name>")
            .with_text("1 < 2 && 3 > 2");
        let s = to_string(&e);
        assert_eq!(
            s,
            "<?xml version=\"1.0\"?><desc title=\"a &quot;quoted&quot; &lt;name&gt;\">\
             1 &lt; 2 &amp;&amp; 3 &gt; 2</desc>"
        );
        assert_eq!(parse(&s).unwrap(), e);
    }

    #[test]
    fn self_closing_for_empty() {
        let e = Element::new("code").with_attr("file", "x.so");
        assert_eq!(to_string(&e), "<?xml version=\"1.0\"?><code file=\"x.so\"/>");
    }

    #[test]
    fn nested_round_trip() {
        let e = Element::new("softpkg").with_attr("name", "A").with_child(
            Element::new("implementation")
                .with_attr("os", "linux")
                .with_child(Element::new("code").with_attr("file", "a.so")),
        );
        assert_eq!(parse(&to_string(&e)).unwrap(), e);
    }
}
