//! Recursive-descent XML parser.
//!
//! Supports the subset CORBA-LC descriptors need: one root element, nested
//! elements, attributes (single- or double-quoted), character data with the
//! five predefined entities plus decimal/hex character references,
//! comments, CDATA sections, and a leading `<?xml …?>` declaration or
//! `<!DOCTYPE …>` (both skipped). Inter-element whitespace-only text is
//! discarded, as descriptor consumers never care about indentation.

use crate::dom::{Element, Node};

/// A parse failure with 1-based line/column of the offending byte.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete document, returning its root element.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser { b: input.as_bytes(), pos: 0 };
    p.skip_prolog()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos < p.b.len() {
        return Err(p.err("content after document root"));
    }
    Ok(root)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        let (mut line, mut col) = (1u32, 1u32);
        for &c in &self.b[..self.pos.min(self.b.len())] {
            if c == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError { msg: msg.to_owned(), line, col }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.b[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn skip_until(&mut self, pat: &str) -> Result<(), ParseError> {
        match self.b[self.pos..]
            .windows(pat.len())
            .position(|w| w == pat.as_bytes())
        {
            Some(i) => {
                self.pos += i + pat.len();
                Ok(())
            }
            None => Err(self.err(&format!("unterminated construct, expected '{pat}'"))),
        }
    }

    /// Skip `<?xml …?>`, `<!DOCTYPE …>`, comments and whitespace.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // No internal-subset support: skip to the first '>'.
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skip trailing comments/whitespace after the root element.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let first = self.b[start];
        if !(first.is_ascii_alphabetic() || first == b'_' || first == b':') {
            return Err(self.err("names must start with a letter, '_' or ':'"));
        }
        Ok(std::str::from_utf8(&self.b[start..self.pos]).expect("ascii").to_owned())
    }

    fn attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'<') => return Err(self.err("'<' in attribute value")),
                Some(b'&') => out.push(self.entity()?),
                Some(c) => {
                    // attribute values are arbitrary UTF-8; copy bytes
                    let ch_len = utf8_len(c);
                    let s = std::str::from_utf8(&self.b[self.pos..self.pos + ch_len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn entity(&mut self) -> Result<char, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let end = self.b[self.pos..]
            .iter()
            .position(|&c| c == b';')
            .ok_or_else(|| self.err("unterminated entity"))?;
        let body = std::str::from_utf8(&self.b[self.pos..self.pos + end])
            .map_err(|_| self.err("invalid UTF-8 in entity"))?;
        let ch = match body {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "quot" => '"',
            "apos" => '\'',
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                let code = u32::from_str_radix(&body[2..], 16)
                    .map_err(|_| self.err("bad hex character reference"))?;
                char::from_u32(code).ok_or_else(|| self.err("invalid character reference"))?
            }
            _ if body.starts_with('#') => {
                let code = body[1..]
                    .parse::<u32>()
                    .map_err(|_| self.err("bad decimal character reference"))?;
                char::from_u32(code).ok_or_else(|| self.err("invalid character reference"))?
            }
            _ => return Err(self.err(&format!("unknown entity '&{body};'"))),
        };
        self.pos += end + 1;
        Ok(ch)
    }

    fn element(&mut self) -> Result<Element, ParseError> {
        self.expect(b'<')?;
        let name = self.name()?;
        let mut elem = Element::new(&name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(elem); // self-closing
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let value = self.attr_value()?;
                    if elem.attr(&key).is_some() {
                        return Err(self.err(&format!("duplicate attribute '{key}'")));
                    }
                    elem.attrs.push((key, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }

        // Content until the matching end tag.
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(&format!("missing </{name}>"))),
                Some(b'<') => {
                    flush_text(&mut text, &mut elem);
                    if self.starts_with("</") {
                        self.bump(2);
                        let end_name = self.name()?;
                        if end_name != name {
                            return Err(
                                self.err(&format!("expected </{name}>, found </{end_name}>"))
                            );
                        }
                        self.skip_ws();
                        self.expect(b'>')?;
                        return Ok(elem);
                    } else if self.starts_with("<!--") {
                        self.skip_until("-->")?;
                    } else if self.starts_with("<![CDATA[") {
                        self.bump("<![CDATA[".len());
                        let start = self.pos;
                        self.skip_until("]]>")?;
                        let raw = &self.b[start..self.pos - 3];
                        let s =
                            std::str::from_utf8(raw).map_err(|_| self.err("invalid UTF-8"))?;
                        elem.children.push(Node::Text(s.to_owned()));
                    } else if self.starts_with("<?") {
                        self.skip_until("?>")?;
                    } else {
                        let child = self.element()?;
                        elem.children.push(Node::Element(child));
                    }
                }
                Some(b'&') => text.push(self.entity()?),
                Some(c) => {
                    let ch_len = utf8_len(c);
                    let s = std::str::from_utf8(&self.b[self.pos..self.pos + ch_len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    text.push_str(s);
                    self.pos += ch_len;
                }
            }
        }
    }
}

/// Push accumulated character data as a text node unless it is pure
/// inter-element whitespace.
fn flush_text(buf: &mut String, elem: &mut Element) {
    if !buf.is_empty() {
        if !buf.chars().all(|c| c.is_ascii_whitespace()) {
            // Trim the indentation noise around real content.
            let trimmed = buf.trim();
            match elem.children.last_mut() {
                Some(Node::Text(prev)) => prev.push_str(trimmed),
                _ => elem.children.push(Node::Text(trimmed.to_owned())),
            }
        }
        buf.clear();
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_document() {
        let doc = r#"<?xml version="1.0"?>
<!-- component descriptor -->
<softpkg name="Decoder" version="1.0">
  <implementation arch="x86" os="linux">
    <code file="decoder.so"/>
  </implementation>
  <description>An MPEG &amp; AVI decoder &lt;fast&gt;</description>
</softpkg>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "softpkg");
        assert_eq!(root.attr("name"), Some("Decoder"));
        let imp = root.child("implementation").unwrap();
        assert_eq!(imp.attr("arch"), Some("x86"));
        assert_eq!(imp.child("code").unwrap().attr("file"), Some("decoder.so"));
        assert_eq!(root.child("description").unwrap().text(), "An MPEG & AVI decoder <fast>");
    }

    #[test]
    fn entities_and_char_refs() {
        let root = parse("<t a='&quot;x&apos;'>&#65;&#x42;</t>").unwrap();
        assert_eq!(root.attr("a"), Some("\"x'"));
        assert_eq!(root.text(), "AB");
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let root = parse("<t><![CDATA[a < b && c]]></t>").unwrap();
        assert_eq!(root.text(), "a < b && c");
    }

    #[test]
    fn doctype_and_pi_skipped() {
        let root = parse("<!DOCTYPE softpkg><?pi data?><t/>").unwrap();
        assert_eq!(root.name, "t");
    }

    #[test]
    fn errors_carry_position() {
        let e = parse("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("</b>"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a></a><b></b>").is_err());
        assert!(parse("<a x='1' x='2'/>").is_err());
        assert!(parse("<1bad/>").is_err());
        assert!(parse("<a>&nope;</a>").is_err());
        assert!(parse("<a b=c/>").is_err());
        assert!(parse("<a b='<'/>").is_err());
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let root = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(root.children.len(), 2);
    }

    #[test]
    fn unicode_content() {
        let root = parse("<t name='café'>münü — 日本語</t>").unwrap();
        assert_eq!(root.attr("name"), Some("café"));
        assert_eq!(root.text(), "münü — 日本語");
    }
}
