//! # lc-xml — minimal XML engine for CORBA-LC descriptors
//!
//! The paper specifies that component meta-data "is described using XML
//! files for convenience … The Document Type Definitions (DTDs) describing
//! those files are based upon the WWW Consortium's Open Software
//! Descriptor" (§2.1.1), and that CORBA-LC deliberately uses *plain IDL +
//! XML* instead of the CCM's IDL+CIDL extension so stock CORBA 2 tooling
//! keeps working (§2.1.2).
//!
//! This crate implements the XML substrate from scratch (no external
//! dependencies are sanctioned for this):
//!
//! * [`dom`] — a small document object model ([`Element`], [`Node`]),
//! * [`parser`] — a recursive-descent parser with positioned errors,
//! * [`writer`] — serialization with proper escaping (round-trips the DOM),
//! * [`schema`] — a DTD-like validator: required/optional attributes and
//!   child-element multiplicities, used to check the OSD-style package,
//!   component and assembly descriptors before installation.

pub mod dom;
pub mod parser;
pub mod schema;
pub mod writer;

pub use dom::{Element, Node};
pub use parser::{parse, ParseError};
pub use schema::{AttrRule, ChildRule, ElementRule, Multiplicity, Schema, SchemaError};
pub use writer::to_string;

#[cfg(test)]
mod proptests {
    use super::*;
    use lc_prop::{alphabet, check, Gen};

    fn gen_name(g: &mut Gen) -> String {
        let mut s = g.string_of(alphabet::ALPHA, 1..2);
        s.push_str(&g.string_of(alphabet::NAME, 0..13));
        s
    }

    fn gen_text(g: &mut Gen) -> String {
        // Arbitrary printable text including XML-special characters; the
        // writer must escape whatever we throw at it.
        g.ascii_printable(0..41)
    }

    /// Text nodes without leading/trailing whitespace: the parser trims
    /// inter-element whitespace.
    fn gen_trimmed_text(g: &mut Gen) -> String {
        const NON_SPACE: &str = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";
        let mut s = g.string_of(NON_SPACE, 1..2);
        s.push_str(&g.ascii_printable(0..21));
        s.push_str(&g.string_of(NON_SPACE, 1..2));
        s
    }

    fn gen_element(g: &mut Gen, depth: usize) -> Element {
        let mut e = Element::new(&gen_name(g));
        for _ in 0..g.gen_range(0..3usize) {
            let (k, v) = (gen_name(g), gen_text(g));
            if !e.attrs.iter().any(|(ek, _)| *ek == k) {
                e.set_attr(&k, &v);
            }
        }
        if depth > 0 {
            for _ in 0..g.gen_range(0..4usize) {
                let c = if g.gen_bool() {
                    Node::Element(gen_element(g, depth - 1))
                } else {
                    Node::Text(gen_trimmed_text(g))
                };
                // Merge adjacent text nodes to keep round-trips exact.
                match (&c, e.children.last_mut()) {
                    (Node::Text(t), Some(Node::Text(prev))) => prev.push_str(t),
                    _ => e.children.push(c),
                }
            }
        }
        e
    }

    #[test]
    fn write_parse_round_trips() {
        check("write_parse_round_trips", |g| {
            let depth = g.gen_range(0..4usize);
            let e = gen_element(g, depth);
            let s = to_string(&e);
            let back = parse(&s).expect("own output must parse");
            assert_eq!(e, back);
        });
    }
}
