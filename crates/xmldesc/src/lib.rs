//! # lc-xml — minimal XML engine for CORBA-LC descriptors
//!
//! The paper specifies that component meta-data "is described using XML
//! files for convenience … The Document Type Definitions (DTDs) describing
//! those files are based upon the WWW Consortium's Open Software
//! Descriptor" (§2.1.1), and that CORBA-LC deliberately uses *plain IDL +
//! XML* instead of the CCM's IDL+CIDL extension so stock CORBA 2 tooling
//! keeps working (§2.1.2).
//!
//! This crate implements the XML substrate from scratch (no external
//! dependencies are sanctioned for this):
//!
//! * [`dom`] — a small document object model ([`Element`], [`Node`]),
//! * [`parser`] — a recursive-descent parser with positioned errors,
//! * [`writer`] — serialization with proper escaping (round-trips the DOM),
//! * [`schema`] — a DTD-like validator: required/optional attributes and
//!   child-element multiplicities, used to check the OSD-style package,
//!   component and assembly descriptors before installation.

pub mod dom;
pub mod parser;
pub mod schema;
pub mod writer;

pub use dom::{Element, Node};
pub use parser::{parse, ParseError};
pub use schema::{AttrRule, ChildRule, ElementRule, Multiplicity, Schema, SchemaError};
pub use writer::to_string;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn name_strategy() -> impl Strategy<Value = String> {
        "[a-zA-Z][a-zA-Z0-9_-]{0,12}"
    }

    fn text_strategy() -> impl Strategy<Value = String> {
        // Arbitrary printable text including XML-special characters; the
        // writer must escape whatever we throw at it.
        "[ -~]{0,40}"
    }

    fn element_strategy() -> impl Strategy<Value = Element> {
        let leaf =
            (name_strategy(), prop::collection::vec((name_strategy(), text_strategy()), 0..3))
                .prop_map(|(name, attrs)| {
                    let mut e = Element::new(&name);
                    for (k, v) in attrs {
                        if !e.attrs.iter().any(|(ek, _)| *ek == k) {
                            e.set_attr(&k, &v);
                        }
                    }
                    e
                });
        leaf.prop_recursive(3, 24, 4, |inner| {
            (
                name_strategy(),
                prop::collection::vec((name_strategy(), text_strategy()), 0..3),
                prop::collection::vec(
                    prop_oneof![
                        inner.prop_map(Node::Element),
                        // Text nodes without leading/trailing whitespace:
                        // the parser trims inter-element whitespace.
                        "[!-~][ -~]{0,20}[!-~]".prop_map(Node::Text),
                    ],
                    0..4,
                ),
            )
                .prop_map(|(name, attrs, children)| {
                    let mut e = Element::new(&name);
                    for (k, v) in attrs {
                        if !e.attrs.iter().any(|(ek, _)| *ek == k) {
                            e.set_attr(&k, &v);
                        }
                    }
                    // Merge adjacent text nodes to keep round-trips exact.
                    for c in children {
                        match (&c, e.children.last_mut()) {
                            (Node::Text(t), Some(Node::Text(prev))) => prev.push_str(t),
                            _ => e.children.push(c),
                        }
                    }
                    e
                })
        })
    }

    proptest! {
        #[test]
        fn write_parse_round_trips(e in element_strategy()) {
            let s = to_string(&e);
            let back = parse(&s).expect("own output must parse");
            prop_assert_eq!(e, back);
        }
    }
}
