//! DTD-like validation for descriptor documents.
//!
//! The paper bases its descriptor DTDs on the W3C Open Software Descriptor
//! (OSD). This module provides the validation machinery those DTDs need:
//! per-element rules for attributes (required / optional / enumerated) and
//! for child elements (multiplicity constraints). The concrete CORBA-LC
//! descriptor schemas are defined where the descriptors live (`lc-pkg` and
//! `lc-core`); this module is schema-agnostic.

use crate::dom::Element;
use std::collections::BTreeMap;

/// How many times a child element may occur.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Multiplicity {
    /// Exactly once.
    One,
    /// Zero or one.
    Optional,
    /// Zero or more.
    Many,
    /// One or more.
    AtLeastOne,
}

impl Multiplicity {
    fn check(self, n: usize) -> bool {
        match self {
            Multiplicity::One => n == 1,
            Multiplicity::Optional => n <= 1,
            Multiplicity::Many => true,
            Multiplicity::AtLeastOne => n >= 1,
        }
    }
}

/// Rule for one attribute of an element.
#[derive(Clone, Debug)]
pub struct AttrRule {
    /// Attribute name.
    pub name: String,
    /// Must it be present?
    pub required: bool,
    /// If non-empty, the value must be one of these.
    pub one_of: Vec<String>,
}

impl AttrRule {
    /// A required free-form attribute.
    pub fn required(name: &str) -> Self {
        AttrRule { name: name.to_owned(), required: true, one_of: Vec::new() }
    }
    /// An optional free-form attribute.
    pub fn optional(name: &str) -> Self {
        AttrRule { name: name.to_owned(), required: false, one_of: Vec::new() }
    }
    /// Restrict the value to an enumeration.
    pub fn one_of(mut self, values: &[&str]) -> Self {
        self.one_of = values.iter().map(|s| (*s).to_owned()).collect();
        self
    }
}

/// Rule for one kind of child element.
#[derive(Clone, Debug)]
pub struct ChildRule {
    /// Child tag name.
    pub name: String,
    /// Occurrence constraint.
    pub mult: Multiplicity,
}

/// Rules for one element type.
#[derive(Clone, Debug, Default)]
pub struct ElementRule {
    /// Attribute rules. Attributes not listed are rejected.
    pub attrs: Vec<AttrRule>,
    /// Child rules. Child elements not listed are rejected.
    pub children: Vec<ChildRule>,
    /// May the element contain (non-whitespace) text?
    pub allow_text: bool,
}

impl ElementRule {
    /// Start an empty rule.
    pub fn new() -> Self {
        Self::default()
    }
    /// Add an attribute rule.
    pub fn attr(mut self, rule: AttrRule) -> Self {
        self.attrs.push(rule);
        self
    }
    /// Add a child rule.
    pub fn child(mut self, name: &str, mult: Multiplicity) -> Self {
        self.children.push(ChildRule { name: name.to_owned(), mult });
        self
    }
    /// Allow text content.
    pub fn text(mut self) -> Self {
        self.allow_text = true;
        self
    }
}

/// A validation failure: the element path plus a message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SchemaError {
    /// Slash-separated path from the root, e.g. `softpkg/implementation`.
    pub path: String,
    /// What rule was violated.
    pub msg: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schema violation at {}: {}", self.path, self.msg)
    }
}

impl std::error::Error for SchemaError {}

/// A set of element rules, keyed by tag name, with a designated root.
#[derive(Clone, Debug)]
pub struct Schema {
    root: String,
    rules: BTreeMap<String, ElementRule>,
}

impl Schema {
    /// New schema whose document root must be `root`.
    pub fn new(root: &str) -> Self {
        Schema { root: root.to_owned(), rules: BTreeMap::new() }
    }

    /// Define (or replace) the rule for element `name`.
    pub fn element(mut self, name: &str, rule: ElementRule) -> Self {
        self.rules.insert(name.to_owned(), rule);
        self
    }

    /// Validate a document against the schema.
    pub fn validate(&self, root: &Element) -> Result<(), SchemaError> {
        if root.name != self.root {
            return Err(SchemaError {
                path: root.name.clone(),
                msg: format!("expected document root <{}>", self.root),
            });
        }
        self.validate_at(root, &root.name)
    }

    fn validate_at(&self, e: &Element, path: &str) -> Result<(), SchemaError> {
        let rule = self.rules.get(&e.name).ok_or_else(|| SchemaError {
            path: path.to_owned(),
            msg: format!("unknown element <{}>", e.name),
        })?;

        // Attributes.
        for ar in &rule.attrs {
            match e.attr(&ar.name) {
                None if ar.required => {
                    return Err(SchemaError {
                        path: path.to_owned(),
                        msg: format!("missing required attribute '{}'", ar.name),
                    });
                }
                Some(v) if !ar.one_of.is_empty() && !ar.one_of.iter().any(|o| o == v) => {
                    return Err(SchemaError {
                        path: path.to_owned(),
                        msg: format!(
                            "attribute '{}' must be one of {:?}, found '{v}'",
                            ar.name, ar.one_of
                        ),
                    });
                }
                _ => {}
            }
        }
        for (k, _) in &e.attrs {
            if !rule.attrs.iter().any(|ar| &ar.name == k) {
                return Err(SchemaError {
                    path: path.to_owned(),
                    msg: format!("unexpected attribute '{k}'"),
                });
            }
        }

        // Text content.
        if !rule.allow_text && !e.text().trim().is_empty() {
            return Err(SchemaError {
                path: path.to_owned(),
                msg: "unexpected text content".to_owned(),
            });
        }

        // Children: counts, then unexpected names, then recursion.
        for cr in &rule.children {
            let n = e.children_named(&cr.name).count();
            if !cr.mult.check(n) {
                return Err(SchemaError {
                    path: path.to_owned(),
                    msg: format!(
                        "child <{}> occurs {n} time(s), violates {:?}",
                        cr.name, cr.mult
                    ),
                });
            }
        }
        for c in e.elements() {
            if !rule.children.iter().any(|cr| cr.name == c.name) {
                return Err(SchemaError {
                    path: path.to_owned(),
                    msg: format!("unexpected child <{}>", c.name),
                });
            }
            let child_path = format!("{path}/{}", c.name);
            self.validate_at(c, &child_path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// A miniature OSD-like schema used by the tests.
    fn softpkg_schema() -> Schema {
        Schema::new("softpkg")
            .element(
                "softpkg",
                ElementRule::new()
                    .attr(AttrRule::required("name"))
                    .attr(AttrRule::optional("version"))
                    .child("description", Multiplicity::Optional)
                    .child("implementation", Multiplicity::AtLeastOne),
            )
            .element(
                "description",
                ElementRule::new().text(),
            )
            .element(
                "implementation",
                ElementRule::new()
                    .attr(AttrRule::required("os").one_of(&["linux", "win32", "palmos"]))
                    .child("code", Multiplicity::One),
            )
            .element("code", ElementRule::new().attr(AttrRule::required("file")))
    }

    #[test]
    fn valid_document_passes() {
        let doc = parse(
            r#"<softpkg name="A" version="1">
                 <description>hi</description>
                 <implementation os="linux"><code file="a.so"/></implementation>
                 <implementation os="win32"><code file="a.dll"/></implementation>
               </softpkg>"#,
        )
        .unwrap();
        softpkg_schema().validate(&doc).unwrap();
    }

    #[test]
    fn missing_required_attr() {
        let doc = parse(r#"<softpkg><implementation os="linux"><code file="a"/></implementation></softpkg>"#).unwrap();
        let err = softpkg_schema().validate(&doc).unwrap_err();
        assert!(err.msg.contains("'name'"), "{err}");
    }

    #[test]
    fn enum_attr_enforced() {
        let doc = parse(r#"<softpkg name="A"><implementation os="beos"><code file="a"/></implementation></softpkg>"#).unwrap();
        let err = softpkg_schema().validate(&doc).unwrap_err();
        assert!(err.msg.contains("os"), "{err}");
        assert_eq!(err.path, "softpkg/implementation");
    }

    #[test]
    fn multiplicity_enforced() {
        let doc = parse(r#"<softpkg name="A"/>"#).unwrap();
        let err = softpkg_schema().validate(&doc).unwrap_err();
        assert!(err.msg.contains("implementation"), "{err}");
        let doc2 = parse(
            r#"<softpkg name="A">
                 <implementation os="linux"><code file="a"/><code file="b"/></implementation>
               </softpkg>"#,
        )
        .unwrap();
        let err2 = softpkg_schema().validate(&doc2).unwrap_err();
        assert!(err2.msg.contains("code"), "{err2}");
    }

    #[test]
    fn unexpected_items_rejected() {
        let s = softpkg_schema();
        let doc = parse(r#"<softpkg name="A" hacker="1"><implementation os="linux"><code file="a"/></implementation></softpkg>"#).unwrap();
        assert!(s.validate(&doc).unwrap_err().msg.contains("hacker"));
        let doc2 = parse(r#"<softpkg name="A"><bogus/><implementation os="linux"><code file="a"/></implementation></softpkg>"#).unwrap();
        assert!(s.validate(&doc2).unwrap_err().msg.contains("bogus"));
        let doc3 = parse(r#"<other/>"#).unwrap();
        assert!(s.validate(&doc3).unwrap_err().msg.contains("root"));
    }

    #[test]
    fn text_only_where_allowed() {
        let s = softpkg_schema();
        let doc = parse(r#"<softpkg name="A">words<implementation os="linux"><code file="a"/></implementation></softpkg>"#).unwrap();
        assert!(s.validate(&doc).unwrap_err().msg.contains("text"));
    }
}
