//! Document object model: elements with ordered attributes and children.

/// A node in the document tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data (entity-decoded).
    Text(String),
}

/// An XML element.
///
/// Attributes keep insertion order (descriptor output is deterministic and
/// diff-friendly); duplicate attribute names are rejected by the parser.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// New element with no attributes or children.
    pub fn new(name: &str) -> Self {
        Element { name: name.to_owned(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Set (or replace) an attribute; returns `self` for chaining.
    pub fn with_attr(mut self, key: &str, value: &str) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Set (or replace) an attribute.
    pub fn set_attr(&mut self, key: &str, value: &str) {
        if let Some(kv) = self.attrs.iter_mut().find(|(k, _)| k == key) {
            kv.1 = value.to_owned();
        } else {
            self.attrs.push((key.to_owned(), value.to_owned()));
        }
    }

    /// Attribute value, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Attribute value or a descriptive error (for descriptor readers).
    pub fn require_attr(&self, key: &str) -> Result<&str, String> {
        self.attr(key).ok_or_else(|| format!("<{}> missing required attribute '{key}'", self.name))
    }

    /// Append a child element; returns `self` for chaining.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Append a text child; returns `self` for chaining.
    pub fn with_text(mut self, text: &str) -> Self {
        self.children.push(Node::Text(text.to_owned()));
        self
    }

    /// Append a child element.
    pub fn push(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Iterate child elements (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Child elements with a given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// First child element with a given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// First child element with a given name, or a descriptive error.
    pub fn require_child(&self, name: &str) -> Result<&Element, String> {
        self.child(name).ok_or_else(|| format!("<{}> missing required child <{name}>", self.name))
    }

    /// Concatenated text content of this element (direct text children).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_accessors() {
        let e = Element::new("component")
            .with_attr("name", "Decoder")
            .with_attr("version", "1.2")
            .with_child(Element::new("provides").with_attr("port", "video"))
            .with_child(Element::new("provides").with_attr("port", "stats"))
            .with_child(Element::new("uses").with_attr("port", "display"))
            .with_text("note");
        assert_eq!(e.attr("name"), Some("Decoder"));
        assert_eq!(e.attr("missing"), None);
        assert!(e.require_attr("bogus").is_err());
        assert_eq!(e.children_named("provides").count(), 2);
        assert_eq!(e.child("uses").unwrap().attr("port"), Some("display"));
        assert!(e.require_child("nothere").is_err());
        assert_eq!(e.text(), "note");
        assert_eq!(e.elements().count(), 3);
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("x");
        e.set_attr("a", "1");
        e.set_attr("a", "2");
        assert_eq!(e.attrs.len(), 1);
        assert_eq!(e.attr("a"), Some("2"));
    }
}
