//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms with deterministic boundaries.
//!
//! This supersedes the ad-hoc counter structs that grew inside the node
//! (`NodeMetrics`) and the object adapter (`DispatchStats`): both now
//! keep their numbers here and rebuild their public snapshot types from
//! registry reads, so every node-local quantity is enumerable under one
//! naming scheme (`registry.msgs_in`, `dispatch.typed`, …) — the
//! self-describing-node story of the paper's reflection architecture
//! extended to instrumentation.

use crate::streaming::ReservoirHistogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A histogram with fixed, explicit bucket boundaries.
///
/// `bounds` are upper bucket edges (inclusive); one implicit overflow
/// bucket catches everything above the last edge. Boundaries are fixed
/// at construction, so two runs that observe the same samples produce
/// identical bucket vectors — there is no dynamic rebucketing to leak
/// iteration order or allocation history into output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BucketHistogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl BucketHistogram {
    /// A histogram over explicit upper edges (must be strictly
    /// increasing; an empty list gives a single overflow bucket).
    pub fn new(bounds: &[u64]) -> BucketHistogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must increase");
        BucketHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Geometric edges `start, start*factor, …` (`count` edges) — the
    /// standard latency shape (e.g. 1µs … by powers of 4).
    pub fn exponential(start: u64, factor: u64, count: usize) -> BucketHistogram {
        debug_assert!(start > 0 && factor > 1);
        let mut bounds = Vec::with_capacity(count);
        let mut edge = start;
        for _ in 0..count {
            bounds.push(edge);
            edge = edge.saturating_mul(factor);
        }
        BucketHistogram::new(&bounds)
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper_edge, count)` per bucket; the last entry uses
    /// `u64::MAX` as its edge (overflow bucket).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }

    /// Snapshot the cumulative state for later windowed deltas.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
        }
    }

    /// The window of samples observed since `prev` was taken, as a
    /// snapshot of per-bucket deltas. Cumulative accessors
    /// ([`BucketHistogram::count`] etc.) are untouched — this is a pure
    /// read, which is what burn-rate rules need.
    ///
    /// A `prev` from a differently-bucketed histogram (or from after a
    /// [`MetricsRegistry::clear`]) is treated as empty.
    pub fn delta_since(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        let comparable = prev.bounds == self.bounds && prev.count <= self.count;
        let empty;
        let base = if comparable {
            prev
        } else {
            empty = HistogramSnapshot {
                bounds: self.bounds.clone(),
                counts: vec![0; self.counts.len()],
                count: 0,
                sum: 0,
            };
            &empty
        };
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(base.counts.iter())
                .map(|(c, p)| c.saturating_sub(*p))
                .collect(),
            count: self.count - base.count,
            sum: self.sum.saturating_sub(base.sum),
        }
    }

    /// Render as `≤edge:count` pairs, skipping empty buckets.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (edge, n) in self.buckets() {
            if n == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            if edge == u64::MAX {
                let _ = write!(out, ">rest:{n}");
            } else {
                let _ = write!(out, "≤{edge}:{n}");
            }
        }
        out
    }
}

/// A point-in-time copy of a [`BucketHistogram`]'s cumulative state —
/// or, produced by [`BucketHistogram::delta_since`], the histogram of
/// one *window* of samples. Windowed SLO rules ([`crate::slo`]) keep one
/// of these per evaluation and diff against it next time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bucket edges (inclusive), as in the source histogram.
    pub bounds: Vec<u64>,
    /// Per-bucket counts (one trailing overflow bucket).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// A conservative quantile estimate: the upper edge of the first
    /// bucket at which the cumulative count reaches `q` (in parts per
    /// million) of the total. Returns `None` when empty; the overflow
    /// bucket reports `u64::MAX`. Deterministic — pure integer walk.
    pub fn quantile_le(&self, q_ppm: u32) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let need = (self.count as u128 * q_ppm as u128).div_ceil(1_000_000) as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= need {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

/// A point-in-time copy of a [`MetricsRegistry`]'s counters and
/// histograms, for windowed delta reads.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Named counters, gauges and fixed-bucket histograms.
///
/// All maps are `BTreeMap`s, so iteration (and therefore any rendered
/// report) is deterministically ordered.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, BucketHistogram>,
    reservoirs: BTreeMap<String, ReservoirHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment counter `key` by 1.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Increment counter `key` by `n`.
    pub fn add(&mut self, key: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(key) {
            *c += n;
        } else {
            self.counters.insert(key.to_owned(), n);
        }
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Set gauge `key`.
    pub fn set_gauge(&mut self, key: &str, v: i64) {
        self.gauges.insert(key.to_owned(), v);
    }

    /// Current gauge value (0 if never set).
    pub fn gauge(&self, key: &str) -> i64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// Iterate gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Record a sample into histogram `key`, creating it with `bounds`
    /// on first use (later calls keep the original bounds).
    pub fn observe(&mut self, key: &str, bounds: &[u64], v: u64) {
        if let Some(h) = self.histograms.get_mut(key) {
            h.observe(v);
            return;
        }
        let mut h = BucketHistogram::new(bounds);
        h.observe(v);
        self.histograms.insert(key.to_owned(), h);
    }

    /// Record a sample into reservoir histogram `key`, creating it with
    /// `capacity` slots on first use (later calls keep the original
    /// capacity). Unlike [`MetricsRegistry::observe`], memory stays
    /// O(capacity) no matter how many samples arrive — the variant the
    /// million-node scale path uses.
    pub fn observe_reservoir(&mut self, key: &str, capacity: usize, v: u64) {
        if let Some(r) = self.reservoirs.get_mut(key) {
            r.observe(v);
            return;
        }
        let mut r = ReservoirHistogram::new(capacity);
        r.observe(v);
        self.reservoirs.insert(key.to_owned(), r);
    }

    /// Borrow a reservoir mutably (quantile queries sort in place).
    pub fn reservoir_mut(&mut self, key: &str) -> Option<&mut ReservoirHistogram> {
        self.reservoirs.get_mut(key)
    }

    /// Iterate reservoirs in key order.
    pub fn reservoirs(&self) -> impl Iterator<Item = (&str, &ReservoirHistogram)> {
        self.reservoirs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Borrow a histogram, if anything was observed under `key`.
    pub fn histogram(&self, key: &str) -> Option<&BucketHistogram> {
        self.histograms.get(key)
    }

    /// Iterate histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &BucketHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Snapshot counters and histograms for later windowed deltas.
    /// Existing accessors are untouched — snapshots are pure reads.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }

    /// Counter `key`'s increase since `prev` was taken (0 for unknown
    /// keys; a counter below its snapshot — registry cleared — reads 0).
    pub fn counter_delta(&self, key: &str, prev: &MetricsSnapshot) -> u64 {
        self.counter(key).saturating_sub(prev.counters.get(key).copied().unwrap_or(0))
    }

    /// Histogram `key`'s window of samples since `prev` was taken.
    /// `None` when the histogram does not exist; a key absent from
    /// `prev` deltas against empty.
    pub fn histogram_delta(&self, key: &str, prev: &MetricsSnapshot) -> Option<HistogramSnapshot> {
        let h = self.histograms.get(key)?;
        match prev.histograms.get(key) {
            Some(p) => Some(h.delta_since(p)),
            None => Some(h.snapshot()),
        }
    }

    /// Reset everything.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
        self.reservoirs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = MetricsRegistry::new();
        r.incr("a");
        r.add("a", 4);
        r.set_gauge("depth", 7);
        r.set_gauge("depth", 3);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("depth"), 3);
        assert_eq!(r.counters().collect::<Vec<_>>(), vec![("a", 5)]);
    }

    #[test]
    fn histogram_buckets_are_fixed() {
        let mut h = BucketHistogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 99, 100, 5000] {
            h.observe(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(10, 2), (100, 3), (1000, 0), (u64::MAX, 1)]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5 + 10 + 11 + 99 + 100 + 5000);
        assert_eq!(h.render(), "≤10:2 ≤100:3 >rest:1");
    }

    #[test]
    fn exponential_edges() {
        let h = BucketHistogram::exponential(1_000, 4, 5);
        let edges: Vec<u64> = h.buckets().map(|(e, _)| e).collect();
        assert_eq!(edges, vec![1_000, 4_000, 16_000, 64_000, 256_000, u64::MAX]);
    }

    #[test]
    fn registry_reservoirs_stay_bounded() {
        let mut r = MetricsRegistry::new();
        for v in 0..10_000u64 {
            r.observe_reservoir("queue.depth", 16, v);
        }
        let res = r.reservoir_mut("queue.depth").unwrap();
        assert_eq!(res.count(), 10_000);
        assert_eq!(res.reservoir_len(), 16);
        assert_eq!(res.max(), 9_999);
        let keys: Vec<_> = r.reservoirs().map(|(k, _)| k.to_owned()).collect();
        assert_eq!(keys, ["queue.depth"]);
        r.clear();
        assert!(r.reservoir_mut("queue.depth").is_none());
    }

    #[test]
    fn windowed_deltas_leave_cumulative_state_alone() {
        let mut r = MetricsRegistry::new();
        r.observe("lat", &[10, 100], 5);
        r.add("q.total", 3);
        let snap = r.snapshot();
        r.observe("lat", &[10, 100], 50);
        r.observe("lat", &[10, 100], 7);
        r.add("q.total", 4);
        let w = r.histogram_delta("lat", &snap).unwrap();
        assert_eq!(w.count, 2);
        assert_eq!(w.sum, 57);
        assert_eq!(w.counts, vec![1, 1, 0]);
        assert_eq!(r.counter_delta("q.total", &snap), 4);
        // cumulative accessors unchanged by the windowed reads
        assert_eq!(r.histogram("lat").unwrap().count(), 3);
        assert_eq!(r.counter("q.total"), 7);
        // a fresh key deltas against empty
        r.observe("new", &[1], 1);
        assert_eq!(r.histogram_delta("new", &snap).unwrap().count, 1);
    }

    #[test]
    fn snapshot_quantiles_walk_buckets() {
        let mut h = BucketHistogram::new(&[10, 100, 1000]);
        for v in [1, 2, 3, 50, 60, 70, 80, 500, 900, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_le(500_000), Some(100)); // 5th of 10 samples
        assert_eq!(s.quantile_le(900_000), Some(1000));
        assert_eq!(s.quantile_le(1_000_000), Some(u64::MAX));
        assert_eq!(HistogramSnapshot::default().quantile_le(500_000), None);
    }

    #[test]
    fn incompatible_delta_base_reads_as_empty() {
        let mut a = BucketHistogram::new(&[10]);
        a.observe(5);
        let mut b = BucketHistogram::new(&[99]);
        b.observe(1);
        let d = b.delta_since(&a.snapshot());
        assert_eq!(d.count, 1);
        assert_eq!(d.bounds, vec![99]);
    }

    #[test]
    fn registry_histograms_keep_first_bounds() {
        let mut r = MetricsRegistry::new();
        r.observe("lat", &[10, 20], 15);
        r.observe("lat", &[999], 5);
        let h = r.histogram("lat").unwrap();
        assert_eq!(h.buckets().map(|(e, _)| e).collect::<Vec<_>>(), vec![10, 20, u64::MAX]);
        assert_eq!(h.count(), 2);
    }
}
