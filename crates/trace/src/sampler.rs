//! Deterministic head-based trace sampling.
//!
//! At 100k–1M-node scale, recording every span is the memory bottleneck
//! — not the spans' cost on the wire (they have none; this is a DES)
//! but the tracer's retained map. Head sampling bounds that: the keep/
//! drop decision is made **once, at root-span creation**, and travels
//! with the [`crate::TraceContext`] in message headers, so a trace is
//! recorded whole or not at all (the sampled span set is prefix-closed
//! — in fact subtree-complete — with respect to the full span forest).
//!
//! The decision is a pure function of `(seed, root span id)` — a
//! fixed-constant splitmix64 mix, no RNG stream, no wall clock — so the
//! same configuration samples the same traces on every run, and span
//! ids are still allocated for *unsampled* traces (the per-node
//! counters advance identically), which keeps a sampled run's recorded
//! spans byte-identical to the same spans in an unsampled run.

use crate::span::SpanId;

/// Head-sampling configuration: keep `rate_ppm` parts-per-million of
/// traces, decided by a seeded hash of the root span id.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SampleConfig {
    /// Traces kept, in parts per million (`1_000_000` keeps everything,
    /// `0` keeps nothing).
    pub rate_ppm: u32,
    /// Decision seed: different seeds select different trace subsets at
    /// the same rate.
    pub seed: u64,
}

impl SampleConfig {
    /// Keep everything (the decision never drops).
    pub const ALL: SampleConfig = SampleConfig { rate_ppm: 1_000_000, seed: 0 };

    /// A rate of one trace in `n`.
    pub fn one_in(n: u32, seed: u64) -> SampleConfig {
        SampleConfig { rate_ppm: 1_000_000 / n.max(1), seed }
    }
}

/// Fixed-constant splitmix64 finalizer — the same generator family the
/// streaming reservoir uses; deterministic and seedable, no entropy.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The head-sampling decision for a trace rooted at `root`.
pub fn decide(cfg: SampleConfig, root: SpanId) -> bool {
    if cfg.rate_ppm >= 1_000_000 {
        return true;
    }
    if cfg.rate_ppm == 0 {
        return false;
    }
    mix(cfg.seed ^ root.0) % 1_000_000 < cfg.rate_ppm as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_is_deterministic_and_seed_sensitive() {
        let id = SpanId::compose(3, 17);
        let a = SampleConfig { rate_ppm: 500_000, seed: 1 };
        assert_eq!(decide(a, id), decide(a, id));
        // across many ids, two seeds must disagree somewhere
        let b = SampleConfig { rate_ppm: 500_000, seed: 2 };
        let differs = (0..256u64)
            .map(|s| SpanId::compose(0, s + 1))
            .any(|id| decide(a, id) != decide(b, id));
        assert!(differs);
    }

    #[test]
    fn rate_extremes_and_proportion() {
        let ids: Vec<SpanId> = (0..4096u64).map(|s| SpanId::compose(1, s + 1)).collect();
        assert!(ids.iter().all(|&i| decide(SampleConfig::ALL, i)));
        assert!(!ids.iter().any(|&i| decide(SampleConfig { rate_ppm: 0, seed: 9 }, i)));
        let kept = ids
            .iter()
            .filter(|&&i| decide(SampleConfig::one_in(16, 5), i))
            .count();
        // 1/16 of 4096 = 256 expected; allow a generous band
        assert!((128..=512).contains(&kept), "kept {kept} of 4096");
    }
}
