//! Flamegraph and timeline exports from span trees.
//!
//! * [`to_collapsed`] — Brendan-Gregg collapsed-stack lines
//!   (`root;child;leaf <weight>`), one per distinct root-to-span path,
//!   weighted by **self virtual time** (span duration minus children's
//!   overlap-free durations). Feed straight into any `flamegraph.pl`
//!   style renderer; the output is key-sorted, so two identical runs
//!   produce byte-identical files (ci.sh diffs them).
//! * [`to_timeline`] — a per-node virtual-time timeline: every span as
//!   one fixed-width row (`start  end  node  depth-indented name`),
//!   grouped by node, ordered by `(node, start, id)`.
//!
//! Both walk the same span forests the tracer records; under head
//! sampling they render the sampled subset, which is exactly the whole
//! of every kept trace.

use crate::span::{Span, SpanId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Self time of each span: its duration minus the union of its
/// children's intervals (children may overlap each other; count once).
fn self_ns(s: &Span, children: &[&Span]) -> u64 {
    let mut ivs: Vec<(u64, u64)> = children
        .iter()
        .map(|c| {
            (
                c.start.as_nanos().max(s.start.as_nanos()),
                c.end.as_nanos().min(s.end.as_nanos()),
            )
        })
        .filter(|(a, b)| a < b)
        .collect();
    ivs.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in ivs {
        match &mut cur {
            Some((_, ce)) if a <= *ce => *ce = (*ce).max(b),
            _ => {
                if let Some((cs, ce)) = cur.take() {
                    covered += ce - cs;
                }
                cur = Some((a, b));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        covered += ce - cs;
    }
    s.duration().as_nanos().saturating_sub(covered)
}

/// Collapsed-stack flamegraph lines weighted by self virtual time
/// (nanoseconds). Paths are `name` chains from each trace root; spans
/// with zero self time are kept only if they are leaves (so every
/// recorded span shows up somewhere). Lines are sorted
/// lexicographically — byte-identical across identical runs.
pub fn to_collapsed(spans: &[Span]) -> String {
    let by_id: BTreeMap<SpanId, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let mut kids: BTreeMap<SpanId, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            kids.entry(p).or_default().push(s);
        }
    }
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        // stack: walk the parent chain up to the root
        let mut names = vec![s.name.as_str()];
        let mut cur = s;
        let mut hops = 0usize;
        while let Some(pid) = cur.parent {
            let Some(p) = by_id.get(&pid) else { break };
            names.push(p.name.as_str());
            cur = p;
            hops += 1;
            if hops > spans.len() {
                break; // defensive: validate() rejects cycles
            }
        }
        names.reverse();
        let children = kids.get(&s.id).map(|v| v.as_slice()).unwrap_or(&[]);
        let w = self_ns(s, children);
        if w == 0 && !children.is_empty() {
            continue;
        }
        *weights.entry(names.join(";")).or_insert(0) += w;
    }
    let mut out = String::new();
    for (stack, w) in &weights {
        let _ = writeln!(out, "{stack} {w}");
    }
    out
}

/// A per-node virtual-time timeline: spans grouped under `== node N ==`
/// headers, ordered by `(start, id)` within each node, names indented
/// by tree depth. `nodes` restricts the output (empty slice = all).
pub fn to_timeline(spans: &[Span], nodes: &[u32]) -> String {
    let by_id: BTreeMap<SpanId, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let depth = |s: &Span| {
        let mut d = 0usize;
        let mut cur = s;
        while let Some(pid) = cur.parent {
            match by_id.get(&pid) {
                Some(p) => cur = p,
                None => break,
            }
            d += 1;
            if d > spans.len() {
                break;
            }
        }
        d
    };
    let mut by_node: BTreeMap<u32, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        if nodes.is_empty() || nodes.contains(&s.node) {
            by_node.entry(s.node).or_default().push(s);
        }
    }
    let mut out = String::new();
    for (node, mut rows) in by_node {
        rows.sort_by_key(|s| (s.start, s.id));
        let _ = writeln!(out, "== node {node} ==");
        for s in rows {
            let _ = writeln!(
                out,
                "{:>12} {:>12}  {}{} [{}]",
                s.start.as_nanos(),
                s.end.as_nanos(),
                "  ".repeat(depth(s)),
                s.name,
                s.id
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;
    use lc_des::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn forest() -> Tracer {
        let tr = Tracer::new();
        let root = tr.root(0, "query", t(0)).unwrap();
        let msg = tr.complete(0, "net.msg", Some(root), t(100), t(600)).unwrap();
        let h = tr.child_of(1, "node.registry", msg, t(600)).unwrap();
        tr.end(h, t(600));
        tr.end(root, t(1000));
        tr
    }

    #[test]
    fn collapsed_stacks_weight_self_time() {
        let out = to_collapsed(&forest().spans());
        let lines: Vec<&str> = out.lines().collect();
        // root self time: 1000 - (600-100 child cover) = 500
        assert!(lines.contains(&"query 500"));
        assert!(lines.contains(&"query;net.msg 500"));
        // zero-width leaf still appears
        assert!(lines.contains(&"query;net.msg;node.registry 0"));
        // sorted + reproducible
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        assert_eq!(out, to_collapsed(&forest().spans()));
    }

    #[test]
    fn overlapping_children_count_once() {
        let tr = Tracer::new();
        let root = tr.root(0, "r", t(0)).unwrap();
        tr.complete(0, "a", Some(root), t(0), t(60));
        tr.complete(0, "b", Some(root), t(40), t(100));
        tr.end(root, t(100));
        let out = to_collapsed(&tr.spans());
        // overlap [40,60] counted once: children cover all 100 ns, so the
        // root has zero self time and, having children, is elided
        assert!(!out.lines().any(|l| l.starts_with("r ")), "{out}");
        assert!(out.lines().any(|l| l == "r;a 60"), "{out}");
        assert!(out.lines().any(|l| l == "r;b 60"), "{out}");
    }

    #[test]
    fn timeline_groups_by_node_and_indents() {
        let out = to_timeline(&forest().spans(), &[]);
        let n0 = out.find("== node 0 ==").unwrap();
        let n1 = out.find("== node 1 ==").unwrap();
        assert!(n0 < n1);
        assert!(out.lines().any(|l| l.contains("  query [")));
        assert!(out.lines().any(|l| l.contains("    net.msg [")));
        assert!(out.lines().any(|l| l.contains("      node.registry [")));
        // node filter
        let only1 = to_timeline(&forest().spans(), &[1]);
        assert!(!only1.contains("== node 0 ==") && only1.contains("== node 1 =="));
    }
}
