//! Deterministic rendering of the DES kernel's virtual-time profile.
//!
//! `lc-des` owns the measurement ([`lc_des::Profiler`] — it must sit in
//! the kernel's hot loop); this module owns the *presentation*: fixed-
//! width tables and collapsed-stack lines with every number derived from
//! virtual time and event counts, so profiler output is as reproducible
//! as the simulation itself. Kind names are supplied by the caller (the
//! kernel only knows the packed tag byte; the scale model knows what it
//! means).

use lc_des::{Lane, ProfileReport};
use std::fmt::Write as _;

/// Name a packed-event kind byte, falling back to `k<N>`.
fn kind_name(names: &[(u8, &str)], k: u8) -> String {
    names
        .iter()
        .find(|(b, _)| *b == k)
        .map(|(_, n)| (*n).to_owned())
        .unwrap_or_else(|| format!("k{k}"))
}

/// Render the profile as a fixed-width report: totals, per-lane and
/// per-kind tables, the top `top` actors, and queue telemetry. All
/// columns are virtual-time/count derived — byte-identical across runs.
pub fn render(r: &ProfileReport, names: &[(u8, &str)], top: usize) -> String {
    let mut out = String::new();
    let horizon = r.horizon.as_nanos().saturating_sub(r.started_at.as_nanos());
    let _ = writeln!(
        out,
        "profile: {} events over {} virtual ns ({} actors, depth max {}, arena max {} B)",
        r.events,
        horizon,
        r.actors.len(),
        r.depth_max,
        r.arena_bytes_max
    );
    let _ = writeln!(out, "  lane      events        sim_ns");
    for (lane, label) in
        [(Lane::Message, "message"), (Lane::Packed, "packed"), (Lane::Control, "control")]
    {
        let tally = r.lane(lane);
        let _ = writeln!(out, "  {label:<8} {:>9} {:>13}", tally.events, tally.sim_ns);
    }
    if !r.kinds.is_empty() {
        let _ = writeln!(out, "  kind          events        sim_ns");
        for (k, tally) in &r.kinds {
            let _ = writeln!(
                out,
                "  {:<12} {:>9} {:>13}",
                kind_name(names, *k),
                tally.events,
                tally.sim_ns
            );
        }
    }
    let leaders = r.top_actors(top);
    if !leaders.is_empty() {
        let _ = writeln!(out, "  top actors      events        sim_ns");
        for (id, tally) in leaders {
            let _ = writeln!(out, "  actor#{id:<9} {:>9} {:>13}", tally.events, tally.sim_ns);
        }
    }
    let _ = writeln!(
        out,
        "  queue samples: {} kept, {} dropped",
        r.samples.len(),
        r.samples_dropped
    );
    out
}

/// Collapsed-stack lines for the kernel profile (`lane;kind weight`),
/// weighted by attributed simulated nanoseconds — mergeable with the
/// span-tree stacks from [`crate::flame::to_collapsed`] into one
/// flamegraph. Sorted, byte-identical across identical runs.
pub fn to_collapsed(r: &ProfileReport, names: &[(u8, &str)]) -> String {
    let mut rows: Vec<(String, u64)> = Vec::new();
    let packed_in_kinds: u64 = r.kinds.iter().map(|(_, t)| t.sim_ns).sum();
    for (lane, label) in [(Lane::Message, "message"), (Lane::Control, "control")] {
        let tally = r.lane(lane);
        if tally.events > 0 {
            rows.push((format!("des;{label}"), tally.sim_ns));
        }
    }
    for (k, tally) in &r.kinds {
        rows.push((format!("des;packed;{}", kind_name(names, *k)), tally.sim_ns));
    }
    // packed events without a kind table entry keep their residual weight
    let packed = r.lane(Lane::Packed);
    if packed.events > 0 && packed.sim_ns > packed_in_kinds {
        rows.push(("des;packed".to_owned(), packed.sim_ns - packed_in_kinds));
    }
    rows.sort();
    let mut out = String::new();
    for (stack, w) in rows {
        let _ = writeln!(out, "{stack} {w}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_des::{Actor, AnyMsg, Ctx, ProfilerConfig, Sim, SimTime};

    struct Echo;
    struct Ping;
    impl Actor for Echo {
        fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: AnyMsg) {
            if ctx.now() < SimTime::from_millis(10) {
                ctx.timer_in(SimTime::from_millis(1), Ping);
            }
        }
    }

    fn profiled() -> ProfileReport {
        let mut sim = Sim::new(4);
        sim.enable_profiler(ProfilerConfig::default());
        let a = sim.spawn(Echo);
        sim.send_in(SimTime::ZERO, a, Ping);
        sim.send_packed(SimTime::from_millis(1), a, 3u64 << 56);
        sim.run();
        sim.profile_report().expect("profiler on")
    }

    #[test]
    fn render_is_deterministic_and_names_kinds() {
        let r = profiled();
        let names = [(3u8, "report")];
        let a = render(&r, &names, 4);
        assert_eq!(a, render(&profiled(), &names, 4));
        assert!(a.contains("profile: "));
        assert!(a.contains("report"));
        assert!(render(&r, &[], 4).contains("k3"));
    }

    #[test]
    fn collapsed_covers_all_lanes() {
        let r = profiled();
        let out = to_collapsed(&r, &[(3, "report")]);
        assert!(out.contains("des;message "));
        assert!(out.contains("des;packed;report "));
        let total: u64 = out
            .lines()
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|w| w.parse::<u64>().ok())
            .sum();
        let lane_total: u64 =
            [Lane::Message, Lane::Packed, Lane::Control].iter().map(|&l| r.lane(l).sim_ns).sum();
        assert_eq!(total, lane_total);
    }
}
