//! Constant-memory metric primitives for million-node campuses.
//!
//! The [`MetricsRegistry`](crate::MetricsRegistry) maps are fine for a
//! few thousand nodes, but at 10⁶ nodes anything per-node-keyed (one
//! `String` map entry per node) or sample-keeping (one `Vec` slot per
//! observation) dominates the heap. This module provides the streaming
//! replacements the scale path uses:
//!
//! * [`DenseCounters`] — counters pre-registered once into dense `u32`
//!   ids; the hot path is a bounds-checked array add, no string hashing
//!   or tree walk, and memory is O(distinct names), not O(nodes).
//! * [`ShardedCounter`] — one logical counter split over a fixed power-
//!   of-two shard array; per-node traffic tallies collapse into 64
//!   cells instead of a million map entries, while still exposing which
//!   region of the id space generated the load.
//! * [`ReservoirHistogram`] — a fixed-size uniform sample of an
//!   unbounded observation stream (Vitter's Algorithm R) driven by an
//!   inline LCG, so memory is O(capacity) and two identical runs keep
//!   identical reservoirs. Exact percentiles over *all* samples are
//!   impossible at this scale; a 512-slot uniform reservoir bounds the
//!   quantile error well below the effects E13 measures.
//!
//! Everything here is deterministic and hermetic (lint rule D5): no
//! wall clock, no ambient entropy — the reservoir's replacement stream
//! is a fixed-constant LCG, reproducible by construction.

/// Dense handle returned by [`DenseCounters::register`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CounterId(u32);

/// Counters addressed by pre-registered dense id.
///
/// Registration order fixes iteration order, so reports rendered from a
/// deterministic program are deterministic without any sorting.
#[derive(Clone, Debug, Default)]
pub struct DenseCounters {
    names: Vec<&'static str>,
    values: Vec<u64>,
}

impl DenseCounters {
    /// An empty set.
    pub fn new() -> DenseCounters {
        DenseCounters::default()
    }

    /// Register `name`, returning its dense id. Registering the same
    /// name twice returns the existing id (names stay unique).
    pub fn register(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            return CounterId(i as u32);
        }
        assert!(self.names.len() < u32::MAX as usize, "more than u32::MAX counters");
        let id = self.names.len() as u32;
        self.names.push(name);
        self.values.push(0);
        CounterId(id)
    }

    /// Increment by 1. O(1), no hashing.
    #[inline]
    pub fn incr(&mut self, id: CounterId) {
        self.values[id.0 as usize] += 1;
    }

    /// Increment by `n`. O(1), no hashing.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.values[id.0 as usize] += n;
    }

    /// Current value.
    pub fn get(&self, id: CounterId) -> u64 {
        self.values[id.0 as usize]
    }

    /// `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names.iter().copied().zip(self.values.iter().copied())
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Any counters registered?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One logical counter split across a fixed power-of-two number of
/// shards keyed by a caller-supplied hint (node index, host id, …).
///
/// A million per-node tallies become `SHARDS` cells: constant memory,
/// and the shard profile still shows *where* in the id space the load
/// landed (the E13 hotspot column reads the maximum shard).
#[derive(Clone, Debug)]
pub struct ShardedCounter {
    shards: Box<[u64; ShardedCounter::SHARDS]>,
}

impl Default for ShardedCounter {
    fn default() -> Self {
        ShardedCounter::new()
    }
}

impl ShardedCounter {
    /// Number of shards (power of two so the hint folds with a mask).
    pub const SHARDS: usize = 64;

    /// All shards zero.
    pub fn new() -> ShardedCounter {
        ShardedCounter { shards: Box::new([0; ShardedCounter::SHARDS]) }
    }

    /// Add `n` under `hint` (any dense id; folded by mask).
    #[inline]
    pub fn add(&mut self, hint: usize, n: u64) {
        self.shards[hint & (ShardedCounter::SHARDS - 1)] += n;
    }

    /// Sum over all shards.
    pub fn total(&self) -> u64 {
        self.shards.iter().sum()
    }

    /// Largest single shard (load-concentration indicator).
    pub fn max_shard(&self) -> u64 {
        self.shards.iter().copied().max().unwrap_or(0)
    }

    /// Per-shard values.
    pub fn shards(&self) -> &[u64] {
        &self.shards[..]
    }
}

/// Multiplier/increment from Knuth's MMIX LCG — full period mod 2⁶⁴.
const LCG_MUL: u64 = 6_364_136_223_846_793_005;
const LCG_INC: u64 = 1_442_695_040_888_963_407;

/// Fixed-capacity uniform sample of an unbounded stream (Algorithm R).
///
/// Keeps count/sum/min/max exactly and at most `capacity` samples for
/// quantile estimates. The replacement draws come from an inline LCG
/// with fixed constants — not from the simulation RNG, so observing
/// metrics can never perturb protocol behaviour, and not from ambient
/// entropy, which lint rule D5 bans in this crate.
#[derive(Clone, Debug)]
pub struct ReservoirHistogram {
    samples: Vec<u64>,
    capacity: usize,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    lcg: u64,
    sorted: bool,
}

impl ReservoirHistogram {
    /// An empty reservoir holding at most `capacity` samples.
    pub fn new(capacity: usize) -> ReservoirHistogram {
        assert!(capacity > 0, "reservoir needs capacity");
        ReservoirHistogram {
            samples: Vec::new(),
            capacity,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            lcg: 0x1357_9BDF_2468_ACE0,
            sorted: false,
        }
    }

    #[inline]
    fn lcg_next(&mut self) -> u64 {
        self.lcg = self.lcg.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
        // The low bits of an LCG are weak; fold the high half in.
        self.lcg ^ (self.lcg >> 32)
    }

    /// Record one observation. O(1), allocation-free once full.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if self.samples.len() < self.capacity {
            self.samples.push(v);
            self.sorted = false;
            return;
        }
        // Algorithm R: keep the i-th observation with probability k/i.
        let j = self.lcg_next() % self.count;
        if (j as usize) < self.capacity {
            self.samples[j as usize] = v;
            self.sorted = false;
        }
    }

    /// Observations seen (not the reservoir size).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean over all observations, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Estimated quantile (`q` in `[0, 1]`) from the reservoir by
    /// nearest rank; exact while `count ≤ capacity`.
    pub fn quantile(&mut self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// Samples currently held (≤ capacity).
    pub fn reservoir_len(&self) -> usize {
        self.samples.len()
    }

    /// Bytes the reservoir can ever hold — the constant-memory bound.
    pub fn max_bytes(&self) -> usize {
        self.capacity * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_counters_register_once_and_add_fast() {
        let mut c = DenseCounters::new();
        let a = c.register("query.msgs");
        let b = c.register("query.hops");
        assert_eq!(c.register("query.msgs"), a);
        c.incr(a);
        c.add(b, 41);
        c.incr(b);
        assert_eq!(c.get(a), 1);
        assert_eq!(c.get(b), 42);
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![("query.msgs", 1), ("query.hops", 42)]
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn sharded_counter_folds_hints_and_totals() {
        let mut s = ShardedCounter::new();
        for node in 0..1_000_000usize {
            s.add(node, 1);
        }
        assert_eq!(s.total(), 1_000_000);
        // 1M uniform ids spread exactly evenly over the 64 shards.
        assert_eq!(s.max_shard(), 15_625);
        assert_eq!(s.shards().len(), ShardedCounter::SHARDS);
        // Hint folding: 0 and 64 share a shard.
        let mut t = ShardedCounter::new();
        t.add(0, 5);
        t.add(64, 7);
        assert_eq!(t.shards()[0], 12);
    }

    #[test]
    fn reservoir_is_exact_until_capacity() {
        let mut r = ReservoirHistogram::new(8);
        for v in [5, 1, 9, 3] {
            r.observe(v);
        }
        assert_eq!(r.count(), 4);
        assert_eq!(r.sum(), 18);
        assert_eq!(r.min(), 1);
        assert_eq!(r.max(), 9);
        assert_eq!(r.quantile(0.5), 3);
        assert_eq!(r.quantile(1.0), 9);
        assert_eq!(r.reservoir_len(), 4);
    }

    #[test]
    fn reservoir_memory_is_constant_and_stats_exact_beyond_capacity() {
        let mut r = ReservoirHistogram::new(64);
        for v in 0..100_000u64 {
            r.observe(v);
        }
        assert_eq!(r.count(), 100_000);
        assert_eq!(r.sum(), 100_000 * 99_999 / 2);
        assert_eq!(r.min(), 0);
        assert_eq!(r.max(), 99_999);
        assert_eq!(r.reservoir_len(), 64);
        assert_eq!(r.max_bytes(), 64 * 8);
        // The uniform sample's median estimate lands near the true
        // median (loose bound — this is a 64-slot sketch).
        let med = r.quantile(0.5);
        assert!((20_000..80_000).contains(&med), "median estimate {med} wildly off");
    }

    #[test]
    fn reservoir_is_deterministic() {
        let run = || {
            let mut r = ReservoirHistogram::new(32);
            for v in 0..10_000u64 {
                r.observe(v.wrapping_mul(2654435761) % 1000);
            }
            (r.quantile(0.25), r.quantile(0.5), r.quantile(0.99), r.count(), r.sum())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_reservoir_reports_zeroes() {
        let mut r = ReservoirHistogram::new(4);
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.min(), 0);
        assert_eq!(r.max(), 0);
        assert_eq!(r.quantile(0.5), 0);
    }
}
