//! The span model: identifiers, contexts, spans and tree validation.
//!
//! Identifiers are allocated from **per-node counters** — no RNG, no
//! wall clock — so the same simulation produces the same ids byte for
//! byte on every run. A [`SpanId`] packs the allocating node into its
//! high bits, which keeps allocation local (no cross-node coordination,
//! exactly as a real distributed tracer works) while staying globally
//! unique and deterministic.

use lc_des::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// Bits of a [`SpanId`] reserved for the per-node sequence number.
const SEQ_BITS: u32 = 40;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

/// A trace identifier: the id of the trace's root span.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TraceId(pub u64);

/// A span identifier: `(node + 1) << 40 | per-node sequence`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Compose an id from the allocating node and its sequence counter.
    pub fn compose(node: u32, seq: u64) -> SpanId {
        SpanId(((node as u64 + 1) << SEQ_BITS) | (seq & SEQ_MASK))
    }

    /// The node that allocated this id.
    pub fn node(self) -> u32 {
        ((self.0 >> SEQ_BITS) - 1) as u32
    }

    /// The per-node sequence number.
    pub fn seq(self) -> u64 {
        self.0 & SEQ_MASK
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}.{}", self.node(), self.seq())
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", SpanId(self.0))
    }
}

/// What travels in message headers: which trace, which span is the
/// sender-side parent of whatever the receiver does next, and whether
/// the trace was head-sampled for recording.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceContext {
    /// The trace every descendant span joins.
    pub trace: TraceId,
    /// The span to parent receiver-side work under.
    pub span: SpanId,
    /// Head-sampling decision made at root creation ([`crate::sampler`]):
    /// `false` means ids still advance but nothing is recorded.
    pub sampled: bool,
}

/// One recorded span.
#[derive(Clone, Debug)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// Parent span (`None` for trace roots).
    pub parent: Option<SpanId>,
    /// Operation name (`net.msg`, `node.registry`, `orb.invoke inc`, …).
    pub name: String,
    /// Node the span ran on.
    pub node: u32,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time (kept ≥ every child's end by the tracer).
    pub end: SimTime,
    /// Still open (no explicit end yet).
    pub open: bool,
    /// Key → value attributes, in insertion order (sorted at export).
    pub attrs: Vec<(String, String)>,
    /// Non-parent causal links (retries link to the span they retry).
    pub links: Vec<SpanId>,
}

impl Span {
    /// Virtual duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }

    /// Value of attribute `key`, if set.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Check that a set of spans forms well-formed trace trees:
///
/// 1. every non-root parent id refers to a span in the set,
/// 2. parent and child belong to the same trace,
/// 3. every child's `[start, end]` nests inside its parent's,
/// 4. every span is reachable from its trace's root (connectivity),
/// 5. link targets exist in the set.
///
/// Returns the first problem found, described; `Ok` if all trees hold.
pub fn validate(spans: &[Span]) -> Result<(), String> {
    let by_id: BTreeMap<SpanId, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    for s in spans {
        if let Some(pid) = s.parent {
            let p = by_id
                .get(&pid)
                .ok_or_else(|| format!("span {} parent {pid} not recorded", s.id))?;
            if p.trace != s.trace {
                return Err(format!(
                    "span {} in {} has parent {} in {}",
                    s.id, s.trace, p.id, p.trace
                ));
            }
            if s.start < p.start || s.end > p.end {
                return Err(format!(
                    "span {} [{}, {}] not nested in parent {} [{}, {}]",
                    s.id,
                    s.start.as_nanos(),
                    s.end.as_nanos(),
                    p.id,
                    p.start.as_nanos(),
                    p.end.as_nanos()
                ));
            }
        } else if s.id.0 != s.trace.0 {
            return Err(format!("root span {} does not carry its trace id {}", s.id, s.trace));
        }
        if s.end < s.start {
            return Err(format!("span {} ends before it starts", s.id));
        }
        for l in &s.links {
            if !by_id.contains_key(l) {
                return Err(format!("span {} links to unrecorded span {l}", s.id));
            }
        }
        // Connectivity: walk the parent chain to the root.
        let mut cur = s;
        let mut hops = 0usize;
        while let Some(pid) = cur.parent {
            match by_id.get(&pid) {
                Some(p) => cur = p,
                None => break, // already reported above
            }
            hops += 1;
            if hops > spans.len() {
                return Err(format!("span {} sits on a parent cycle", s.id));
            }
        }
        if cur.id.0 != cur.trace.0 {
            return Err(format!(
                "span {} is not reachable from the root of {}",
                s.id, s.trace
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: SpanId, parent: Option<SpanId>, start: u64, end: u64) -> Span {
        Span {
            trace: TraceId(trace),
            id,
            parent,
            name: "s".into(),
            node: id.node(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            open: false,
            attrs: Vec::new(),
            links: Vec::new(),
        }
    }

    #[test]
    fn id_packing_round_trips() {
        let id = SpanId::compose(7, 42);
        assert_eq!(id.node(), 7);
        assert_eq!(id.seq(), 42);
        assert_eq!(id.to_string(), "n7.42");
        // ids from different nodes never collide
        assert_ne!(SpanId::compose(0, 1), SpanId::compose(1, 1));
    }

    #[test]
    fn validate_accepts_nested_tree() {
        let root = SpanId::compose(0, 1);
        let child = SpanId::compose(1, 1);
        let spans = vec![
            span(root.0, root, None, 0, 100),
            span(root.0, child, Some(root), 10, 90),
        ];
        assert!(validate(&spans).is_ok());
    }

    #[test]
    fn validate_rejects_missing_parent_and_bad_nesting() {
        let root = SpanId::compose(0, 1);
        let child = SpanId::compose(1, 1);
        let orphan = vec![span(root.0, child, Some(root), 0, 1)];
        assert!(validate(&orphan).is_err());
        let escapes = vec![
            span(root.0, root, None, 0, 50),
            span(root.0, child, Some(root), 10, 90),
        ];
        assert!(validate(&escapes).is_err());
    }
}
