//! The tracer: span allocation, the current-context register, the
//! end-propagation discipline and the per-node flight recorders.
//!
//! ## Why end-propagation
//!
//! DES handlers run at a single instant of virtual time: a handler span
//! opens and closes at the same `now`, while the message spans it emits
//! end at their (future) delivery times. Recorded naively, children
//! would escape their parents' intervals. The tracer therefore keeps
//! every span's `end` at the maximum of its own end and its children's:
//! when a span closes (or a pre-closed message span is recorded), the
//! new end is pushed **up** the parent chain through already-closed
//! ancestors, stopping at the first still-open one (its eventual close
//! takes the maximum again). The invariant checked by
//! [`crate::span::validate`] — child intervals nest in parents — holds
//! by construction.

use crate::sampler::{self, SampleConfig};
use crate::span::{Span, SpanId, TraceContext, TraceId};
use lc_des::SimTime;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Default flight-recorder capacity (span events kept per node).
pub const FLIGHT_RECORDER_CAP: usize = 64;

/// One flight-recorder entry: a span start or end, as it happened.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// `true` for span start, `false` for span end.
    pub start: bool,
    /// The span.
    pub span: SpanId,
    /// The span's trace.
    pub trace: TraceId,
    /// The span's name.
    pub name: String,
}

impl SpanEvent {
    /// Render one post-mortem line.
    pub fn render(&self) -> String {
        format!(
            "{:>12} ns  {}  {} {} [{}]",
            self.at.as_nanos(),
            if self.start { "start" } else { "end  " },
            self.span,
            self.name,
            self.trace
        )
    }
}

/// Bounded ring of the most recent span events on one node. Survives the
/// node actor (it lives in the tracer), so it is exactly the post-mortem
/// record available after an injected crash.
#[derive(Debug)]
struct FlightRecorder {
    cap: usize,
    /// Events dropped because the ring was full.
    dropped: u64,
    buf: VecDeque<SpanEvent>,
}

impl FlightRecorder {
    fn push(&mut self, ev: SpanEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

struct Inner {
    enabled: bool,
    /// Per-node span sequence counters (deterministic id source).
    next_seq: BTreeMap<u32, u64>,
    /// Every span, open or closed, by id.
    spans: BTreeMap<SpanId, Span>,
    /// The context new spans and outgoing messages parent under.
    current: Option<TraceContext>,
    /// Per-node flight recorders.
    recorders: BTreeMap<u32, FlightRecorder>,
    recorder_cap: usize,
    /// Head-sampling configuration; `None` keeps every trace.
    sampling: Option<SampleConfig>,
}

/// The deterministic tracer. Cheap to clone (shared interior); a
/// disabled tracer turns every operation into a no-op so the traced-off
/// configuration is byte-identical to a build without tracing.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Mutex<Inner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    fn with_enabled(enabled: bool) -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(Inner {
                enabled,
                next_seq: BTreeMap::new(),
                spans: BTreeMap::new(),
                current: None,
                recorders: BTreeMap::new(),
                recorder_cap: FLIGHT_RECORDER_CAP,
                sampling: None,
            })),
        }
    }

    /// An enabled tracer.
    pub fn new() -> Tracer {
        Tracer::with_enabled(true)
    }

    /// A disabled tracer: every call is a no-op returning `None`.
    pub fn disabled() -> Tracer {
        Tracer::with_enabled(false)
    }

    /// Is span collection on?
    pub fn is_enabled(&self) -> bool {
        self.locked().enabled
    }

    /// Install (or clear) head-based trace sampling. With a config set,
    /// the keep/drop decision is made once per trace at root creation
    /// (see [`crate::sampler`]); span ids are still allocated for
    /// dropped traces, so the recorded spans of a sampled run are
    /// byte-identical to the same spans of an unsampled run.
    pub fn set_sampling(&self, cfg: Option<SampleConfig>) {
        self.locked().sampling = cfg;
    }

    /// The active head-sampling configuration, if any.
    pub fn sampling(&self) -> Option<SampleConfig> {
        self.locked().sampling
    }

    /// Resize the per-node flight-recorder rings. Applies to recorders
    /// created after the call, so configure it before the first span —
    /// node construction does, via `NodeConfig::builder().tracing(..)`.
    pub fn set_recorder_cap(&self, cap: usize) {
        self.locked().recorder_cap = cap.max(1);
    }

    /// The configured flight-recorder ring capacity.
    pub fn recorder_cap(&self) -> usize {
        self.locked().recorder_cap
    }

    fn locked(&self) -> MutexGuard<'_, Inner> {
        // A panicking holder cannot corrupt the span maps (all updates
        // are single-call), so recover rather than poison-propagate.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The context spans and messages currently parent under.
    pub fn current(&self) -> Option<TraceContext> {
        self.locked().current
    }

    /// Install `ctx` as the current context, returning the previous one
    /// so callers can restore it (handler enter/exit discipline).
    pub fn set_current(&self, ctx: Option<TraceContext>) -> Option<TraceContext> {
        let mut inner = self.locked();
        std::mem::replace(&mut inner.current, ctx)
    }

    /// Start a span on `node`: a child of the current context if one is
    /// installed, a new trace root otherwise. Returns `None` (and records
    /// nothing) when disabled.
    pub fn span(&self, node: u32, name: &str, now: SimTime) -> Option<TraceContext> {
        let parent = self.current();
        match parent {
            Some(p) => self.child_of(node, name, p, now),
            None => self.root(node, name, now),
        }
    }

    /// Start a new trace root on `node`.
    pub fn root(&self, node: u32, name: &str, now: SimTime) -> Option<TraceContext> {
        let mut inner = self.locked();
        if !inner.enabled {
            return None;
        }
        let id = inner.alloc(node);
        let sampled = inner.sample_decision(id);
        let ctx = TraceContext { trace: TraceId(id.0), span: id, sampled };
        if sampled {
            inner.open_span(ctx, None, node, name, now);
        }
        Some(ctx)
    }

    /// Start a span as an explicit child of `parent` (receiver side:
    /// the parent context arrived in a message header).
    pub fn child_of(
        &self,
        node: u32,
        name: &str,
        parent: TraceContext,
        now: SimTime,
    ) -> Option<TraceContext> {
        let mut inner = self.locked();
        if !inner.enabled {
            return None;
        }
        let id = inner.alloc(node);
        let ctx = TraceContext { trace: parent.trace, span: id, sampled: parent.sampled };
        if parent.sampled {
            inner.open_span(ctx, Some(parent.span), node, name, now);
        }
        Some(ctx)
    }

    /// Record a span whose full interval is already known (message
    /// spans: `Net::send` knows the delivery time when it plans the
    /// hop). The span is closed immediately and its end is propagated
    /// up the parent chain.
    pub fn complete(
        &self,
        node: u32,
        name: &str,
        parent: Option<TraceContext>,
        start: SimTime,
        end: SimTime,
    ) -> Option<TraceContext> {
        let mut inner = self.locked();
        if !inner.enabled {
            return None;
        }
        let id = inner.alloc(node);
        let (trace, parent_span, sampled) = match parent {
            Some(p) => (p.trace, Some(p.span), p.sampled),
            None => (TraceId(id.0), None, inner.sample_decision(id)),
        };
        let ctx = TraceContext { trace, span: id, sampled };
        if sampled {
            inner.open_span(ctx, parent_span, node, name, start);
            inner.close_span(id, end);
        }
        Some(ctx)
    }

    /// Close a span; its recorded end becomes the max of `now` and its
    /// children's ends, then propagates upward (see module docs).
    pub fn end(&self, ctx: TraceContext, now: SimTime) {
        if !ctx.sampled {
            return;
        }
        let mut inner = self.locked();
        if !inner.enabled {
            return;
        }
        inner.close_span(ctx.span, now);
    }

    /// Append an attribute to an open or closed span.
    pub fn set_attr(&self, ctx: TraceContext, key: &str, value: &str) {
        if !ctx.sampled {
            return;
        }
        let mut inner = self.locked();
        if !inner.enabled {
            return;
        }
        if let Some(s) = inner.spans.get_mut(&ctx.span) {
            s.attrs.push((key.to_owned(), value.to_owned()));
        }
    }

    /// Record a non-parent causal link (retry → original attempt).
    pub fn link(&self, ctx: TraceContext, to: SpanId) {
        if !ctx.sampled {
            return;
        }
        let mut inner = self.locked();
        if !inner.enabled {
            return;
        }
        if let Some(s) = inner.spans.get_mut(&ctx.span) {
            s.links.push(to);
        }
    }

    /// Snapshot of every recorded span, ordered by `(trace, start, id)`.
    pub fn spans(&self) -> Vec<Span> {
        let inner = self.locked();
        let mut all: Vec<Span> = inner.spans.values().cloned().collect();
        all.sort_by(|a, b| {
            (a.trace, a.start, a.id).cmp(&(b.trace, b.start, b.id))
        });
        all
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.locked().spans.len()
    }

    /// The most recent span events on `node`, oldest first, plus how
    /// many older events the bounded ring dropped.
    pub fn flight_record(&self, node: u32) -> (Vec<SpanEvent>, u64) {
        let inner = self.locked();
        match inner.recorders.get(&node) {
            Some(r) => (r.buf.iter().cloned().collect(), r.dropped),
            None => (Vec::new(), 0),
        }
    }

    /// Drop all recorded spans and flight records (counters are kept in
    /// [`crate::MetricsRegistry`], not here).
    pub fn clear(&self) {
        let mut inner = self.locked();
        inner.spans.clear();
        inner.recorders.clear();
        inner.current = None;
    }
}

impl Inner {
    fn alloc(&mut self, node: u32) -> SpanId {
        let seq = self.next_seq.entry(node).or_insert(0);
        *seq += 1;
        SpanId::compose(node, *seq)
    }

    /// Head-sampling decision for a trace rooted at `root` (made once,
    /// at root creation; descendants inherit it from the context).
    fn sample_decision(&self, root: SpanId) -> bool {
        match self.sampling {
            None => true,
            Some(cfg) => sampler::decide(cfg, root),
        }
    }

    fn record_event(&mut self, node: u32, ev: SpanEvent) {
        let cap = self.recorder_cap;
        self.recorders
            .entry(node)
            .or_insert_with(|| FlightRecorder { cap, dropped: 0, buf: VecDeque::new() })
            .push(ev);
    }

    fn open_span(
        &mut self,
        ctx: TraceContext,
        parent: Option<SpanId>,
        node: u32,
        name: &str,
        start: SimTime,
    ) {
        self.record_event(
            node,
            SpanEvent {
                at: start,
                start: true,
                span: ctx.span,
                trace: ctx.trace,
                name: name.to_owned(),
            },
        );
        self.spans.insert(
            ctx.span,
            Span {
                trace: ctx.trace,
                id: ctx.span,
                parent,
                name: name.to_owned(),
                node,
                start,
                end: start,
                open: true,
                attrs: Vec::new(),
                links: Vec::new(),
            },
        );
    }

    fn close_span(&mut self, id: SpanId, now: SimTime) {
        let Some(s) = self.spans.get_mut(&id) else { return };
        let end = if now > s.end { now } else { s.end };
        s.end = end;
        s.open = false;
        let (node, trace, name, parent) = (s.node, s.trace, s.name.clone(), s.parent);
        self.record_event(
            node,
            SpanEvent { at: now, start: false, span: id, trace, name },
        );
        self.propagate_end(parent, end);
    }

    /// Push `end` up the parent chain: closed ancestors stretch to cover
    /// it; the first open ancestor absorbs it implicitly (its close takes
    /// the max over children again), so the walk stops there.
    fn propagate_end(&mut self, mut parent: Option<SpanId>, end: SimTime) {
        while let Some(pid) = parent {
            let Some(p) = self.spans.get_mut(&pid) else { return };
            if p.end >= end {
                return;
            }
            p.end = end;
            if p.open {
                return;
            }
            parent = p.parent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::validate;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = Tracer::disabled();
        assert!(tr.root(0, "r", t(0)).is_none());
        assert!(tr.span(1, "s", t(5)).is_none());
        assert_eq!(tr.span_count(), 0);
        assert_eq!(tr.flight_record(0).0.len(), 0);
    }

    #[test]
    fn ids_are_deterministic_per_node() {
        let tr = Tracer::new();
        let a = tr.root(3, "a", t(0)).map(|c| c.span);
        let b = tr.root(3, "b", t(1)).map(|c| c.span);
        assert_eq!(a, Some(SpanId::compose(3, 1)));
        assert_eq!(b, Some(SpanId::compose(3, 2)));
        let tr2 = Tracer::new();
        assert_eq!(tr2.root(3, "a", t(0)).map(|c| c.span), a);
    }

    #[test]
    fn end_propagation_keeps_children_nested() {
        let tr = Tracer::new();
        let root = tr.root(0, "query", t(100)).unwrap();
        // message span ends later than the handler that sent it
        let msg = tr.complete(0, "net.msg", Some(root), t(100), t(900));
        tr.end(root, t(150)); // handler closes "before" the message lands
        let msg = msg.unwrap();
        let handler = tr.child_of(1, "node.registry", msg, t(900));
        tr.end(handler.unwrap(), t(900));
        let spans = tr.spans();
        validate(&spans).unwrap();
        // the root stretched to cover the message delivery
        let root_span = spans.iter().find(|s| s.id == root.span).unwrap();
        assert_eq!(root_span.end, t(900));
    }

    #[test]
    fn current_context_swap_restores() {
        let tr = Tracer::new();
        let a = tr.root(0, "a", t(0));
        let prev = tr.set_current(a);
        assert_eq!(prev, None);
        let child = tr.span(1, "b", t(1));
        assert_eq!(
            tr.spans().iter().find(|s| Some(s.id) == child.map(|c| c.span)).and_then(|s| s.parent),
            a.map(|c| c.span)
        );
        tr.set_current(prev);
        assert_eq!(tr.current(), None);
    }

    #[test]
    fn flight_recorder_is_bounded() {
        let tr = Tracer::new();
        for i in 0..100u64 {
            let c = tr.root(0, "s", t(i));
            if let Some(c) = c {
                tr.end(c, t(i));
            }
        }
        let (events, dropped) = tr.flight_record(0);
        assert_eq!(events.len(), FLIGHT_RECORDER_CAP);
        assert_eq!(dropped, 200 - FLIGHT_RECORDER_CAP as u64);
        // oldest first, and the ring kept the most recent events
        assert!(events[0].at <= events[events.len() - 1].at);
        assert_eq!(events[events.len() - 1].at, t(99));
    }

    #[test]
    fn sampling_allocates_ids_but_records_only_kept_traces() {
        // Build the full forest first, then replay with sampling on.
        let full = Tracer::new();
        let sampled = Tracer::new();
        sampled.set_sampling(Some(SampleConfig::one_in(2, 11)));
        let mut kept = 0usize;
        for i in 0..64u64 {
            for tr in [&full, &sampled] {
                let root = tr.root(0, "req", t(i * 10)).unwrap();
                let child = tr.child_of(1, "work", root, t(i * 10 + 1)).unwrap();
                tr.set_attr(child, "i", &i.to_string());
                tr.end(child, t(i * 10 + 2));
                tr.end(root, t(i * 10 + 3));
                if tr.sampling().is_some() && root.sampled {
                    kept += 1;
                }
            }
        }
        assert!(kept > 0 && kept < 64, "kept {kept}");
        assert_eq!(sampled.span_count(), kept * 2);
        // the sampled set is a subset of the full forest, byte-identical
        // span for span (ids kept advancing for dropped traces)
        let full_spans = full.spans();
        for s in sampled.spans() {
            let twin = full_spans.iter().find(|f| f.id == s.id).expect("twin");
            assert_eq!(format!("{:?}", twin), format!("{:?}", s));
        }
        validate(&sampled.spans()).unwrap();
    }

    #[test]
    fn recorder_cap_is_configurable() {
        let tr = Tracer::new();
        tr.set_recorder_cap(8);
        assert_eq!(tr.recorder_cap(), 8);
        for i in 0..20u64 {
            if let Some(c) = tr.root(0, "s", t(i)) {
                tr.end(c, t(i));
            }
        }
        let (events, dropped) = tr.flight_record(0);
        assert_eq!(events.len(), 8);
        assert_eq!(dropped, 40 - 8);
    }

    #[test]
    fn links_and_attrs_are_recorded() {
        let tr = Tracer::new();
        let a = tr.root(0, "call", t(0)).unwrap();
        let retry = tr.child_of(0, "retry", a, t(10)).unwrap();
        tr.link(retry, a.span);
        tr.set_attr(retry, "attempt", "2");
        tr.end(retry, t(20));
        tr.end(a, t(30));
        let spans = tr.spans();
        let r = spans.iter().find(|s| s.id == retry.span).unwrap();
        assert_eq!(r.links, vec![a.span]);
        assert_eq!(r.attr("attempt"), Some("2"));
        validate(&spans).unwrap();
    }
}
