//! Exporters: sorted JSONL, chrome://tracing JSON and the
//! trace-derived critical path.
//!
//! All JSON is hand-rendered (the container has no serde) and fully
//! deterministic: spans are emitted in `(trace, start, id)` order,
//! attributes sorted by key, and every number is an integer or a
//! fixed-precision decimal — two identical runs produce byte-identical
//! files, which ci.sh enforces by diffing consecutive exports.

use crate::span::{Span, SpanId, TraceId};
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn span_json(s: &Span) -> String {
    let mut line = String::with_capacity(160);
    let _ = write!(
        line,
        "{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":",
        s.trace, s.id
    );
    match s.parent {
        Some(p) => {
            let _ = write!(line, "\"{p}\"");
        }
        None => line.push_str("null"),
    }
    let _ = write!(
        line,
        ",\"name\":\"{}\",\"node\":{},\"start_ns\":{},\"end_ns\":{}",
        esc(&s.name),
        s.node,
        s.start.as_nanos(),
        s.end.as_nanos()
    );
    let mut attrs = s.attrs.clone();
    attrs.sort();
    line.push_str(",\"attrs\":{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "\"{}\":\"{}\"", esc(k), esc(v));
    }
    line.push_str("},\"links\":[");
    for (i, l) in s.links.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "\"{l}\"");
    }
    line.push_str("]}");
    line
}

/// One span per line, sorted by `(trace, start, id)`. `spans` must
/// already be in that order (as [`crate::Tracer::spans`] returns them).
pub fn to_jsonl(spans: &[Span]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&span_json(s));
        out.push('\n');
    }
    out
}

/// Microseconds with fixed 3-decimal nanosecond remainder (chrome's
/// `ts`/`dur` unit), rendered without float formatting ambiguity.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// A chrome://tracing (about:tracing / Perfetto) JSON document: one
/// complete (`ph:"X"`) event per span, traces as processes, nodes as
/// threads.
pub fn to_chrome(spans: &[Span]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let mut args = format!("\"span\":\"{}\"", s.id);
        let mut attrs = s.attrs.clone();
        attrs.sort();
        for (k, v) in &attrs {
            let _ = write!(args, ",\"{}\":\"{}\"", esc(k), esc(v));
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"lc\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":\"{}\",\"tid\":\"node {}\",\"args\":{{{args}}}}}",
            esc(&s.name),
            us(s.start.as_nanos()),
            us(s.end.saturating_sub(s.start).as_nanos()),
            s.trace,
            s.node,
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// One segment of a critical path.
#[derive(Clone, Debug)]
pub struct CritSegment {
    /// Depth below the root (root = 0).
    pub depth: usize,
    /// The span.
    pub id: SpanId,
    /// Its name.
    pub name: String,
    /// Node it ran on.
    pub node: u32,
    /// Start, ns.
    pub start_ns: u64,
    /// End, ns.
    pub end_ns: u64,
}

/// The critical path of `trace`: from the root, repeatedly descend into
/// the child whose end time is latest (the child that kept the trace
/// alive longest) until a leaf. The returned chain is the sequence of
/// spans whose completion gated the trace's end-to-end latency.
pub fn critical_path(spans: &[Span], trace: TraceId) -> Vec<CritSegment> {
    let mut path = Vec::new();
    let Some(root) = spans.iter().find(|s| s.trace == trace && s.parent.is_none()) else {
        return path;
    };
    let mut cur = root;
    let mut depth = 0;
    loop {
        path.push(CritSegment {
            depth,
            id: cur.id,
            name: cur.name.clone(),
            node: cur.node,
            start_ns: cur.start.as_nanos(),
            end_ns: cur.end.as_nanos(),
        });
        // latest-ending child; ties broken by id for determinism
        let next = spans
            .iter()
            .filter(|s| s.parent == Some(cur.id))
            .max_by_key(|s| (s.end, std::cmp::Reverse(s.id)));
        match next {
            Some(c) => {
                cur = c;
                depth += 1;
            }
            None => return path,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceContext;
    use crate::Tracer;
    use lc_des::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample() -> (Tracer, TraceContext) {
        let tr = Tracer::new();
        let root = tr.root(0, "query", t(0)).unwrap();
        let msg = tr.complete(0, "net.msg", Some(root), t(0), t(500)).unwrap();
        tr.set_attr(msg, "to", "1");
        tr.set_attr(msg, "class", "lan");
        let h = tr.child_of(1, "node.registry", msg, t(500)).unwrap();
        tr.end(h, t(500));
        tr.end(root, t(700));
        (tr, root)
    }

    #[test]
    fn jsonl_is_sorted_and_stable() {
        let (tr, _) = sample();
        let a = to_jsonl(&tr.spans());
        let b = to_jsonl(&tr.spans());
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 3);
        assert!(a.lines().next().unwrap().contains("\"name\":\"query\""));
        // attrs are key-sorted regardless of insertion order
        let msg_line = a.lines().find(|l| l.contains("net.msg")).unwrap();
        let ci = msg_line.find("\"class\"").unwrap();
        let ti = msg_line.find("\"to\"").unwrap();
        assert!(ci < ti);
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let (tr, _) = sample();
        let doc = to_chrome(&tr.spans());
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 3);
        assert!(doc.contains("\"ts\":0.000"));
        assert!(doc.contains("\"dur\":0.500") || doc.contains("\"dur\":500"));
    }

    #[test]
    fn escaping_handles_quotes_and_control() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn critical_path_follows_latest_child() {
        let (tr, root) = sample();
        let spans = tr.spans();
        let path = critical_path(&spans, root.trace);
        // root -> message (end 500, stretched by handler) is the gate
        assert_eq!(path[0].name, "query");
        assert_eq!(path[1].name, "net.msg");
        assert_eq!(path.last().unwrap().name, "node.registry");
        assert!(path.windows(2).all(|w| w[0].depth + 1 == w[1].depth));
    }
}
