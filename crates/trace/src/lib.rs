//! # lc-trace — deterministic distributed tracing for the simulated network
//!
//! The paper's reflection architecture (§2.4) makes every node
//! self-describing through aggregate counters; this crate adds the
//! *causal* dimension: Dapper-style spans that follow one registry
//! query or component migration across the fabric, the ORB adapter and
//! the four node services, stamped with **virtual time** and allocated
//! from **per-node counters** — no RNG, no wall clock (lint rule D5
//! enforces this), so traces are byte-reproducible and usable as a
//! correctness oracle, not just a debugging aid.
//!
//! | module | provides |
//! |---|---|
//! | [`span`] | [`TraceContext`], [`Span`], [`validate`] (tree well-formedness) |
//! | [`tracer`] | [`Tracer`] (allocation, current-context register, end-propagation), flight recorder |
//! | [`metrics`] | [`MetricsRegistry`] (counters/gauges/fixed-bucket histograms) |
//! | [`streaming`] | constant-memory primitives for 10⁶-node runs: [`DenseCounters`], [`ShardedCounter`], [`ReservoirHistogram`] |
//! | [`export`] | sorted JSONL, chrome://tracing JSON, critical path |
//! | [`sampler`] | seeded head-based trace sampling ([`SampleConfig`]) for bounded-memory tracing at scale |
//! | [`slo`] | windowed latency/burn-rate SLO rules over [`MetricsRegistry`] deltas, breach records with flight dumps |
//! | [`flame`] | collapsed-stack flamegraph + per-node virtual-time timeline from span trees |
//! | [`profile`] | deterministic rendering of the DES kernel's [`lc_des::ProfileReport`] |
//!
//! ## Propagation model
//!
//! * `Net::send` records a **message span** for every hop (the DES
//!   knows the delivery time at send time, so the span is complete
//!   immediately) and stamps the [`TraceContext`] into the frame.
//! * The node router opens a **handler span** under the incoming
//!   context and installs it as the tracer's *current context* while
//!   the service handler runs; everything the handler sends parents
//!   under it. A disabled tracer records nothing and the context slot
//!   stays `None` — traced-off runs are byte-identical.
//! * Retries start fresh spans that **link** to the attempt they retry
//!   (links, not parent edges, so late retries cannot break interval
//!   nesting).

pub mod export;
pub mod flame;
pub mod metrics;
pub mod profile;
pub mod sampler;
pub mod slo;
pub mod span;
pub mod streaming;
pub mod tracer;

pub use export::{critical_path, to_chrome, to_jsonl, CritSegment};
pub use flame::{to_collapsed, to_timeline};
pub use metrics::{BucketHistogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use sampler::SampleConfig;
pub use slo::{SloBreach, SloConfig, SloKind, SloMonitor, SloRule};
pub use streaming::{CounterId, DenseCounters, ReservoirHistogram, ShardedCounter};
pub use span::{validate, Span, SpanId, TraceContext, TraceId};
pub use tracer::{SpanEvent, Tracer, FLIGHT_RECORDER_CAP};
