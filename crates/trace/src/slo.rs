//! SLO monitors evaluated in virtual time.
//!
//! A monitor holds a set of rules over one [`MetricsRegistry`] and is
//! polled on a virtual-time cadence (the node arms a timer; nothing
//! here schedules anything). Each evaluation reads the **window** of
//! samples since the previous evaluation via
//! [`MetricsRegistry::snapshot`] deltas — cumulative accessors are
//! never disturbed — and fires a deterministic [`SloBreach`] per rule
//! the window violates. The caller is expected to attach the node's
//! flight-recorder dump to each breach ([`SloMonitor::record_breach`]),
//! which is the "automatic dump on SLO breach, not only on crash"
//! behaviour the node runtime wires up.
//!
//! All rule arithmetic is integer (parts-per-million thresholds,
//! bucket-edge quantiles), so two runs that observe the same samples
//! breach at the same virtual instants with the same rendered numbers.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::tracer::SpanEvent;
use lc_des::SimTime;

/// One SLO rule kind.
#[derive(Clone, Debug)]
pub enum SloKind {
    /// Breach when the windowed `q_ppm` quantile of histogram `key`
    /// exceeds `max` (same unit as the histogram's samples). Windows
    /// with fewer than `min_samples` observations never breach.
    LatencyQuantile { key: String, q_ppm: u32, max: u64, min_samples: u64 },
    /// Error-budget burn rate: breach when, over the window,
    /// `bad/total > budget_ppm * max_burn` (burn expressed as a
    /// multiple of the budget, in hundredths: `max_burn_centi = 250`
    /// means "burning budget 2.5× too fast"). Windows with fewer than
    /// `min_total` events never breach.
    BurnRate { bad: String, total: String, budget_ppm: u32, max_burn_centi: u32, min_total: u64 },
}

/// A named SLO rule.
#[derive(Clone, Debug)]
pub struct SloRule {
    /// Stable rule name (appears in breach records and reports).
    pub name: String,
    /// What to evaluate.
    pub kind: SloKind,
}

/// Monitor configuration: evaluation cadence plus the rule set.
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// Virtual-time evaluation cadence (the node's timer period).
    pub window: SimTime,
    /// Rules evaluated each window.
    pub rules: Vec<SloRule>,
}

impl SloConfig {
    /// Preset: admission-control shed burn rate. Breaches when more
    /// than `budget_ppm` parts-per-million of admitted traffic is shed
    /// per window (burn multiple fixed at 1×), evaluated over the
    /// node-local `admission.shed` / `admission.total` counters that
    /// the container's admission gate maintains.
    pub fn shed_burn(window: SimTime, budget_ppm: u32) -> SloConfig {
        SloConfig {
            window,
            rules: vec![SloRule {
                name: "admission-shed-burn".into(),
                kind: SloKind::BurnRate {
                    bad: "admission.shed".into(),
                    total: "admission.total".into(),
                    budget_ppm,
                    max_burn_centi: 100,
                    min_total: 16,
                },
            }],
        }
    }
}

/// One deterministic breach event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloBreach {
    /// Virtual time of the evaluation that fired.
    pub at: SimTime,
    /// Name of the breached rule.
    pub rule: String,
    /// Observed value: the quantile estimate (latency rules) or the
    /// windowed burn rate in centi-multiples of budget (burn rules).
    pub observed: u64,
    /// The rule's threshold in the same unit as `observed`.
    pub threshold: u64,
    /// Events/samples in the violating window.
    pub window_events: u64,
}

impl SloBreach {
    /// Render one deterministic report line.
    pub fn render(&self) -> String {
        format!(
            "{:>12} ns  SLO BREACH  {}  observed {} > {} over {} events",
            self.at.as_nanos(),
            self.rule,
            self.observed,
            self.threshold,
            self.window_events
        )
    }
}

/// A breach plus the flight-recorder dump captured when it fired.
#[derive(Clone, Debug)]
pub struct BreachRecord {
    /// The breach.
    pub breach: SloBreach,
    /// Flight-recorder events at breach time, oldest first.
    pub flight: Vec<SpanEvent>,
    /// Events the bounded ring had already dropped.
    pub flight_dropped: u64,
}

/// The per-node monitor: rules + the previous window's snapshot.
#[derive(Clone, Debug)]
pub struct SloMonitor {
    cfg: SloConfig,
    last: MetricsSnapshot,
    evals: u64,
    breaches: Vec<BreachRecord>,
}

impl SloMonitor {
    /// A monitor with an empty baseline window.
    pub fn new(cfg: SloConfig) -> SloMonitor {
        SloMonitor { cfg, last: MetricsSnapshot::default(), evals: 0, breaches: Vec::new() }
    }

    /// The configured evaluation cadence.
    pub fn window(&self) -> SimTime {
        self.cfg.window
    }

    /// Evaluate every rule against the window since the last call and
    /// advance the window. Returns the breaches fired at this instant
    /// (also appended to the monitor's history once the caller attaches
    /// flight dumps via [`SloMonitor::record_breach`]).
    pub fn evaluate(&mut self, now: SimTime, reg: &MetricsRegistry) -> Vec<SloBreach> {
        self.evals += 1;
        let mut fired = Vec::new();
        for rule in &self.cfg.rules {
            match &rule.kind {
                SloKind::LatencyQuantile { key, q_ppm, max, min_samples } => {
                    let Some(w) = reg.histogram_delta(key, &self.last) else { continue };
                    if w.count < *min_samples {
                        continue;
                    }
                    let Some(q) = w.quantile_le(*q_ppm) else { continue };
                    if q > *max {
                        fired.push(SloBreach {
                            at: now,
                            rule: rule.name.clone(),
                            observed: q,
                            threshold: *max,
                            window_events: w.count,
                        });
                    }
                }
                SloKind::BurnRate { bad, total, budget_ppm, max_burn_centi, min_total } => {
                    let t = reg.counter_delta(total, &self.last);
                    if t < *min_total || *budget_ppm == 0 {
                        continue;
                    }
                    let b = reg.counter_delta(bad, &self.last);
                    // burn in centi-multiples of budget:
                    //   (bad/total) / (budget_ppm/1e6) * 100
                    let burn_centi =
                        (b as u128 * 1_000_000 * 100 / (t as u128 * *budget_ppm as u128)) as u64;
                    if burn_centi > *max_burn_centi as u64 {
                        fired.push(SloBreach {
                            at: now,
                            rule: rule.name.clone(),
                            observed: burn_centi,
                            threshold: *max_burn_centi as u64,
                            window_events: t,
                        });
                    }
                }
            }
        }
        self.last = reg.snapshot();
        fired
    }

    /// Attach a flight-recorder dump to a fired breach and keep it.
    pub fn record_breach(&mut self, breach: SloBreach, flight: Vec<SpanEvent>, dropped: u64) {
        self.breaches.push(BreachRecord { breach, flight, flight_dropped: dropped });
    }

    /// Every recorded breach, in firing order.
    pub fn breaches(&self) -> &[BreachRecord] {
        &self.breaches
    }

    /// Evaluations performed so far.
    pub fn evals(&self) -> u64 {
        self.evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn latency_cfg() -> SloConfig {
        SloConfig {
            window: t(100),
            rules: vec![SloRule {
                name: "query-p90".into(),
                kind: SloKind::LatencyQuantile {
                    key: "lat".into(),
                    q_ppm: 900_000,
                    max: 100,
                    min_samples: 4,
                },
            }],
        }
    }

    #[test]
    fn latency_rule_fires_on_windowed_quantile_only() {
        let mut reg = MetricsRegistry::new();
        let mut mon = SloMonitor::new(latency_cfg());
        // first window: fast samples — no breach
        for _ in 0..10 {
            reg.observe("lat", &[10, 100, 1000], 5);
        }
        assert!(mon.evaluate(t(100), &reg).is_empty());
        // second window: slow samples; the *cumulative* p90 would still
        // look fine, the window must not
        for _ in 0..10 {
            reg.observe("lat", &[10, 100, 1000], 900);
        }
        let fired = mon.evaluate(t(200), &reg);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "query-p90");
        assert_eq!(fired[0].observed, 1000);
        assert_eq!(fired[0].window_events, 10);
        // third window: quiet (below min_samples) — no breach
        reg.observe("lat", &[10, 100, 1000], 900);
        assert!(mon.evaluate(t(300), &reg).is_empty());
        assert_eq!(mon.evals(), 3);
    }

    #[test]
    fn burn_rate_rule_is_integer_deterministic() {
        let mut reg = MetricsRegistry::new();
        let mut mon = SloMonitor::new(SloConfig {
            window: t(100),
            rules: vec![SloRule {
                name: "empty-burn".into(),
                kind: SloKind::BurnRate {
                    bad: "q.empty".into(),
                    total: "q.total".into(),
                    budget_ppm: 100_000, // 10% error budget
                    max_burn_centi: 200, // breach above 2x budget
                    min_total: 10,
                },
            }],
        });
        reg.add("q.total", 20);
        reg.add("q.empty", 2); // exactly budget: burn = 100 centi
        assert!(mon.evaluate(t(100), &reg).is_empty());
        reg.add("q.total", 20);
        reg.add("q.empty", 5); // 25% of window: burn = 250 centi
        let fired = mon.evaluate(t(200), &reg);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].observed, 250);
        assert_eq!(fired[0].threshold, 200);
        let mut line = fired[0].render();
        assert!(line.contains("SLO BREACH"));
        line.truncate(12);
        // breach history with a dump attached
        mon.record_breach(fired[0].clone(), Vec::new(), 0);
        assert_eq!(mon.breaches().len(), 1);
        assert_eq!(mon.breaches()[0].breach.rule, "empty-burn");
    }
}
