//! # lc-baselines — the alternatives CORBA-LC argues against
//!
//! Section 4 of the paper contrasts CORBA-LC with the CCM/EJB world:
//! fixed assemblies deployed at design time, centralized services, and
//! strongly consistent membership. The experiments need those systems as
//! comparison points, so this crate provides them:
//!
//! * [`flat`] — a **centralized registry** configuration: one registry
//!   node knows everyone (the hierarchy degenerates to a single group).
//!   E2 compares its query traffic concentration against the MRM tree.
//! * [`strong`] — a **strong-consistency membership protocol**
//!   (coordinator-driven view agreement with per-change acknowledged
//!   broadcasts, after Cristian & Schmuck's group-membership model the
//!   paper cites). E3 compares its control bandwidth under churn with
//!   soft-consistency keep-alives.
//! * **Static deployment** is already expressible in `lc-core` as
//!   [`lc_core::PlacementStrategy::StaticRoundRobin`]; re-exported here
//!   for discoverability.

pub mod flat;
pub mod strong;

pub use flat::flat_config;
pub use lc_core::PlacementStrategy;
