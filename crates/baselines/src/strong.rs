//! Strong-consistency membership baseline.
//!
//! The paper's soft-consistency guideline is justified by contrast with
//! protocols where managers keep "perfect knowledge of the set of hosts
//! they manage". This module implements that contrast: a coordinator-
//! driven group-membership protocol in the style of Cristian & Schmuck
//! (the paper's reference \[2\]):
//!
//! * every member heartbeats the coordinator each period;
//! * the coordinator detects a change (join, leave, missed heartbeats)
//!   and installs a **new view** by broadcasting `(generation, members)`
//!   to *all* members, each of which acknowledges;
//! * a view is only committed when every member has acked (blocking
//!   re-broadcast per period until then).
//!
//! Cost shape: steady state pays N heartbeats per period (like soft
//! consistency) **plus** `O(N)` view+ack messages *per membership
//! change* — under churn of rate λ, that is `O(λ·N)` extra traffic and
//! it balloons as the system grows, which is exactly what E3 measures.

use lc_des::{Actor, AnyMsg, AnyMsgExt, Ctx, SimTime};
use lc_net::{HostId, Net, NetMsg};
use std::collections::BTreeSet;

/// Protocol messages. `Clone` because the fabric may duplicate frames
/// in flight; the protocol is idempotent under duplicates.
#[derive(Clone)]
enum Msg {
    /// Member → coordinator, each period.
    Heartbeat { from: HostId },
    /// Coordinator → everyone on a view change.
    View { generation: u64, members: BTreeSet<HostId> },
    /// Member → coordinator, confirming a view.
    ViewAck { from: HostId, generation: u64 },
}

const HEARTBEAT_SIZE: u64 = 40;
const ACK_SIZE: u64 = 48;

fn view_size(members: &BTreeSet<HostId>) -> u64 {
    32 + members.len() as u64 * 8
}

/// Timer messages.
enum Tick {
    Heartbeat,
    Sweep,
}

/// Configuration of the strong membership protocol.
#[derive(Clone, Debug)]
pub struct StrongConfig {
    /// Heartbeat (and sweep) period.
    pub period: SimTime,
    /// Heartbeats missed before the coordinator declares a member dead.
    pub timeout_intervals: u32,
}

impl Default for StrongConfig {
    fn default() -> Self {
        StrongConfig { period: SimTime::from_secs(2), timeout_intervals: 3 }
    }
}

/// One member of the strongly consistent group. Host 0 is the fixed
/// coordinator (the baseline does not model coordinator failover; E3
/// runs churn on the other members).
pub struct StrongMember {
    host: HostId,
    net: Net,
    cfg: StrongConfig,
    all_hosts: Vec<HostId>,
    // coordinator state
    last_heartbeat: Vec<(HostId, SimTime)>,
    view: BTreeSet<HostId>,
    generation: u64,
    unacked: BTreeSet<HostId>,
    // member state
    current_generation: u64,
}

impl StrongMember {
    /// Create the member for `host`.
    pub fn new(host: HostId, net: Net, cfg: StrongConfig, all_hosts: Vec<HostId>) -> Self {
        let view = all_hosts.iter().copied().collect();
        StrongMember {
            host,
            net,
            cfg,
            all_hosts,
            last_heartbeat: Vec::new(),
            view,
            generation: 0,
            unacked: BTreeSet::new(),
            current_generation: 0,
        }
    }

    /// Install into a simulation: spawn, bind, start timers.
    pub fn install(sim: &mut lc_des::Sim, net: &Net, cfg: &StrongConfig) -> Vec<lc_des::ActorId> {
        net.host_ids()
            .into_iter()
            .map(|host| Self::install_one(sim, net, cfg, host))
            .collect()
    }

    /// (Re)install a single member — used for initial bring-up and for
    /// rejoin after a crash.
    pub fn install_one(
        sim: &mut lc_des::Sim,
        net: &Net,
        cfg: &StrongConfig,
        host: HostId,
    ) -> lc_des::ActorId {
        let member = StrongMember::new(host, net.clone(), cfg.clone(), net.host_ids());
        let a = sim.spawn(member);
        net.bind(host, a);
        let jitter = SimTime::from_micros(113 * (host.0 as u64 + 1));
        sim.send_in(jitter, a, Tick::Heartbeat);
        if host == HostId(0) {
            sim.send_in(jitter + cfg.period / 2, a, Tick::Sweep);
        }
        a
    }

    fn coordinator(&self) -> HostId {
        HostId(0)
    }

    fn is_coordinator(&self) -> bool {
        self.host == self.coordinator()
    }

    fn broadcast_view(&mut self, ctx: &mut Ctx<'_>) {
        self.generation += 1;
        self.unacked = self.view.clone();
        self.unacked.remove(&self.host);
        let size = view_size(&self.view);
        for &m in self.view.clone().iter() {
            if m == self.host {
                continue;
            }
            let _ = self.net.send(
                ctx,
                self.host,
                m,
                size,
                Msg::View { generation: self.generation, members: self.view.clone() },
            );
            ctx.metrics().incr("strong.view_msgs");
        }
        ctx.metrics().incr("strong.view_changes");
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>, tick: Tick) {
        match tick {
            Tick::Heartbeat => {
                if !self.is_coordinator() {
                    let _ = self.net.send(
                        ctx,
                        self.host,
                        self.coordinator(),
                        HEARTBEAT_SIZE,
                        Msg::Heartbeat { from: self.host },
                    );
                    ctx.metrics().incr("strong.heartbeats");
                }
                ctx.timer_in(self.cfg.period, Tick::Heartbeat);
            }
            Tick::Sweep => {
                debug_assert!(self.is_coordinator());
                let now = ctx.now();
                let timeout = self.cfg.period * self.cfg.timeout_intervals as u64;
                let mut next_view = self.view.clone();
                // Evict silent members (the coordinator itself stays).
                for &h in &self.all_hosts {
                    if h == self.host {
                        continue;
                    }
                    let last = self
                        .last_heartbeat
                        .iter()
                        .find(|(m, _)| *m == h)
                        .map(|(_, t)| *t)
                        .unwrap_or(SimTime::ZERO);
                    if now.saturating_sub(last) > timeout {
                        next_view.remove(&h);
                    } else {
                        next_view.insert(h);
                    }
                }
                if next_view != self.view {
                    self.view = next_view;
                    self.broadcast_view(ctx);
                } else if !self.unacked.is_empty() {
                    // Re-broadcast until unanimously acknowledged —
                    // strong consistency blocks on every member.
                    self.broadcast_view(ctx);
                }
                ctx.timer_in(self.cfg.period, Tick::Sweep);
            }
        }
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg {
            Msg::Heartbeat { from } => {
                let now = ctx.now();
                if let Some(e) = self.last_heartbeat.iter_mut().find(|(m, _)| *m == from) {
                    e.1 = now;
                } else {
                    self.last_heartbeat.push((from, now));
                    // A brand-new (or returning) member triggers a view
                    // change immediately.
                    if !self.view.contains(&from) {
                        self.view.insert(from);
                        self.broadcast_view(ctx);
                    }
                }
            }
            Msg::View { generation, members } => {
                self.current_generation = generation;
                let _ = members;
                let _ = self.net.send(
                    ctx,
                    self.host,
                    self.coordinator(),
                    ACK_SIZE,
                    Msg::ViewAck { from: self.host, generation },
                );
                ctx.metrics().incr("strong.acks");
            }
            Msg::ViewAck { from, generation } => {
                if generation == self.generation {
                    self.unacked.remove(&from);
                    if self.unacked.is_empty() {
                        ctx.metrics().incr("strong.views_committed");
                    }
                }
            }
        }
    }

    /// Current committed view size (coordinator's perspective).
    pub fn view_size(&self) -> usize {
        self.view.len()
    }
}

impl Actor for StrongMember {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: AnyMsg) {
        let msg = match msg.downcast_msg::<Tick>() {
            Ok(t) => return self.on_tick(ctx, t),
            Err(m) => m,
        };
        if let Ok(net_msg) = msg.downcast_msg::<NetMsg>() {
            if let Ok(m) = net_msg.payload.downcast_msg::<Msg>() {
                self.on_msg(ctx, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_des::Sim;
    use lc_net::Topology;

    fn run_stable(n: usize, secs: u64) -> (u64, u64, u64) {
        let net = Net::builder(Topology::lan(n)).build();
        let mut sim = Sim::new(7);
        let cfg = StrongConfig { period: SimTime::from_millis(500), timeout_intervals: 3 };
        StrongMember::install(&mut sim, &net, &cfg);
        sim.run_until(SimTime::from_secs(secs));
        (
            sim.metrics_ref().counter("strong.heartbeats"),
            sim.metrics_ref().counter("strong.view_msgs"),
            sim.metrics_ref().counter("strong.view_changes"),
        )
    }

    #[test]
    fn stable_group_pays_only_heartbeats() {
        let (hb, views, changes) = run_stable(16, 20);
        assert!(hb > 15 * 30, "heartbeats flow: {hb}");
        assert_eq!(changes, 0, "no churn → no view changes");
        assert_eq!(views, 0);
    }

    #[test]
    fn crash_triggers_acked_view_broadcast() {
        let net = Net::builder(Topology::lan(8)).build();
        let mut sim = Sim::new(9);
        let cfg = StrongConfig { period: SimTime::from_millis(500), timeout_intervals: 3 };
        let actors = StrongMember::install(&mut sim, &net, &cfg);
        sim.run_until(SimTime::from_secs(5));
        // Crash member 5.
        net.set_host_up(lc_net::HostId(5), false);
        sim.kill(actors[5]);
        sim.run_until(SimTime::from_secs(15));
        let m = sim.metrics_ref();
        assert!(m.counter("strong.view_changes") >= 1);
        // view broadcast went to ~6 surviving non-coordinator members
        assert!(m.counter("strong.view_msgs") >= 6);
        assert!(m.counter("strong.views_committed") >= 1);
        let coord = sim.actor_as::<StrongMember>(actors[0]).unwrap();
        assert_eq!(coord.view_size(), 7);
    }

    #[test]
    fn rejoin_triggers_another_view() {
        let net = Net::builder(Topology::lan(4)).build();
        let mut sim = Sim::new(11);
        let cfg = StrongConfig { period: SimTime::from_millis(500), timeout_intervals: 3 };
        let actors = StrongMember::install(&mut sim, &net, &cfg);
        sim.run_until(SimTime::from_secs(4));
        net.set_host_up(lc_net::HostId(2), false);
        sim.kill(actors[2]);
        sim.run_until(SimTime::from_secs(10));
        let changes_after_crash = sim.metrics_ref().counter("strong.view_changes");
        assert!(changes_after_crash >= 1);
        // Recover: fresh member actor.
        net.set_host_up(lc_net::HostId(2), true);
        StrongMember::install_one(&mut sim, &net, &cfg, lc_net::HostId(2));
        sim.run_until(SimTime::from_secs(16));
        assert!(sim.metrics_ref().counter("strong.view_changes") > changes_after_crash);
        let coord = sim.actor_as::<StrongMember>(actors[0]).unwrap();
        assert_eq!(coord.view_size(), 4);
    }
}
