//! The centralized ("flat") registry baseline.
//!
//! A single registry server holds every node's reports and answers every
//! query — the architecture of a naming/trading service without the
//! paper's hierarchical MRMs. In this codebase that is precisely the
//! degenerate hierarchy with one group spanning all hosts: every node
//! reports straight to host 0 (and its replicas), and every query is a
//! two-hop star walk through host 0.
//!
//! E2 uses [`flat_config`] vs the hierarchical default to reproduce the
//! paper's claim that the hierarchy "reduces network load and exploits
//! locality": the flat registry's *per-link* and *per-node* load grows
//! with N while the tree bounds both.
//!
//! The baseline needs no code of its own because the node is decomposed
//! into services behind [`lc_core::NodeService`]: the Component Registry
//! service routes queries over whatever hierarchy the Network Cohesion
//! service maintains, so collapsing the hierarchy via configuration
//! re-targets *all* registry traffic at host 0 without touching either
//! service. Host 0's concentration shows up directly in its per-service
//! [`lc_core::NodeMetrics`] (registry `msgs in` ≫ any other node's).

use lc_core::cohesion::CohesionConfig;
use lc_des::SimTime;

/// Cohesion parameters that collapse the hierarchy into one group of
/// `n_hosts`, i.e. a centralized registry at host 0 (with `replicas`
/// stand-bys).
pub fn flat_config(n_hosts: usize, replicas: usize, report_period: SimTime) -> CohesionConfig {
    CohesionConfig {
        fanout: n_hosts.max(2),
        replicas,
        report_period,
        timeout_intervals: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_core::Hierarchy;
    use lc_net::HostId;

    #[test]
    fn flat_config_yields_single_group() {
        let hosts: Vec<HostId> = (0..64).map(HostId).collect();
        let h = Hierarchy::build(&hosts, flat_config(64, 1, SimTime::from_secs(2)));
        assert_eq!(h.depth(), 1);
        assert_eq!(h.levels[0].len(), 1);
        assert_eq!(h.levels[0][0].mrms, vec![HostId(0)]);
        // every node reports to the central server
        for host in &hosts {
            assert_eq!(h.report_targets(*host), vec![HostId(0)]);
        }
    }
}
