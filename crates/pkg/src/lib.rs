//! # lc-pkg — CORBA-LC component packaging
//!
//! Implements §2.3 ("Packaging") and the static-dimension meta-data of
//! §2.1.1 of the paper: self-contained binary units that bundle a
//! component's binaries for several platforms together with its XML
//! descriptor and IDL sources, compressed for slow links, digest-protected
//! and vendor-signed, and modular enough that a tiny device extracts only
//! the sections it needs.
//!
//! * [`descriptor`] — the `<component>` XML document (static + dynamic
//!   dimensions), schema-validated.
//! * [`container`] — the CLCP wire format ([`Package`]).
//! * [`lzss`] — from-scratch LZSS compression (requirement: "must admit
//!   compression").
//! * [`sha256`] / [`sign`] — from-scratch SHA-256 and the HMAC signature
//!   scheme standing in for public-key component signing (see DESIGN.md).
//!
//! ```
//! use lc_pkg::{ComponentDescriptor, Package, Platform, Version, SigningKey, TrustStore};
//! use lc_pkg::sign::Verification;
//!
//! let desc = ComponentDescriptor::new("Whiteboard", Version::new(1, 0), "acme")
//!     .provides("board", "IDL:cscw/Board:1.0");
//! let mut pkg = Package::new(desc)
//!     .with_idl("board.idl", "module cscw { interface Board { void clear(); }; };")
//!     .with_binary(Platform::reference(), "whiteboard_impl", b"...machine code...");
//! pkg.seal(&SigningKey::new("acme", b"secret"));
//!
//! let wire = pkg.to_bytes();                       // compressed container
//! let received = Package::from_bytes(&wire).unwrap(); // digests verified
//! let mut trust = TrustStore::new();
//! trust.trust("acme", b"secret");
//! assert_eq!(received.verify(&trust), Verification::Trusted);
//! ```

pub mod container;
pub mod descriptor;
pub mod lzss;
pub mod sha256;
pub mod sign;

pub use container::{BinarySection, Package, PackageError};
pub use descriptor::{
    ComponentDep, ComponentDescriptor, EventPortDecl, Licensing, LifeCycle, Mobility, Platform,
    PortDecl, QosSpec, Replication, Version,
};
pub use sign::{Signature, SigningKey, TrustStore};

#[cfg(test)]
mod proptests {
    use super::*;
    use lc_prop::{alphabet, check, Gen};
    use std::collections::BTreeSet;

    const LOWER_DASH: &str = "abcdefghijklmnopqrstuvwxyz-";

    fn platform(g: &mut Gen) -> Platform {
        Platform::new(
            &g.string_of(alphabet::LOWER, 2..7),
            &g.string_of(alphabet::LOWER, 2..7),
            &g.string_of(LOWER_DASH, 2..9),
        )
    }

    /// Any generated package round-trips through the wire format.
    #[test]
    fn package_round_trips() {
        check("package_round_trips", |g| {
            let mut name = g.string_of(alphabet::ALPHA, 1..2);
            name.push_str(&g.string_of(alphabet::ALNUM, 0..13));
            let (major, minor) = (g.gen_range(0..20u32), g.gen_range(0..20u32));
            let idl = g.ascii_printable(0..201);
            let platforms: BTreeSet<Platform> =
                (0..g.gen_range(0..4usize)).map(|_| platform(g)).collect();
            let payload = g.bytes(0..2000);

            let desc = ComponentDescriptor::new(&name, Version::new(major, minor), "vendor");
            let mut pkg = Package::new(desc).with_idl("x.idl", &idl);
            for (i, p) in platforms.into_iter().enumerate() {
                pkg = pkg.with_binary(p, &format!("behavior{i}"), &payload);
            }
            let bytes = pkg.to_bytes();
            let back = Package::from_bytes(&bytes).unwrap();
            assert_eq!(pkg, back);
        });
    }

    /// Parsing never panics on arbitrary bytes.
    #[test]
    fn from_bytes_total() {
        check("from_bytes_total", |g| {
            let garbage = g.bytes(0..4000);
            let _ = Package::from_bytes(&garbage);
        });
    }
}
