//! The CORBA-LC component descriptor: the XML meta-data shipped inside
//! every package.
//!
//! §2.1 of the paper splits a component's description into the **static
//! dimension** (the binary package: platform dependencies, required
//! components, mobility, replication, aggregation, licensing, security)
//! and the **dynamic dimension** (the component type: provided/used
//! interface ports, produced/consumed event kinds, factory and QoS
//! information). Both dimensions live in one `<component>` document here,
//! validated against an OSD-style schema ([`descriptor_schema`]) before a
//! node will install the package.

use lc_xml::{AttrRule, Element, ElementRule, Multiplicity, Schema};

/// A component version: `major.minor`.
///
/// Version compatibility follows the paper's substitutability idea:
/// a candidate satisfies a requirement if it has the same major version
/// and an equal or higher minor version ("the same (or even superior)
/// offerings").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Version {
    /// Incompatible-change counter.
    pub major: u32,
    /// Compatible-enhancement counter.
    pub minor: u32,
}

impl Version {
    /// Construct from parts.
    pub fn new(major: u32, minor: u32) -> Self {
        Version { major, minor }
    }

    /// Parse `"1.2"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (maj, min) = s.split_once('.').ok_or_else(|| format!("bad version '{s}'"))?;
        Ok(Version {
            major: maj.parse().map_err(|_| format!("bad major in '{s}'"))?,
            minor: min.parse().map_err(|_| format!("bad minor in '{s}'"))?,
        })
    }

    /// Does `self` (an installed component) satisfy `required`?
    pub fn satisfies(&self, required: Version) -> bool {
        self.major == required.major && self.minor >= required.minor
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

/// A platform triple: the "Hardware, Operating System and Object Request
/// Broker dependencies" of §2.1.1.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Platform {
    /// CPU architecture, e.g. `x86`, `sparc`, `arm`.
    pub arch: String,
    /// Operating system, e.g. `linux`, `win32`, `palmos`.
    pub os: String,
    /// ORB implementation, e.g. `lc-orb`.
    pub orb: String,
}

impl Platform {
    /// Construct from parts.
    pub fn new(arch: &str, os: &str, orb: &str) -> Self {
        Platform { arch: arch.into(), os: os.into(), orb: orb.into() }
    }

    /// The reference platform used throughout the experiments.
    pub fn reference() -> Self {
        Platform::new("x86", "linux", "lc-orb")
    }

    /// PDA platform (tiny-device experiments).
    pub fn pda() -> Self {
        Platform::new("arm", "palmos", "lc-orb")
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}-{}", self.arch, self.os, self.orb)
    }
}

/// Mobility of a component's binary (§2.1.1 "Mobility").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mobility {
    /// The binary "can be extracted from a given host" and installed
    /// elsewhere.
    #[default]
    Mobile,
    /// The component "must be used remotely from this location" (e.g. it
    /// wraps host-bound hardware or licensed software).
    Fixed,
}

/// Replication capability (§2.1.1 "Replication").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Replication {
    /// Instances cannot be replicated.
    #[default]
    None,
    /// Instances are stateless, replicate freely.
    Stateless,
    /// Instances "know how to interact with the framework to maintain
    /// replica consistency".
    Coordinated,
}

/// Licensing model (§2.1.1 "Pay-per-use information").
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum Licensing {
    /// Free to use.
    #[default]
    Free,
    /// Metered: cost per instance-hour in milli-credits.
    PayPerUse {
        /// Milli-credits per instance-hour.
        cost_per_hour: u32,
    },
}

/// A dependency on another component (§2.1.1 "Other components needed").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComponentDep {
    /// Required component name.
    pub name: String,
    /// Minimum compatible version.
    pub version: Version,
}

/// An interface port declaration (dynamic dimension, §2.1.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PortDecl {
    /// Port name, unique within the component.
    pub name: String,
    /// Repository id of the port's interface (e.g. `IDL:cscw/Display:1.0`).
    pub interface: String,
}

/// An event port declaration (produced or consumed event kind).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventPortDecl {
    /// Port name, unique within the component.
    pub name: String,
    /// Repository id of the event type (e.g. `IDL:cscw/Damage:1.0`).
    pub event: String,
}

/// QoS requirements of instances (§2.1.2 "QoS information").
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct QosSpec {
    /// Minimum CPU share required, in reference-CPU units.
    pub cpu_min: f64,
    /// Maximum useful CPU share (for aggregation planning).
    pub cpu_max: f64,
    /// Memory footprint of one instance, bytes.
    pub memory: u64,
    /// Minimum communication bandwidth needed, bytes/second.
    pub bandwidth_min: f64,
}

impl Default for QosSpec {
    fn default() -> Self {
        QosSpec { cpu_min: 0.01, cpu_max: 1.0, memory: 1 << 20, bandwidth_min: 0.0 }
    }
}

/// Instance life-cycle policy driving factory generation (§2.1.2
/// "Factory properties").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LifeCycle {
    /// Any number of instances, created on demand.
    #[default]
    Factory,
    /// At most one instance per node.
    PerNode,
    /// At most one instance in the whole network.
    Singleton,
}

/// The complete component descriptor (both dimensions of §2.1).
#[derive(Clone, PartialEq, Debug)]
pub struct ComponentDescriptor {
    /// Component name, unique per vendor.
    pub name: String,
    /// Component version.
    pub version: Version,
    /// Vendor identity (must match the package signature's signer).
    pub vendor: String,
    /// Human-readable description.
    pub description: String,
    // -- static dimension ------------------------------------------------
    /// Other components required at run time.
    pub depends: Vec<ComponentDep>,
    /// Binary mobility.
    pub mobility: Mobility,
    /// Replication capability.
    pub replication: Replication,
    /// Can instances split/gather for data-parallel work (§2.1.1
    /// "Aggregation")?
    pub aggregation: bool,
    /// Licensing model.
    pub licensing: Licensing,
    // -- dynamic dimension -----------------------------------------------
    /// Provided interface ports.
    pub provides: Vec<PortDecl>,
    /// Used (required) interface ports.
    pub uses: Vec<PortDecl>,
    /// Produced event kinds.
    pub emits: Vec<EventPortDecl>,
    /// Consumed event kinds.
    pub consumes: Vec<EventPortDecl>,
    /// Instance QoS requirements.
    pub qos: QosSpec,
    /// Instance life-cycle policy.
    pub lifecycle: LifeCycle,
}

impl ComponentDescriptor {
    /// Minimal descriptor: free, mobile, no ports, default QoS.
    pub fn new(name: &str, version: Version, vendor: &str) -> Self {
        ComponentDescriptor {
            name: name.to_owned(),
            version,
            vendor: vendor.to_owned(),
            description: String::new(),
            depends: Vec::new(),
            mobility: Mobility::default(),
            replication: Replication::default(),
            aggregation: false,
            licensing: Licensing::default(),
            provides: Vec::new(),
            uses: Vec::new(),
            emits: Vec::new(),
            consumes: Vec::new(),
            qos: QosSpec::default(),
            lifecycle: LifeCycle::default(),
        }
    }

    /// Add a provided interface port (builder style).
    pub fn provides(mut self, name: &str, interface: &str) -> Self {
        self.provides.push(PortDecl { name: name.into(), interface: interface.into() });
        self
    }

    /// Add a used interface port (builder style).
    pub fn uses(mut self, name: &str, interface: &str) -> Self {
        self.uses.push(PortDecl { name: name.into(), interface: interface.into() });
        self
    }

    /// Add a produced event port (builder style).
    pub fn emits(mut self, name: &str, event: &str) -> Self {
        self.emits.push(EventPortDecl { name: name.into(), event: event.into() });
        self
    }

    /// Add a consumed event port (builder style).
    pub fn consumes(mut self, name: &str, event: &str) -> Self {
        self.consumes.push(EventPortDecl { name: name.into(), event: event.into() });
        self
    }

    /// Add a component dependency (builder style).
    pub fn depends_on(mut self, name: &str, version: Version) -> Self {
        self.depends.push(ComponentDep { name: name.into(), version });
        self
    }

    /// Serialize to the `<component>` XML document.
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("component")
            .with_attr("name", &self.name)
            .with_attr("version", &self.version.to_string())
            .with_attr("vendor", &self.vendor);
        if !self.description.is_empty() {
            root.push(Element::new("description").with_text(&self.description));
        }
        let mut stat = Element::new("static")
            .with_attr(
                "mobility",
                match self.mobility {
                    Mobility::Mobile => "mobile",
                    Mobility::Fixed => "fixed",
                },
            )
            .with_attr(
                "replication",
                match self.replication {
                    Replication::None => "none",
                    Replication::Stateless => "stateless",
                    Replication::Coordinated => "coordinated",
                },
            )
            .with_attr("aggregation", if self.aggregation { "yes" } else { "no" });
        match self.licensing {
            Licensing::Free => {}
            Licensing::PayPerUse { cost_per_hour } => {
                stat.push(
                    Element::new("payperuse")
                        .with_attr("cost_per_hour", &cost_per_hour.to_string()),
                );
            }
        }
        for d in &self.depends {
            stat.push(
                Element::new("dependency")
                    .with_attr("name", &d.name)
                    .with_attr("version", &d.version.to_string()),
            );
        }
        root.push(stat);

        let mut dynamic = Element::new("type").with_attr(
            "lifecycle",
            match self.lifecycle {
                LifeCycle::Factory => "factory",
                LifeCycle::PerNode => "pernode",
                LifeCycle::Singleton => "singleton",
            },
        );
        for p in &self.provides {
            dynamic.push(
                Element::new("provides")
                    .with_attr("name", &p.name)
                    .with_attr("interface", &p.interface),
            );
        }
        for p in &self.uses {
            dynamic.push(
                Element::new("uses")
                    .with_attr("name", &p.name)
                    .with_attr("interface", &p.interface),
            );
        }
        for p in &self.emits {
            dynamic.push(
                Element::new("emits").with_attr("name", &p.name).with_attr("event", &p.event),
            );
        }
        for p in &self.consumes {
            dynamic.push(
                Element::new("consumes")
                    .with_attr("name", &p.name)
                    .with_attr("event", &p.event),
            );
        }
        dynamic.push(
            Element::new("qos")
                .with_attr("cpu_min", &self.qos.cpu_min.to_string())
                .with_attr("cpu_max", &self.qos.cpu_max.to_string())
                .with_attr("memory", &self.qos.memory.to_string())
                .with_attr("bandwidth_min", &self.qos.bandwidth_min.to_string()),
        );
        root.push(dynamic);
        root
    }

    /// Parse and validate a `<component>` document.
    pub fn from_xml(root: &Element) -> Result<Self, String> {
        descriptor_schema().validate(root).map_err(|e| e.to_string())?;
        let name = root.require_attr("name")?.to_owned();
        let version = Version::parse(root.require_attr("version")?)?;
        let vendor = root.require_attr("vendor")?.to_owned();
        let description = root.child("description").map(|d| d.text()).unwrap_or_default();

        let stat = root.require_child("static")?;
        let mobility = match stat.require_attr("mobility")? {
            "mobile" => Mobility::Mobile,
            _ => Mobility::Fixed,
        };
        let replication = match stat.require_attr("replication")? {
            "stateless" => Replication::Stateless,
            "coordinated" => Replication::Coordinated,
            _ => Replication::None,
        };
        let aggregation = stat.require_attr("aggregation")? == "yes";
        let licensing = match stat.child("payperuse") {
            None => Licensing::Free,
            Some(p) => Licensing::PayPerUse {
                cost_per_hour: p
                    .require_attr("cost_per_hour")?
                    .parse()
                    .map_err(|_| "bad cost_per_hour".to_owned())?,
            },
        };
        let mut depends = Vec::new();
        for d in stat.children_named("dependency") {
            depends.push(ComponentDep {
                name: d.require_attr("name")?.to_owned(),
                version: Version::parse(d.require_attr("version")?)?,
            });
        }

        let dynamic = root.require_child("type")?;
        let lifecycle = match dynamic.require_attr("lifecycle")? {
            "pernode" => LifeCycle::PerNode,
            "singleton" => LifeCycle::Singleton,
            _ => LifeCycle::Factory,
        };
        let port = |e: &Element| -> Result<PortDecl, String> {
            Ok(PortDecl {
                name: e.require_attr("name")?.to_owned(),
                interface: e.require_attr("interface")?.to_owned(),
            })
        };
        let evport = |e: &Element| -> Result<EventPortDecl, String> {
            Ok(EventPortDecl {
                name: e.require_attr("name")?.to_owned(),
                event: e.require_attr("event")?.to_owned(),
            })
        };
        let provides =
            dynamic.children_named("provides").map(port).collect::<Result<Vec<_>, _>>()?;
        let uses = dynamic.children_named("uses").map(port).collect::<Result<Vec<_>, _>>()?;
        let emits =
            dynamic.children_named("emits").map(evport).collect::<Result<Vec<_>, _>>()?;
        let consumes =
            dynamic.children_named("consumes").map(evport).collect::<Result<Vec<_>, _>>()?;

        let q = dynamic.require_child("qos")?;
        let qos = QosSpec {
            cpu_min: q.require_attr("cpu_min")?.parse().map_err(|_| "bad cpu_min")?,
            cpu_max: q.require_attr("cpu_max")?.parse().map_err(|_| "bad cpu_max")?,
            memory: q.require_attr("memory")?.parse().map_err(|_| "bad memory")?,
            bandwidth_min: q
                .require_attr("bandwidth_min")?
                .parse()
                .map_err(|_| "bad bandwidth_min")?,
        };

        // Port names must be unique across the whole component.
        let mut names: Vec<&str> = provides
            .iter()
            .map(|p| p.name.as_str())
            .chain(uses.iter().map(|p| p.name.as_str()))
            .chain(emits.iter().map(|p| p.name.as_str()))
            .chain(consumes.iter().map(|p| p.name.as_str()))
            .collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("duplicate port name '{}'", w[0]));
        }

        Ok(ComponentDescriptor {
            name,
            version,
            vendor,
            description,
            depends,
            mobility,
            replication,
            aggregation,
            licensing,
            provides,
            uses,
            emits,
            consumes,
            qos,
            lifecycle,
        })
    }
}

/// The OSD-style schema for `<component>` documents.
pub fn descriptor_schema() -> Schema {
    Schema::new("component")
        .element(
            "component",
            ElementRule::new()
                .attr(AttrRule::required("name"))
                .attr(AttrRule::required("version"))
                .attr(AttrRule::required("vendor"))
                .child("description", Multiplicity::Optional)
                .child("static", Multiplicity::One)
                .child("type", Multiplicity::One),
        )
        .element("description", ElementRule::new().text())
        .element(
            "static",
            ElementRule::new()
                .attr(AttrRule::required("mobility").one_of(&["mobile", "fixed"]))
                .attr(
                    AttrRule::required("replication")
                        .one_of(&["none", "stateless", "coordinated"]),
                )
                .attr(AttrRule::required("aggregation").one_of(&["yes", "no"]))
                .child("payperuse", Multiplicity::Optional)
                .child("dependency", Multiplicity::Many),
        )
        .element("payperuse", ElementRule::new().attr(AttrRule::required("cost_per_hour")))
        .element(
            "dependency",
            ElementRule::new()
                .attr(AttrRule::required("name"))
                .attr(AttrRule::required("version")),
        )
        .element(
            "type",
            ElementRule::new()
                .attr(AttrRule::required("lifecycle").one_of(&["factory", "pernode", "singleton"]))
                .child("provides", Multiplicity::Many)
                .child("uses", Multiplicity::Many)
                .child("emits", Multiplicity::Many)
                .child("consumes", Multiplicity::Many)
                .child("qos", Multiplicity::One),
        )
        .element(
            "provides",
            ElementRule::new()
                .attr(AttrRule::required("name"))
                .attr(AttrRule::required("interface")),
        )
        .element(
            "uses",
            ElementRule::new()
                .attr(AttrRule::required("name"))
                .attr(AttrRule::required("interface")),
        )
        .element(
            "emits",
            ElementRule::new().attr(AttrRule::required("name")).attr(AttrRule::required("event")),
        )
        .element(
            "consumes",
            ElementRule::new().attr(AttrRule::required("name")).attr(AttrRule::required("event")),
        )
        .element(
            "qos",
            ElementRule::new()
                .attr(AttrRule::required("cpu_min"))
                .attr(AttrRule::required("cpu_max"))
                .attr(AttrRule::required("memory"))
                .attr(AttrRule::required("bandwidth_min")),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ComponentDescriptor {
        let mut d = ComponentDescriptor::new("MpegDecoder", Version::new(1, 2), "acme")
            .provides("video", "IDL:av/VideoOut:1.0")
            .uses("display", "IDL:cscw/Display:1.0")
            .emits("frame_ready", "IDL:av/FrameReady:1.0")
            .consumes("quality_hint", "IDL:av/QualityHint:1.0")
            .depends_on("Display", Version::new(2, 0));
        d.description = "Decodes MPEG video streams".into();
        d.mobility = Mobility::Mobile;
        d.replication = Replication::Stateless;
        d.aggregation = true;
        d.licensing = Licensing::PayPerUse { cost_per_hour: 50 };
        d.qos = QosSpec { cpu_min: 0.2, cpu_max: 0.9, memory: 8 << 20, bandwidth_min: 250_000.0 };
        d.lifecycle = LifeCycle::PerNode;
        d
    }

    #[test]
    fn xml_round_trip() {
        let d = sample();
        let xml = d.to_xml();
        let text = lc_xml::to_string(&xml);
        let parsed = lc_xml::parse(&text).unwrap();
        let back = ComponentDescriptor::from_xml(&parsed).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn schema_catches_missing_qos() {
        let mut xml = sample().to_xml();
        // Remove <qos> from <type>.
        if let Some(lc_xml::Node::Element(ty)) = xml
            .children
            .iter_mut()
            .find(|n| matches!(n, lc_xml::Node::Element(e) if e.name == "type"))
        {
            ty.children.retain(|n| !matches!(n, lc_xml::Node::Element(e) if e.name == "qos"));
        }
        assert!(ComponentDescriptor::from_xml(&xml).is_err());
    }

    #[test]
    fn duplicate_port_names_rejected() {
        let d = ComponentDescriptor::new("X", Version::new(1, 0), "v")
            .provides("p", "IDL:A:1.0")
            .uses("p", "IDL:B:1.0");
        let xml = d.to_xml();
        let err = ComponentDescriptor::from_xml(&xml).unwrap_err();
        assert!(err.contains("duplicate port"), "{err}");
    }

    #[test]
    fn version_semantics() {
        let v12 = Version::new(1, 2);
        assert!(v12.satisfies(Version::new(1, 0)));
        assert!(v12.satisfies(Version::new(1, 2)));
        assert!(!v12.satisfies(Version::new(1, 3)));
        assert!(!v12.satisfies(Version::new(2, 0)));
        assert!(!v12.satisfies(Version::new(0, 2)));
        assert_eq!(Version::parse("3.14").unwrap(), Version::new(3, 14));
        assert!(Version::parse("3").is_err());
        assert!(Version::parse("a.b").is_err());
    }

    #[test]
    fn platform_display() {
        assert_eq!(Platform::reference().to_string(), "x86-linux-lc-orb");
        assert_eq!(Platform::pda().to_string(), "arm-palmos-lc-orb");
    }

    #[test]
    fn defaults_are_minimal() {
        let d = ComponentDescriptor::new("Tiny", Version::new(0, 1), "v");
        let back = ComponentDescriptor::from_xml(&d.to_xml()).unwrap();
        assert_eq!(back.licensing, Licensing::Free);
        assert_eq!(back.mobility, Mobility::Mobile);
        assert!(back.provides.is_empty());
        assert_eq!(back.lifecycle, LifeCycle::Factory);
    }
}
