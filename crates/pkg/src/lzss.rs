//! LZSS compression, implemented from scratch.
//!
//! Packaging "must admit compression to overcome the efficient
//! transmission of the component through possibly long and slow
//! communication lines" (§2.3 of the paper). This is a classic
//! LZSS (Lempel–Ziv–Storer–Szymanski) coder: a 4 KiB sliding window,
//! match lengths 3–18 bytes, flag bytes grouping eight items. It favours
//! simplicity and determinism over ratio — the experiment that matters
//! (E9) measures the *system* effect of compressing packages before
//! shipping them over slow links, not state-of-the-art entropy coding.
//!
//! Format: `[flags: u8] item{8}` repeated; flag bit i set → literal byte,
//! clear → a 2-byte `(offset:12, len-3:4)` back-reference. The stream is
//! prefixed with the decompressed length as a little-endian `u32`.

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;

/// Compress `data`. Output always starts with the 4-byte original length.
pub fn compress(data: &[u8]) -> Vec<u8> {
    assert!(data.len() <= u32::MAX as usize, "input too large");
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());

    // Hash chains over 3-byte prefixes for O(1) candidate lookup.
    let mut head = vec![usize::MAX; 1 << 13];
    let mut prev = vec![usize::MAX; data.len().max(1)];
    let hash = |d: &[u8]| -> usize {
        ((d[0] as usize) << 6 ^ (d[1] as usize) << 3 ^ (d[2] as usize)) & ((1 << 13) - 1)
    };

    let mut i = 0;
    let mut flags_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u8;

    macro_rules! begin_item {
        () => {
            if flag_bit == 8 {
                flags_pos = out.len();
                out.push(0);
                flag_bit = 0;
            }
        };
    }

    while i < data.len() {
        begin_item!();
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash(&data[i..]);
            let mut cand = head[h];
            let mut tries = 32;
            while cand != usize::MAX && tries > 0 && i - cand <= WINDOW {
                let max = MAX_MATCH.min(data.len() - i);
                let mut l = 0;
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand];
                tries -= 1;
            }
        }

        if best_len >= MIN_MATCH {
            // Back-reference item: offset 1..=4096 stored as offset-1.
            let token = (((best_off - 1) as u16) << 4) | ((best_len - MIN_MATCH) as u16);
            out.extend_from_slice(&token.to_le_bytes());
            // flag bit stays 0
            flag_bit += 1;
            // Insert hash entries for every covered position.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash(&data[i..]);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            out[flags_pos] |= 1 << flag_bit;
            out.push(data[i]);
            flag_bit += 1;
            if i + MIN_MATCH <= data.len() {
                let h = hash(&data[i..]);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    out
}

/// Decompression failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecompressError(pub String);

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LZSS decompress error: {}", self.0)
    }
}
impl std::error::Error for DecompressError {}

/// Decompress a [`compress`] stream.
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if stream.len() < 4 {
        return Err(DecompressError("truncated header".into()));
    }
    let expect = u32::from_le_bytes([stream[0], stream[1], stream[2], stream[3]]) as usize;
    let mut out = Vec::with_capacity(expect);
    let mut pos = 4usize;
    while out.len() < expect {
        if pos >= stream.len() {
            return Err(DecompressError("truncated stream".into()));
        }
        let flags = stream[pos];
        pos += 1;
        for bit in 0..8 {
            if out.len() >= expect {
                break;
            }
            if flags & (1 << bit) != 0 {
                let Some(&b) = stream.get(pos) else {
                    return Err(DecompressError("truncated literal".into()));
                };
                out.push(b);
                pos += 1;
            } else {
                if pos + 2 > stream.len() {
                    return Err(DecompressError("truncated back-reference".into()));
                }
                let token = u16::from_le_bytes([stream[pos], stream[pos + 1]]);
                pos += 2;
                let off = (token >> 4) as usize + 1;
                let len = (token & 0xf) as usize + MIN_MATCH;
                if off > out.len() {
                    return Err(DecompressError(format!(
                        "back-reference offset {off} exceeds output length {}",
                        out.len()
                    )));
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    if out.len() != expect {
        return Err(DecompressError("length mismatch".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn round_trips() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abcabcabcabcabcabc");
        round_trip(&[0u8; 10_000]);
        let text = b"the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog!"
            .repeat(50);
        round_trip(&text);
    }

    #[test]
    fn compresses_redundant_data() {
        let data = b"component descriptor component descriptor ".repeat(100);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 3,
            "expected >3x on repetitive text, got {} -> {}",
            data.len(),
            c.len()
        );
    }

    #[test]
    fn incompressible_data_expands_bounded() {
        // Pseudo-random bytes: expansion is bounded by 1/8 + header.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 8 + 8);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn rejects_corrupt_streams() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[5, 0, 0, 0]).is_err());
        assert!(decompress(&[5, 0, 0, 0, 0b0000_0000, 0xff]).is_err());
        // back-reference before start of output
        assert!(decompress(&[5, 0, 0, 0, 0b0000_0000, 0xff, 0xff]).is_err());
        let mut good = compress(b"hello hello hello hello");
        good.truncate(good.len() - 1);
        assert!(decompress(&good).is_err());
    }

    #[test]
    fn long_matches_capped() {
        let data = vec![7u8; MAX_MATCH * 10];
        round_trip(&data);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use lc_prop::check;

    #[test]
    fn round_trip_arbitrary() {
        check("round_trip_arbitrary", |g| {
            let data = g.bytes(0..5000);
            let c = compress(&data);
            assert_eq!(decompress(&c).unwrap(), data);
        });
    }

    #[test]
    fn round_trip_repetitive() {
        check("round_trip_repetitive", |g| {
            let seed = g.bytes(1..20);
            let reps = g.gen_range(1..200usize);
            let data: Vec<u8> = seed.iter().copied().cycle().take(seed.len() * reps).collect();
            let c = compress(&data);
            assert_eq!(decompress(&c).unwrap(), data);
        });
    }

    /// Decompression never panics on arbitrary garbage.
    #[test]
    fn decompress_total() {
        check("decompress_total", |g| {
            let garbage = g.bytes(0..2000);
            let _ = decompress(&garbage);
        });
    }
}
