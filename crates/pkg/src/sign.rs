//! Component signing and verification.
//!
//! §2.1.1 of the paper: *"Security information: The installer must be sure
//! of who really made this component by verifying the component's
//! cryptographic signature, for example, from the component's writer Web
//! site."*
//!
//! Substitution (documented in DESIGN.md): with no public-key crate
//! sanctioned for offline use, signatures are HMAC-SHA256 tags under a
//! per-vendor secret, and the [`TrustStore`] plays the role of the set of
//! vendor keys an installer has fetched out-of-band ("from the component's
//! writer Web site"). The verify-before-install control flow — the part
//! the component model actually exercises — is identical to the
//! public-key version.

use crate::sha256::{sha256, Digest, Sha256};
use std::collections::BTreeMap;

/// HMAC-SHA256 (RFC 2104) over `msg` with `key`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    const BLOCK: usize = 64;
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// A detached signature over package bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    /// Vendor identity that produced the tag.
    pub signer: String,
    /// HMAC-SHA256 tag.
    pub tag: Digest,
}

/// A vendor signing key (held by the component *producer*).
#[derive(Clone, Debug)]
pub struct SigningKey {
    /// Vendor identity embedded in signatures.
    pub signer: String,
    secret: Vec<u8>,
}

impl SigningKey {
    /// Create a key for `signer` from secret material.
    pub fn new(signer: &str, secret: &[u8]) -> Self {
        SigningKey { signer: signer.to_owned(), secret: secret.to_vec() }
    }

    /// Sign `bytes`.
    pub fn sign(&self, bytes: &[u8]) -> Signature {
        Signature { signer: self.signer.clone(), tag: hmac_sha256(&self.secret, bytes) }
    }
}

/// Verification outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verification {
    /// Tag matches a trusted vendor key.
    Trusted,
    /// The signer is known but the tag does not match (tampered or forged).
    BadSignature,
    /// No key for this signer in the trust store.
    UnknownSigner,
}

/// The installer's set of trusted vendor keys.
#[derive(Clone, Debug, Default)]
pub struct TrustStore {
    keys: BTreeMap<String, Vec<u8>>,
}

impl TrustStore {
    /// Empty store (trusts nobody).
    pub fn new() -> Self {
        Self::default()
    }

    /// Trust `signer` with the given secret.
    pub fn trust(&mut self, signer: &str, secret: &[u8]) {
        self.keys.insert(signer.to_owned(), secret.to_vec());
    }

    /// Stop trusting `signer`.
    pub fn revoke(&mut self, signer: &str) {
        self.keys.remove(signer);
    }

    /// Verify a signature over `bytes`.
    pub fn verify(&self, bytes: &[u8], sig: &Signature) -> Verification {
        match self.keys.get(&sig.signer) {
            None => Verification::UnknownSigner,
            Some(secret) => {
                let expect = hmac_sha256(secret, bytes);
                // Constant-time-ish comparison: accumulate differences.
                let diff = expect.iter().zip(sig.tag.iter()).fold(0u8, |d, (a, b)| d | (a ^ b));
                if diff == 0 {
                    Verification::Trusted
                } else {
                    Verification::BadSignature
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc4231_test_case_2() {
        // Key "Jefe", data "what do ya want for nothing?".
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Test case 6: 131-byte key forces the key-hash path.
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn sign_verify_flow() {
        let key = SigningKey::new("acme", b"s3cret");
        let pkg = b"package bytes";
        let sig = key.sign(pkg);

        let mut store = TrustStore::new();
        assert_eq!(store.verify(pkg, &sig), Verification::UnknownSigner);

        store.trust("acme", b"s3cret");
        assert_eq!(store.verify(pkg, &sig), Verification::Trusted);

        // Tampered content.
        assert_eq!(store.verify(b"evil bytes", &sig), Verification::BadSignature);

        // Wrong key on the installer side.
        store.trust("acme", b"different");
        assert_eq!(store.verify(pkg, &sig), Verification::BadSignature);

        store.revoke("acme");
        assert_eq!(store.verify(pkg, &sig), Verification::UnknownSigner);
    }

    #[test]
    fn forged_signer_name_rejected() {
        let real = SigningKey::new("acme", b"real-secret");
        let forger = SigningKey::new("acme", b"guessed-secret");
        let pkg = b"package";
        let mut store = TrustStore::new();
        store.trust("acme", b"real-secret");
        assert_eq!(store.verify(pkg, &real.sign(pkg)), Verification::Trusted);
        assert_eq!(store.verify(pkg, &forger.sign(pkg)), Verification::BadSignature);
    }
}
