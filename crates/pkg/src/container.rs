//! The CLCP package container ("CORBA-LC Package").
//!
//! §2.3 of the paper sets the packaging requirements: the container must
//! hold "both the binary information and the meta-information … the DLLs
//! … and the IDL and XML files"; it "must admit compression"; and it
//! "must be modular enough to allow (1) storing binaries for different
//! architectures/operating systems/ORBs, (2) describing those binaries,
//! and (3) extracting only a set of binaries … to be installed in devices
//! with a tiny memory, such as PDAs".
//!
//! A CLCP package therefore contains:
//!
//! * the XML [`ComponentDescriptor`] (compressed),
//! * the IDL sources defining the port types (compressed),
//! * one [`BinarySection`] per platform triple, each an independently
//!   compressed and digest-protected payload — so a PDA can pull only the
//!   sections it needs ([`Package::extract_subset`]),
//! * an integrity digest over the whole container and an optional vendor
//!   [`Signature`].
//!
//! The paper packages real DLLs/`.so` files; here payloads are opaque
//! bytes plus a `behavior_id` naming a behaviour registered with the
//! node's runtime — the documented substitution for `dlopen` (DESIGN.md).

use crate::descriptor::{ComponentDescriptor, Platform};
use crate::lzss;
use crate::sha256::{sha256, Digest, DIGEST_LEN};
use crate::sign::{Signature, SigningKey, TrustStore, Verification};

/// Container format magic + version.
const MAGIC: &[u8; 5] = b"CLCP\x01";

/// One platform-specific implementation inside a package.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BinarySection {
    /// Platform this binary runs on.
    pub platform: Platform,
    /// Identifier of the executable behaviour this binary provides; the
    /// node runtime resolves it against its behaviour registry (the
    /// reproduction's stand-in for dynamic loading).
    pub behavior_id: String,
    /// The "binary" payload (opaque bytes; compressed on the wire).
    pub payload: Vec<u8>,
}

/// Errors produced when reading or verifying a container.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PackageError {
    /// Not a CLCP stream or unsupported version.
    BadMagic,
    /// Structurally truncated or inconsistent.
    Malformed(String),
    /// A section digest did not match its payload (corruption).
    DigestMismatch(String),
    /// Descriptor XML failed to parse or validate.
    BadDescriptor(String),
}

impl std::fmt::Display for PackageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackageError::BadMagic => write!(f, "not a CLCP package"),
            PackageError::Malformed(m) => write!(f, "malformed package: {m}"),
            PackageError::DigestMismatch(m) => write!(f, "digest mismatch in {m}"),
            PackageError::BadDescriptor(m) => write!(f, "bad descriptor: {m}"),
        }
    }
}
impl std::error::Error for PackageError {}

/// An in-memory component package.
#[derive(Clone, PartialEq, Debug)]
pub struct Package {
    /// The component descriptor (meta-information).
    pub descriptor: ComponentDescriptor,
    /// IDL sources: `(file name, source text)`.
    pub idl_sources: Vec<(String, String)>,
    /// Per-platform binaries.
    pub sections: Vec<BinarySection>,
    /// Vendor signature over the unsigned container bytes, if sealed.
    pub signature: Option<Signature>,
}

impl Package {
    /// Assemble an unsigned package.
    pub fn new(descriptor: ComponentDescriptor) -> Self {
        Package { descriptor, idl_sources: Vec::new(), sections: Vec::new(), signature: None }
    }

    /// Add an IDL source file (builder style).
    pub fn with_idl(mut self, file: &str, source: &str) -> Self {
        self.idl_sources.push((file.to_owned(), source.to_owned()));
        self
    }

    /// Add a binary section (builder style).
    pub fn with_binary(mut self, platform: Platform, behavior_id: &str, payload: &[u8]) -> Self {
        self.sections.push(BinarySection {
            platform,
            behavior_id: behavior_id.to_owned(),
            payload: payload.to_vec(),
        });
        self
    }

    /// Sign the package with a vendor key. Must be called after all
    /// content is final; any later mutation invalidates the signature.
    pub fn seal(&mut self, key: &SigningKey) {
        let unsigned = self.encode_body();
        self.signature = Some(key.sign(&unsigned));
    }

    /// Verify the vendor signature against a trust store.
    ///
    /// Returns [`Verification::UnknownSigner`] for unsigned packages.
    pub fn verify(&self, store: &TrustStore) -> Verification {
        match &self.signature {
            None => Verification::UnknownSigner,
            Some(sig) => store.verify(&self.encode_body(), sig),
        }
    }

    /// The platforms with binaries in this package.
    pub fn platforms(&self) -> Vec<Platform> {
        self.sections.iter().map(|s| s.platform.clone()).collect()
    }

    /// Find the binary section for `platform`.
    pub fn section_for(&self, platform: &Platform) -> Option<&BinarySection> {
        self.sections.iter().find(|s| &s.platform == platform)
    }

    /// Build a reduced package containing metadata plus only the sections
    /// matching `keep` — the "extracting only a set of binaries … for
    /// devices with a tiny memory" operation. The result is unsigned (the
    /// bytes differ from what the vendor signed); installers verify the
    /// full package before subsetting.
    pub fn extract_subset(&self, keep: &[Platform]) -> Package {
        Package {
            descriptor: self.descriptor.clone(),
            idl_sources: self.idl_sources.clone(),
            sections: self
                .sections
                .iter()
                .filter(|s| keep.contains(&s.platform))
                .cloned()
                .collect(),
            signature: None,
        }
    }

    /// Total uncompressed content size (descriptor + IDL + payloads).
    pub fn raw_size(&self) -> usize {
        let desc = lc_xml::to_string(&self.descriptor.to_xml()).len();
        let idl: usize = self.idl_sources.iter().map(|(f, s)| f.len() + s.len()).sum();
        let bins: usize = self.sections.iter().map(|s| s.payload.len()).sum();
        desc + idl + bins
    }

    // ---- wire format ---------------------------------------------------

    /// Serialize without the trailing digest/signature.
    fn encode_body(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes_raw(MAGIC);
        let desc_text = lc_xml::to_string(&self.descriptor.to_xml());
        w.blob(desc_text.as_bytes());
        w.u32(self.idl_sources.len() as u32);
        for (file, source) in &self.idl_sources {
            w.string(file);
            w.blob(source.as_bytes());
        }
        w.u32(self.sections.len() as u32);
        for s in &self.sections {
            w.string(&s.platform.arch);
            w.string(&s.platform.os);
            w.string(&s.platform.orb);
            w.string(&s.behavior_id);
            w.blob(&s.payload);
        }
        w.out
    }

    /// Serialize to container bytes (body + digest + optional signature).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.encode_body();
        let digest = sha256(&out);
        out.extend_from_slice(&digest);
        match &self.signature {
            None => out.push(0),
            Some(sig) => {
                out.push(1);
                let mut w = Writer::new();
                w.string(&sig.signer);
                out.extend_from_slice(&w.out);
                out.extend_from_slice(&sig.tag);
            }
        }
        out
    }

    /// Parse container bytes, verifying the container digest and every
    /// per-blob digest.
    pub fn from_bytes(bytes: &[u8]) -> Result<Package, PackageError> {
        let mut r = Reader { b: bytes, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(PackageError::BadMagic);
        }
        let desc_bytes = r.blob("descriptor")?;
        let desc_text = String::from_utf8(desc_bytes)
            .map_err(|_| PackageError::BadDescriptor("descriptor is not UTF-8".into()))?;
        let desc_xml = lc_xml::parse(&desc_text)
            .map_err(|e| PackageError::BadDescriptor(e.to_string()))?;
        let descriptor =
            ComponentDescriptor::from_xml(&desc_xml).map_err(PackageError::BadDescriptor)?;

        let n_idl = r.u32()? as usize;
        let mut idl_sources = Vec::with_capacity(n_idl);
        for _ in 0..n_idl {
            let file = r.string()?;
            let src = r.blob("idl source")?;
            let src = String::from_utf8(src)
                .map_err(|_| PackageError::Malformed("IDL source is not UTF-8".into()))?;
            idl_sources.push((file, src));
        }

        let n_sec = r.u32()? as usize;
        let mut sections = Vec::with_capacity(n_sec);
        for _ in 0..n_sec {
            let arch = r.string()?;
            let os = r.string()?;
            let orb = r.string()?;
            let behavior_id = r.string()?;
            let payload = r.blob(&format!("binary {arch}-{os}-{orb}"))?;
            sections.push(BinarySection {
                platform: Platform { arch, os, orb },
                behavior_id,
                payload,
            });
        }

        // Container digest covers everything read so far.
        let body_end = r.pos;
        let stored: Digest = r
            .take(DIGEST_LEN)?
            .try_into()
            .map_err(|_| PackageError::Malformed("short digest".into()))?;
        if sha256(&bytes[..body_end]) != stored {
            return Err(PackageError::DigestMismatch("container".into()));
        }

        let signature = match r.u8()? {
            0 => None,
            1 => {
                let signer = r.string()?;
                let tag: Digest = r
                    .take(DIGEST_LEN)?
                    .try_into()
                    .map_err(|_| PackageError::Malformed("short signature".into()))?;
                Some(Signature { signer, tag })
            }
            _ => return Err(PackageError::Malformed("bad signature flag".into())),
        };
        if r.pos != bytes.len() {
            return Err(PackageError::Malformed("trailing bytes".into()));
        }

        Ok(Package { descriptor, idl_sources, sections, signature })
    }
}

/// Little-endian writer with compressed, digest-protected blobs.
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { out: Vec::with_capacity(1024) }
    }
    fn bytes_raw(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.out.extend_from_slice(s.as_bytes());
    }
    /// A blob is compressed and carries the digest of its *raw* content.
    fn blob(&mut self, raw: &[u8]) {
        let compressed = lzss::compress(raw);
        self.u32(compressed.len() as u32);
        self.out.extend_from_slice(&compressed);
        self.out.extend_from_slice(&sha256(raw));
    }
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PackageError> {
        if self.pos + n > self.b.len() {
            return Err(PackageError::Malformed("unexpected end of package".into()));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, PackageError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, PackageError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn string(&mut self) -> Result<String, PackageError> {
        let len = self.u32()? as usize;
        let s = self.take(len)?;
        String::from_utf8(s.to_vec())
            .map_err(|_| PackageError::Malformed("non-UTF-8 string".into()))
    }
    fn blob(&mut self, what: &str) -> Result<Vec<u8>, PackageError> {
        let len = self.u32()? as usize;
        let compressed = self.take(len)?;
        let raw = lzss::decompress(compressed)
            .map_err(|e| PackageError::Malformed(format!("{what}: {e}")))?;
        let stored: Digest = self
            .take(DIGEST_LEN)?
            .try_into()
            .map_err(|_| PackageError::Malformed("short blob digest".into()))?;
        if sha256(&raw) != stored {
            return Err(PackageError::DigestMismatch(what.to_owned()));
        }
        Ok(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Version;

    fn sample_package() -> Package {
        let desc = ComponentDescriptor::new("MpegDecoder", Version::new(1, 0), "acme")
            .provides("video", "IDL:av/VideoOut:1.0")
            .uses("display", "IDL:cscw/Display:1.0");
        Package::new(desc)
            .with_idl(
                "av.idl",
                "module av { interface VideoOut { oneway void frame(in string px); }; };",
            )
            .with_binary(Platform::reference(), "mpeg_decoder", &[0xAAu8; 4096])
            .with_binary(Platform::pda(), "mpeg_decoder_arm", &[0xBBu8; 512])
            .with_binary(Platform::new("sparc", "solaris", "lc-orb"), "mpeg_decoder_sparc", b"tiny")
    }

    #[test]
    fn byte_round_trip() {
        let pkg = sample_package();
        let bytes = pkg.to_bytes();
        let back = Package::from_bytes(&bytes).unwrap();
        assert_eq!(pkg, back);
    }

    #[test]
    fn signed_round_trip_and_verify() {
        let key = SigningKey::new("acme", b"vendor-secret");
        let mut pkg = sample_package();
        pkg.seal(&key);
        let bytes = pkg.to_bytes();
        let back = Package::from_bytes(&bytes).unwrap();

        let mut store = TrustStore::new();
        store.trust("acme", b"vendor-secret");
        assert_eq!(back.verify(&store), Verification::Trusted);

        // Tamper with the descriptor after signing.
        let mut tampered = back.clone();
        tampered.descriptor.vendor = "evil".into();
        assert_eq!(tampered.verify(&store), Verification::BadSignature);
    }

    #[test]
    fn corruption_detected() {
        let bytes = sample_package().to_bytes();
        // Flip one byte in the middle (inside some compressed blob).
        for &victim in &[10usize, bytes.len() / 2, bytes.len() - 40] {
            let mut bad = bytes.clone();
            bad[victim] ^= 0x40;
            assert!(
                Package::from_bytes(&bad).is_err(),
                "corruption at byte {victim} must be detected"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(Package::from_bytes(b"ZIPFILE!").unwrap_err(), PackageError::BadMagic);
        assert!(matches!(Package::from_bytes(b"ZIP"), Err(PackageError::Malformed(_))));
        assert!(matches!(
            Package::from_bytes(b"CLCP\x01"),
            Err(PackageError::Malformed(_))
        ));
    }

    #[test]
    fn partial_extraction_for_pda() {
        let pkg = sample_package();
        let full = pkg.to_bytes().len();
        let sub = pkg.extract_subset(&[Platform::pda()]);
        assert_eq!(sub.sections.len(), 1);
        assert_eq!(sub.sections[0].platform, Platform::pda());
        // metadata survives
        assert_eq!(sub.descriptor, pkg.descriptor);
        assert_eq!(sub.idl_sources, pkg.idl_sources);
        // and it is materially smaller on the wire
        let small = sub.to_bytes().len();
        assert!(small < full, "subset {small} should be smaller than full {full}");
        // subset still parses
        assert!(Package::from_bytes(&sub.to_bytes()).is_ok());
    }

    #[test]
    fn compression_effective_on_wire() {
        let pkg = sample_package();
        // payloads are highly repetitive (0xAA / 0xBB runs)
        assert!(pkg.to_bytes().len() < pkg.raw_size());
    }

    #[test]
    fn section_lookup() {
        let pkg = sample_package();
        assert!(pkg.section_for(&Platform::reference()).is_some());
        assert!(pkg.section_for(&Platform::new("mips", "irix", "tao")).is_none());
        assert_eq!(pkg.platforms().len(), 3);
    }

    #[test]
    fn unsigned_verify_is_unknown() {
        let store = TrustStore::new();
        assert_eq!(sample_package().verify(&store), Verification::UnknownSigner);
    }
}
