//! # lc-prop — minimal deterministic property-testing harness
//!
//! The container this workspace builds in has no access to crates.io, so
//! the property tests that used to ride on `proptest` run on this small
//! in-repo harness instead. It keeps the part that matters for these
//! tests — many randomized cases from a deterministic, reproducible
//! stream — and drops shrinking: a failure report prints the exact seed
//! to replay the offending case.
//!
//! ```
//! lc_prop::check("addition commutes", |g| {
//!     let a = g.gen_range(0..1000u64);
//!     let b = g.gen_range(0..1000u64);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Environment knobs:
//! * `LC_PROP_CASES` — number of cases per property (default 64).
//! * `LC_PROP_SEED` — base seed; with `LC_PROP_CASES=1` this replays a
//!   single failing case exactly as reported.

use lc_des::SimRng;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Per-case generator: a seeded [`SimRng`] plus composite helpers.
///
/// Derefs to [`SimRng`], so `g.gen_range(..)`, `g.gen_f64()` and
/// `g.gen_bool()` are available directly.
pub struct Gen {
    rng: SimRng,
}

impl Deref for Gen {
    type Target = SimRng;
    fn deref(&self) -> &SimRng {
        &self.rng
    }
}
impl DerefMut for Gen {
    fn deref_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

impl Gen {
    /// Generator for one case, fully determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Gen { rng: SimRng::seed_from_u64(seed) }
    }

    /// Arbitrary full-width draws (the `any::<T>()` of the old harness).
    pub fn any_u8(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }
    /// Arbitrary `u16`.
    pub fn any_u16(&mut self) -> u16 {
        self.rng.next_u64() as u16
    }
    /// Arbitrary `i16`.
    pub fn any_i16(&mut self) -> i16 {
        self.rng.next_u64() as i16
    }
    /// Arbitrary `u32`.
    pub fn any_u32(&mut self) -> u32 {
        self.rng.next_u64() as u32
    }
    /// Arbitrary `i32`.
    pub fn any_i32(&mut self) -> i32 {
        self.rng.next_u64() as i32
    }
    /// Arbitrary `u64`.
    pub fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    /// Arbitrary `i64`.
    pub fn any_i64(&mut self) -> i64 {
        self.rng.next_u64() as i64
    }
    /// Arbitrary *finite* `f32` (bit-pattern draws, non-finite rejected).
    pub fn any_f32(&mut self) -> f32 {
        loop {
            let v = f32::from_bits(self.rng.next_u64() as u32);
            if v.is_finite() {
                return v;
            }
        }
    }
    /// Arbitrary *finite* `f64` (bit-pattern draws, non-finite rejected).
    pub fn any_f64(&mut self) -> f64 {
        loop {
            let v = f64::from_bits(self.rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
    /// Arbitrary Unicode scalar value.
    pub fn any_char(&mut self) -> char {
        loop {
            if let Some(c) = char::from_u32(self.rng.gen_range(0..0x11_0000u32)) {
                return c;
            }
        }
    }

    /// One element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.rng.gen_range(0..xs.len())]
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `f`.
    pub fn vec_of<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = if len.start == len.end { len.start } else { self.rng.gen_range(len) };
        (0..n).map(|_| f(self)).collect()
    }

    /// Arbitrary bytes, length drawn from `len`.
    pub fn bytes(&mut self, len: std::ops::Range<usize>) -> Vec<u8> {
        self.vec_of(len, |g| g.any_u8())
    }

    /// A string of characters from `alphabet`, length drawn from `len`.
    pub fn string_of(&mut self, alphabet: &str, len: std::ops::Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let n = self.rng.gen_range(len);
        (0..n).map(|_| *self.pick(&chars)).collect()
    }

    /// Printable-ASCII string (the `[ -~]{..}` pattern).
    pub fn ascii_printable(&mut self, len: std::ops::Range<usize>) -> String {
        let n = self.rng.gen_range(len);
        (0..n).map(|_| self.rng.gen_range(0x20..0x7Fu32) as u8 as char).collect()
    }
}

/// Convenient alphabets for [`Gen::string_of`].
pub mod alphabet {
    /// `[a-z]`
    pub const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
    /// `[A-Za-z]`
    pub const ALPHA: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    /// `[A-Za-z0-9]`
    pub const ALNUM: &str =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    /// `[a-z0-9_]`
    pub const LOWER_IDENT: &str = "abcdefghijklmnopqrstuvwxyz0123456789_";
    /// `[A-Za-z0-9_-]`
    pub const NAME: &str =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Run `property` against `LC_PROP_CASES` random cases (default 64).
///
/// The property signals failure by panicking (plain `assert!` /
/// `assert_eq!`). On failure the harness prints the case index and the
/// exact seed to replay it, then re-raises the panic so the test fails.
pub fn check(label: &str, mut property: impl FnMut(&mut Gen)) {
    let cases = env_u64("LC_PROP_CASES", 64);
    let base = env_u64("LC_PROP_SEED", 0x1c_920_0db);
    for i in 0..cases {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut g = Gen::from_seed(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut g))) {
            eprintln!(
                "lc-prop: property '{label}' failed at case {i}/{cases}; \
                 replay with LC_PROP_SEED={seed} LC_PROP_CASES=1"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Gen::from_seed(5);
        let mut b = Gen::from_seed(5);
        for _ in 0..50 {
            assert_eq!(a.any_u64(), b.any_u64());
        }
        assert_eq!(
            a.string_of(alphabet::NAME, 1..13),
            b.string_of(alphabet::NAME, 1..13)
        );
    }

    #[test]
    fn check_runs_all_cases() {
        let mut n = 0;
        check("counter", |_| n += 1);
        assert_eq!(n, env_u64("LC_PROP_CASES", 64));
    }

    #[test]
    fn generators_respect_bounds() {
        check("bounds", |g| {
            let s = g.string_of(alphabet::LOWER, 2..7);
            assert!((2..7).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let p = g.ascii_printable(0..41);
            assert!(p.len() < 41);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
            let v = g.vec_of(3..4, |g| g.any_i32());
            assert_eq!(v.len(), 3);
            assert!(g.any_f64().is_finite());
            assert!(g.any_f32().is_finite());
            let _ = g.any_char();
        });
    }
}
