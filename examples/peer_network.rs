//! The peer/network-centered model (R3): install a component on one
//! node and watch the whole network become able to use it — queries,
//! fetch-and-run, crash and rediscovery.
//!
//! Run with `cargo run --release --example peer_network`.

use corba_lc_repro::core::demo;
use corba_lc_repro::core::node::{NodeCmd, QueryResult};
use corba_lc_repro::core::testkit::{build_world, fast_cohesion};
use corba_lc_repro::core::{ComponentQuery, NodeConfig};
use corba_lc_repro::des::SimTime;
use corba_lc_repro::net::{HostId, Topology};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    // 24 peers in 3 sites; nobody has anything installed yet.
    let behaviors = corba_lc_repro::core::BehaviorRegistry::new();
    demo::register_demo_behaviors(&behaviors);
    let mut world = build_world(
        Topology::campus(3, 8),
        11,
        NodeConfig { cohesion: fast_cohesion(), ..Default::default() },
        behaviors,
        demo::demo_trust(),
        Arc::new(demo::demo_idl()),
        |_| Vec::new(),
    );
    world.sim.run_until(SimTime::from_millis(100));

    // A developer uploads the Display component to one arbitrary peer.
    println!("installing 'Display 2.0' on host17 only…");
    world.cmd(HostId(17), NodeCmd::Install(demo::display_package()));
    world.sim.run_until(world.sim.now() + SimTime::from_secs(1)); // soft state spreads

    // Any peer can now find it ("seamlessly integrate new components").
    let query = |world: &mut corba_lc_repro::core::testkit::World, origin: HostId| {
        let sink: Rc<RefCell<QueryResult>> = Rc::default();
        world.cmd(
            origin,
            NodeCmd::Query {
                query: ComponentQuery::by_name("Display", corba_lc_repro::pkg::Version::new(2, 0)),
                sink: sink.clone(),
                first_wins: false,
            },
        );
        world.sim.run_until(world.sim.now() + SimTime::from_secs(1));
        let r = sink.borrow();
        println!(
            "  query from {origin}: {} offer(s){}",
            r.offers.len(),
            r.offers
                .first()
                .map(|o| format!(" — {} {} at {} (load {:.2})", o.component, o.version, o.node, o.load))
                .unwrap_or_default()
        );
        r.offers.first().map(|o| o.node)
    };
    println!("\ndistributed queries from three different sites:");
    for origin in [HostId(2), HostId(9), HostId(20)] {
        query(&mut world, origin);
    }

    // A peer in another site needs the component *locally* (heavy use):
    // the network fetches the package from host17 and runs it on host2.
    println!("\nhost2 resolves a heavy-traffic dependency on Display:");
    world.cmd(HostId(2), NodeCmd::Install(demo::gui_package()));
    world.sim.run_until(world.sim.now() + SimTime::from_millis(100));
    let sink: corba_lc_repro::core::SpawnSink = Rc::default();
    world.cmd(
        HostId(2),
        NodeCmd::SpawnLocal {
            component: "GuiPart".into(),
            min_version: corba_lc_repro::pkg::Version::new(1, 0),
            instance_name: Some("gui".into()),
            sink: sink.clone(),
        },
    );
    world.sim.run_until(world.sim.now() + SimTime::from_millis(100));
    let instance = world.node(HostId(2)).unwrap().registry.named("gui").unwrap().id;
    let provider: corba_lc_repro::core::SpawnSink = Rc::default();
    world.cmd(
        HostId(2),
        NodeCmd::Resolve {
            instance,
            port: "display".into(),
            query: ComponentQuery::by_name("Display", corba_lc_repro::pkg::Version::new(2, 0)),
            policy: corba_lc_repro::core::ResolvePolicy {
                expected_traffic: 1_000_000_000,
                ..Default::default()
            },
            sink: Some(provider.clone()),
        },
    );
    world.sim.run_until(world.sim.now() + SimTime::from_secs(5));
    let display_ref = provider.borrow().clone().unwrap().unwrap();
    println!(
        "  planner chose fetch-and-run-local: Display now at {} (fetched {} bytes)",
        display_ref.key.host,
        world.sim.metrics_ref().counter("fetch.bytes")
    );

    // The original peer crashes; the network notices and heals.
    println!("\nhost17 crashes…");
    world.crash(HostId(17));
    world.sim.run_until(world.sim.now() + SimTime::from_secs(2));
    println!("queries keep working (host2's copy is found instead):");
    let found = query(&mut world, HostId(20));
    assert_eq!(found, Some(HostId(2)));

    println!("\nhost17 recovers (its disk kept the package)…");
    // Node respawn semantics: a NodeSeed reinstalls its `preinstalled`
    // list on boot. The run-time install wrote the package to host17's
    // disk, so add it to the seed before recovering.
    world.seeds[17].preinstalled.push(demo::display_package());
    world.recover(HostId(17));
    world.sim.run_until(world.sim.now() + SimTime::from_secs(2));
    let sink: Rc<RefCell<QueryResult>> = Rc::default();
    world.cmd(
        HostId(20),
        NodeCmd::Query {
            query: ComponentQuery::by_name("Display", corba_lc_repro::pkg::Version::new(2, 0)),
            sink: sink.clone(),
            first_wins: false,
        },
    );
    world.sim.run_until(world.sim.now() + SimTime::from_secs(1));
    let offers = sink.borrow().offers.clone();
    println!(
        "  host20 now gets its offer from {} — its own site again: incremental\n  \
         lookup stops at the nearest copy (\"exploits locality\"), never bothering\n  \
         the other sites",
        offers[0].node
    );
    assert_eq!(offers[0].node, HostId(17));
}
