//! The paper's MPEG example end-to-end: a video decoder starts at the
//! video server, then migrates mid-stream to the viewer's host — state
//! intact, old references forwarded — and WAN traffic collapses.
//!
//! Run with `cargo run --release --example video_migration`.

use corba_lc_repro::core::node::NodeCmd;
use corba_lc_repro::core::testkit::{build_world, fast_cohesion};
use corba_lc_repro::core::NodeConfig;
use corba_lc_repro::cscw;
use corba_lc_repro::des::SimTime;
use corba_lc_repro::net::{HostCfg, HostId, Topology};
use corba_lc_repro::orb::Value;
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    let mut topo = Topology::new();
    let dc = topo.add_site("video-server");
    let home = topo.add_site("home");
    topo.set_site_pair_latency(dc, home, SimTime::from_millis(25));
    let server = topo.add_host(HostCfg::new(dc).server());
    let viewer = topo.add_host(HostCfg::new(home));

    let behaviors = corba_lc_repro::core::BehaviorRegistry::new();
    cscw::register_cscw_behaviors(&behaviors);
    let mut world = build_world(
        topo,
        3,
        NodeConfig { cohesion: fast_cohesion(), ..Default::default() },
        behaviors,
        cscw::cscw_trust(),
        Arc::new(cscw::cscw_idl()),
        |host| {
            let mut pkgs = vec![cscw::display_package()];
            if host == HostId(0) {
                pkgs.push(cscw::video_decoder_package());
            }
            pkgs
        },
    );
    world.sim.run_until(SimTime::from_millis(50));

    let spawn = |world: &mut corba_lc_repro::core::testkit::World, host, comp: &str, name: &str| {
        let sink: corba_lc_repro::core::SpawnSink = Rc::default();
        world.cmd(
            host,
            NodeCmd::SpawnLocal {
                component: comp.into(),
                min_version: corba_lc_repro::pkg::Version::new(1, 0),
                instance_name: Some(name.into()),
                sink: sink.clone(),
            },
        );
        world.sim.run_until(world.sim.now() + SimTime::from_millis(20));
        let r = sink.borrow().clone();
        r.unwrap().unwrap()
    };

    let screen = spawn(&mut world, viewer, "CscwDisplay", "screen");
    let mut decoder = spawn(&mut world, server, "VideoDecoder", "decoder");
    let connect = |world: &mut corba_lc_repro::core::testkit::World,
                   dec: &corba_lc_repro::orb::ObjectRef,
                   scr: &corba_lc_repro::orb::ObjectRef| {
        world.cmd(
            dec.key.host,
            NodeCmd::Invoke {
                target: dec.clone(),
                op: "_connect_display".into(),
                args: vec![Value::ObjRef(scr.clone())],
                oneway: true,
                sink: None,
            },
        );
        world.sim.run_until(world.sim.now() + SimTime::from_millis(20));
    };
    connect(&mut world, &decoder, &screen);
    println!("decoder starts on {} (the video server); display on {}", server, viewer);

    let frames = 400u32;
    let mut wan_at_half = 0;
    let wan0 = world.sim.metrics_ref().counter("net.bytes.inter");
    for f in 0..frames {
        if f == frames / 2 {
            wan_at_half = world.sim.metrics_ref().counter("net.bytes.inter") - wan0;
            println!(
                "\nafter {f} frames: {} of WAN traffic — migrating the decoder to the viewer…",
                lc_human(wan_at_half)
            );
            let inst = world.node(server).unwrap().registry.named("decoder").unwrap().id;
            let msink: corba_lc_repro::core::MigrateSink = Rc::default();
            world.cmd(
                server,
                NodeCmd::Migrate { instance: inst, to: viewer, sink: Some(msink.clone()) },
            );
            world.sim.run_until(world.sim.now() + SimTime::from_secs(20));
            decoder = msink.borrow().clone().unwrap().expect("migrated");
            connect(&mut world, &decoder, &screen);
            println!(
                "migration complete: decoder now at {} (package auto-fetched, state restored)",
                decoder.key.host
            );
        }
        world.cmd(
            server,
            NodeCmd::Invoke {
                target: decoder.clone(),
                op: "push_chunk".into(),
                args: vec![Value::blob(&vec![0x11; 4096])],
                oneway: true,
                sink: None,
            },
        );
        world.sim.run_until(world.sim.now() + SimTime::from_millis(40));
    }
    world.sim.run_until(world.sim.now() + SimTime::from_secs(2));

    let wan_total = world.sim.metrics_ref().counter("net.bytes.inter") - wan0;
    let second_half = wan_total - wan_at_half;
    println!("\nWAN bytes, first half (remote decode) : {}", lc_human(wan_at_half));
    println!("WAN bytes, second half (local decode) : {} (includes the package fetch)", lc_human(second_half));

    let node = world.node(viewer).unwrap();
    let dec_inst = node.registry.named("decoder").unwrap().id;
    let dec: &cscw::VideoDecoderServant = node.servant_of(dec_inst).unwrap();
    println!(
        "decoder state after migration: {} frames decoded in total (counter travelled)",
        dec.frames
    );
    let scr_inst = node.registry.named("screen").unwrap().id;
    let scr: &cscw::DisplayServant = node.servant_of(scr_inst).unwrap();
    println!("viewer screen painted {} frames", scr.draws);
    assert_eq!(dec.frames, frames as u64);
}

fn lc_human(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1} KiB", b as f64 / 1024.0)
    }
}
