//! A shared whiteboard session across a simulated office network —
//! the paper's flagship CSCW scenario (Fig. 2).
//!
//! Three users on workstations plus one on a PDA join a whiteboard. The
//! application component emits stroke events; each participant's GUI
//! part consumes them and paints through its *local* Display component.
//! The PDA cannot host a GUI part, so its part runs on the office server
//! and paints on the PDA's screen remotely (R7 + R8 in action).
//!
//! Run with `cargo run --example cscw_whiteboard`.

use corba_lc_repro::core::node::NodeCmd;
use corba_lc_repro::core::testkit::{build_world, fast_cohesion};
use corba_lc_repro::core::NodeConfig;
use corba_lc_repro::cscw;
use corba_lc_repro::des::SimTime;
use corba_lc_repro::net::{HostCfg, Topology};
use corba_lc_repro::orb::Value;
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    let mut topo = Topology::new();
    let office = topo.add_site("office");
    let server = topo.add_host(HostCfg::new(office).server());
    let ws: Vec<_> = (0..3).map(|_| topo.add_host(HostCfg::new(office))).collect();
    let pda = topo.add_host(HostCfg::new(office).pda());

    let behaviors = corba_lc_repro::core::BehaviorRegistry::new();
    cscw::register_cscw_behaviors(&behaviors);
    let mut world = build_world(
        topo,
        7,
        NodeConfig { cohesion: fast_cohesion(), ..Default::default() },
        behaviors,
        cscw::cscw_trust(),
        Arc::new(cscw::cscw_idl()),
        |_| vec![cscw::display_package(), cscw::gui_package(), cscw::whiteboard_package()],
    );
    world.sim.run_until(SimTime::from_millis(50));

    let spawn = |world: &mut corba_lc_repro::core::testkit::World, host, comp: &str, name: &str| {
        let sink: corba_lc_repro::core::SpawnSink = Rc::default();
        world.cmd(
            host,
            NodeCmd::SpawnLocal {
                component: comp.into(),
                min_version: corba_lc_repro::pkg::Version::new(1, 0),
                instance_name: Some(name.into()),
                sink: sink.clone(),
            },
        );
        world.sim.run_until(world.sim.now() + SimTime::from_millis(20));
        let r = sink.borrow().clone();
        r.unwrap().unwrap()
    };

    println!("deploying the whiteboard session…");
    let board = spawn(&mut world, server, "Whiteboard", "board");

    // Three workstation participants: GUI + display local to each user.
    let mut parts = Vec::new();
    for (i, &host) in ws.iter().enumerate() {
        let display = spawn(&mut world, host, "CscwDisplay", &format!("screen{i}"));
        let gui = spawn(&mut world, host, "CscwGuiPart", &format!("gui{i}"));
        world.cmd(
            host,
            NodeCmd::Invoke {
                target: gui.clone(),
                op: "_connect_display".into(),
                args: vec![Value::ObjRef(display)],
                oneway: true,
                sink: None,
            },
        );
        world.cmd(
            host,
            NodeCmd::Subscribe {
                producer: board.clone(),
                port: "strokes".into(),
                consumer: gui.clone(),
                delivery_op: "_push_strokes".into(),
            },
        );
        parts.push((host, format!("gui{i}")));
        println!("  participant {i}: GUI + display on {host}");
    }

    // The PDA participant: display on the PDA, GUI part on the server.
    let pda_display = spawn(&mut world, pda, "CscwDisplay", "pda-screen");
    let pda_gui = spawn(&mut world, server, "CscwGuiPart", "pda-gui");
    world.cmd(
        server,
        NodeCmd::Invoke {
            target: pda_gui.clone(),
            op: "_connect_display".into(),
            args: vec![Value::ObjRef(pda_display)],
            oneway: true,
            sink: None,
        },
    );
    world.cmd(
        server,
        NodeCmd::Subscribe {
            producer: board.clone(),
            port: "strokes".into(),
            consumer: pda_gui,
            delivery_op: "_push_strokes".into(),
        },
    );
    parts.push((server, "pda-gui".into()));
    println!("  participant 3 (PDA): display on {pda}, GUI hosted on {server}");
    world.sim.run_until(world.sim.now() + SimTime::from_millis(300));

    println!("\nuser draws 12 strokes…");
    for k in 0..12i32 {
        world.cmd(
            server,
            NodeCmd::Invoke {
                target: board.clone(),
                op: "user_stroke".into(),
                args: vec![
                    Value::Long(10 * k),
                    Value::Long(5 * k),
                    Value::Long(10 * k + 8),
                    Value::Long(5 * k + 8),
                ],
                oneway: true,
                sink: None,
            },
        );
        world.sim.run_until(world.sim.now() + SimTime::from_millis(80));
    }
    world.sim.run_until(world.sim.now() + SimTime::from_secs(1));

    println!("\nresults:");
    for (host, gui_name) in &parts {
        let node = world.node(*host).unwrap();
        let id = node.registry.named(gui_name).unwrap().id;
        let gui: &cscw::GuiPartServant = node.servant_of(id).unwrap();
        let mean = gui.stroke_latency_ms.iter().sum::<f64>()
            / gui.stroke_latency_ms.len().max(1) as f64;
        println!(
            "  {gui_name:<9} on {host}: {} strokes seen, mean delivery {:.2} ms",
            gui.strokes_seen, mean
        );
    }
    // The PDA's screen was painted across its slow wireless link:
    let node = world.node(pda).unwrap();
    let id = node.registry.named("pda-screen").unwrap().id;
    let screen: &cscw::DisplayServant = node.servant_of(id).unwrap();
    println!(
        "  PDA screen: {} remote paints, {} bytes of pixels",
        screen.draws, screen.pixels_drawn
    );
}
