//! Quickstart: the CORBA-LC component model in one file.
//!
//! Walks the full pipeline in a single process:
//!   IDL → descriptor → signed package → verified install →
//!   instantiate → typed invocation → event channel.
//!
//! Run with `cargo run --example quickstart`.

use corba_lc_repro::core::behavior::BehaviorRegistry;
use corba_lc_repro::core::repository::ComponentRepository;
use corba_lc_repro::orb::{Invocation, LocalOrb, OrbError, Servant, Value};
use corba_lc_repro::pkg::{
    ComponentDescriptor, Package, Platform, QosSpec, SigningKey, TrustStore, Version,
};
use std::sync::Arc;

// ---- 1. Interfaces, in IDL --------------------------------------------
const IDL: &str = r#"
    module hello {
      interface Greeter {
        string greet(in string who);
        readonly attribute long greetings;
      };
      eventtype Greeted { string who; };
    };
"#;

// ---- 2. The component implementation ----------------------------------
struct GreeterImpl {
    count: i32,
}

impl Servant for GreeterImpl {
    fn interface_id(&self) -> &str {
        "IDL:hello/Greeter:1.0"
    }
    fn dispatch(&mut self, inv: &mut Invocation<'_>) -> Result<(), OrbError> {
        match inv.op {
            "greet" => {
                let who = inv.args[0].as_str().expect("typed").to_owned();
                self.count += 1;
                inv.emit(
                    "greeted",
                    Value::Struct {
                        id: "IDL:hello/Greeted:1.0".into(),
                        fields: vec![Value::string(&who)],
                    },
                );
                inv.set_ret(Value::string(&format!("hello, {who}!")));
                Ok(())
            }
            "_get_greetings" => {
                inv.set_ret(Value::Long(self.count));
                Ok(())
            }
            op => Err(OrbError::BadOperation(op.to_owned())),
        }
    }
}

fn main() {
    // ---- 3. Describe and package the component ------------------------
    let mut desc = ComponentDescriptor::new("Greeter", Version::new(1, 0), "hello-inc")
        .provides("greeter", "IDL:hello/Greeter:1.0")
        .emits("greeted", "IDL:hello/Greeted:1.0");
    desc.description = "Greets people and announces it".into();
    desc.qos = QosSpec::default();

    let mut package = Package::new(desc)
        .with_idl("hello.idl", IDL)
        .with_binary(Platform::reference(), "greeter_impl", b"\x90\x90 pretend machine code");
    package.seal(&SigningKey::new("hello-inc", b"vendor-secret"));
    let wire_bytes = package.to_bytes();
    println!(
        "packaged Greeter 1.0: {} bytes on the wire (descriptor + IDL + binary, compressed)",
        wire_bytes.len()
    );

    // ---- 4. A node installs it (verify signature, platform, loader) ---
    let mut trust = TrustStore::new();
    trust.trust("hello-inc", b"vendor-secret");
    let behaviors = BehaviorRegistry::new();
    behaviors.register("greeter_impl", || Box::new(GreeterImpl { count: 0 }));
    let mut repo = ComponentRepository::new();
    let installed = repo
        .install(&wire_bytes, &Platform::reference(), &trust, &behaviors, true)
        .expect("verified install");
    println!("installed: {} {} by {}", installed.name, installed.version, installed.vendor);

    // ---- 5. Instantiate and invoke through the ORB --------------------
    let idl = Arc::new(corba_lc_repro::idl::compile(IDL).expect("IDL compiles"));
    let orb = LocalOrb::new(idl);
    let servant = behaviors
        .instantiate(&repo.get("Greeter", Version::new(1, 0)).unwrap().behavior_id)
        .expect("loadable");
    let greeter = orb.activate(servant);
    orb.bind_event_port(&greeter, "greeted", "IDL:hello/Greeted:1.0");

    // an event consumer
    struct Log;
    impl Servant for Log {
        fn interface_id(&self) -> &str {
            "IDL:hello/Greeter:1.0" // listeners may be any object
        }
        fn dispatch(&mut self, inv: &mut Invocation<'_>) -> Result<(), OrbError> {
            if inv.op == "_on_greeted" {
                if let Value::Struct { fields, .. } = &inv.args[0] {
                    println!("  [event] greeted: {:?}", fields[0].as_str().unwrap());
                }
            }
            Ok(())
        }
    }
    let log = orb.activate(Box::new(Log));
    orb.subscribe("IDL:hello/Greeted:1.0", &log, "_on_greeted");

    for who in ["world", "CORBA-LC", "ICPP 2001"] {
        let out = orb.invoke(&greeter, "greet", &[Value::string(who)]).expect("typed call");
        println!("greet({who}) -> {:?}", out.ret.as_str().unwrap());
    }
    let n = orb.invoke(&greeter, "_get_greetings", &[]).unwrap();
    println!("greetings attribute = {:?}", n.ret.as_long().unwrap());

    // Ill-typed calls never reach the servant:
    let err = orb.invoke(&greeter, "greet", &[Value::Long(3)]).unwrap_err();
    println!("type system says: {err}");
}
