//! Volunteer grid computing with an aggregation component (§3.2).
//!
//! A `PiMaster` splits a Monte-Carlo π job over volunteer workstations
//! (one crashes mid-job and the work is re-dispatched), then the result
//! is gathered and reported with the achieved speedup.
//!
//! Run with `cargo run --release --example grid_parallel`.

use corba_lc_repro::des::SimTime;
use corba_lc_repro::grid::harness::deploy;
use corba_lc_repro::net::{HostId, Topology};

fn main() {
    const WORK: u64 = 32_000_000; // 3.2 virtual CPU-seconds of sampling

    // Sequential reference: one volunteer.
    let mut solo = deploy(Topology::lan(2), 1, &[HostId(1)]);
    let t_solo = solo.run_job(WORK, 8, SimTime::from_secs(600)).expect("solo job");
    println!(
        "1 volunteer : {:.2}s, pi ≈ {:.4}",
        t_solo.as_secs_f64(),
        solo.master_servant().unwrap().pi_estimate()
    );

    // Eight volunteers, one of which dies mid-job.
    let volunteers: Vec<HostId> = (1..=8).map(HostId).collect();
    let mut sess = deploy(Topology::lan(9), 2, &volunteers);
    sess.world.cmd(
        sess.master_host,
        corba_lc_repro::core::NodeCmd::Invoke {
            target: sess.master.clone(),
            op: "start".into(),
            args: vec![
                corba_lc_repro::orb::Value::ULongLong(WORK),
                corba_lc_repro::orb::Value::ULong(32),
            ],
            oneway: true,
            sink: None,
        },
    );
    let t0 = sess.world.sim.now();
    sess.world.sim.run_until(t0 + SimTime::from_millis(100));
    println!("\n8 volunteers: job started; volunteer host4 crashes at t+100ms…");
    sess.world.crash(HostId(4));

    let mut elapsed = None;
    while sess.world.sim.now() - t0 < SimTime::from_secs(600) {
        let d = sess.world.sim.now() + SimTime::from_millis(500);
        sess.world.sim.run_until(d);
        sess.world.cmd(
            sess.master_host,
            corba_lc_repro::core::NodeCmd::Invoke {
                target: sess.master.clone(),
                op: "nudge".into(),
                args: vec![],
                oneway: true,
                sink: None,
            },
        );
        if let Some(e) = sess.master_servant().and_then(|m| m.elapsed()) {
            elapsed = Some(e);
            break;
        }
    }
    let e = elapsed.expect("job survives the crash");
    let m = sess.master_servant().unwrap();
    println!(
        "8 volunteers: {:.2}s despite the crash ({} chunks re-dispatched), pi ≈ {:.4}",
        e.as_secs_f64(),
        m.redispatches,
        m.pi_estimate()
    );
    println!("speedup     : {:.2}x over one volunteer", t_solo.as_secs_f64() / e.as_secs_f64());

    println!("\nwork distribution (idle-cycle harvesting):");
    for (host, units) in sess.worker_units() {
        println!("  {host}: {units} units");
    }
}
