//! R8 — tiny-device integration: a PDA joins the network as a full peer
//! node with limited capabilities and "uses all components remotely".
//!
//! Shows the three mechanisms that make it work:
//!   1. QoS admission — heavyweight components are refused on the PDA;
//!   2. partial package extraction — the PDA pulls only its platform's
//!      binary section;
//!   3. remote use — the PDA's applications run elsewhere and paint on
//!      the PDA's screen across its slow link.
//!
//! Run with `cargo run --example pda_thin_client`.

use corba_lc_repro::core::node::NodeCmd;
use corba_lc_repro::core::testkit::{build_world, fast_cohesion};
use corba_lc_repro::core::NodeConfig;
use corba_lc_repro::cscw;
use corba_lc_repro::des::SimTime;
use corba_lc_repro::net::{HostCfg, Topology};
use corba_lc_repro::orb::Value;
use corba_lc_repro::pkg::{Package, Platform};
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    // 1+2: package mechanics, before any network is involved.
    let full = Package::from_bytes(&cscw::display_package()).unwrap();
    let subset = full.extract_subset(&[Platform::pda()]);
    println!(
        "display package: full = {} bytes, PDA subset = {} bytes ({}x smaller)",
        full.to_bytes().len(),
        subset.to_bytes().len(),
        full.to_bytes().len() / subset.to_bytes().len().max(1)
    );

    let mut topo = Topology::new();
    let office = topo.add_site("office");
    let server = topo.add_host(HostCfg::new(office).server());
    let pda = topo.add_host(HostCfg::new(office).pda());
    let behaviors = corba_lc_repro::core::BehaviorRegistry::new();
    cscw::register_cscw_behaviors(&behaviors);
    let mut world = build_world(
        topo,
        9,
        NodeConfig { cohesion: fast_cohesion(), ..Default::default() },
        behaviors,
        cscw::cscw_trust(),
        Arc::new(cscw::cscw_idl()),
        |_| vec![cscw::display_package(), cscw::gui_package(), cscw::whiteboard_package()],
    );
    world.sim.run_until(SimTime::from_millis(50));

    // QoS admission: the GUI part does not fit the PDA.
    let refuse: corba_lc_repro::core::SpawnSink = Rc::default();
    world.cmd(
        pda,
        NodeCmd::SpawnLocal {
            component: "CscwGuiPart".into(),
            min_version: corba_lc_repro::pkg::Version::new(1, 0),
            instance_name: None,
            sink: refuse.clone(),
        },
    );
    world.sim.run_until(world.sim.now() + SimTime::from_millis(20));
    let refused = refuse.borrow().clone().unwrap();
    println!("\nPDA tries to host the GUI part locally -> {}", refused.unwrap_err());

    // Remote use: display local (it *is* the PDA's screen), app remote.
    let spawn = |world: &mut corba_lc_repro::core::testkit::World, host, comp: &str, name: &str| {
        let sink: corba_lc_repro::core::SpawnSink = Rc::default();
        world.cmd(
            host,
            NodeCmd::SpawnLocal {
                component: comp.into(),
                min_version: corba_lc_repro::pkg::Version::new(1, 0),
                instance_name: Some(name.into()),
                sink: sink.clone(),
            },
        );
        world.sim.run_until(world.sim.now() + SimTime::from_millis(20));
        let r = sink.borrow().clone();
        r.unwrap().unwrap()
    };
    let screen = spawn(&mut world, pda, "CscwDisplay", "pda-screen");
    let board = spawn(&mut world, server, "Whiteboard", "board");
    let gui = spawn(&mut world, server, "CscwGuiPart", "pda-gui");
    world.cmd(
        server,
        NodeCmd::Invoke {
            target: gui.clone(),
            op: "_connect_display".into(),
            args: vec![Value::ObjRef(screen)],
            oneway: true,
            sink: None,
        },
    );
    world.cmd(
        server,
        NodeCmd::Subscribe {
            producer: board.clone(),
            port: "strokes".into(),
            consumer: gui,
            delivery_op: "_push_strokes".into(),
        },
    );
    world.sim.run_until(world.sim.now() + SimTime::from_millis(200));
    println!("PDA's GUI part runs on {server}; its screen stays on {pda}");

    for k in 0..8i32 {
        world.cmd(
            server,
            NodeCmd::Invoke {
                target: board.clone(),
                op: "user_stroke".into(),
                args: vec![Value::Long(k), Value::Long(k), Value::Long(k + 2), Value::Long(k + 2)],
                oneway: true,
                sink: None,
            },
        );
        world.sim.run_until(world.sim.now() + SimTime::from_millis(150));
    }
    world.sim.run_until(world.sim.now() + SimTime::from_secs(2));

    let node = world.node(pda).unwrap();
    let id = node.registry.named("pda-screen").unwrap().id;
    let screen: &cscw::DisplayServant = node.servant_of(id).unwrap();
    println!(
        "\nPDA screen painted {} times over its {:.0} kbit/s wireless link",
        screen.draws,
        node.resources.static_info().down_bw * 8.0 / 1000.0
    );
    assert_eq!(screen.draws, 8);
}
