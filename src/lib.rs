//! Workspace root for the CORBA-LC reproduction.
//!
//! Re-exports all member crates so the top-level `examples/` and `tests/`
//! can exercise the whole system through one dependency.

pub use lc_baselines as baselines;
pub use lc_core as core;
pub use lc_cscw as cscw;
pub use lc_des as des;
pub use lc_grid as grid;
pub use lc_idl as idl;
pub use lc_net as net;
pub use lc_orb as orb;
pub use lc_pkg as pkg;
pub use lc_xml as xml;
